"""Probabilistic nearest neighbour: the paper's future-work query type.

"Which taxi is most likely closest to this passenger?"  Each taxi's
position is uncertain (last report + drift circle), so the nearest
neighbour is a distribution over taxis, not a single answer.  This
example builds a U-tree-backed :class:`repro.api.Database` over a taxi
fleet, asks a declarative :class:`repro.api.NearestSpec` for the
qualification probability of every candidate, and contrasts it with the
naive answer (distance to last-reported positions), which can disagree.

Run:  python examples/nearest_neighbor.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BallRegion,
    ConstrainedGaussianDensity,
    Database,
    NearestSpec,
    UncertainObject,
    UniformDensity,
)

N_TAXIS = 200


def main() -> None:
    rng = np.random.default_rng(17)
    reported = rng.uniform(0, 10_000, (N_TAXIS, 2))
    # Uncertainty grows with time since last report.
    staleness = rng.uniform(0.3, 1.0, N_TAXIS)

    fleet = []
    for oid in range(N_TAXIS):
        radius = 150.0 + 350.0 * staleness[oid]
        region = BallRegion(reported[oid], radius)
        # Recently-reported taxis: likely near the report (Gaussian);
        # stale ones: anywhere in the circle (uniform).
        if staleness[oid] < 0.6:
            pdf = ConstrainedGaussianDensity(region, sigma=radius / 2.5, marginal_seed=oid)
        else:
            pdf = UniformDensity(region, marginal_seed=oid)
        fleet.append(UncertainObject(oid, pdf))
    db = Database.create(fleet)

    passenger = np.array([4_200.0, 6_100.0])
    answer = db.nearest(NearestSpec(passenger, k=6, rounds=4_000, seed=5))
    result = answer.nn

    print(f"Passenger at {passenger.tolist()} — NN candidates "
          f"({result.objects_examined} taxis examined, "
          f"{result.node_accesses} node accesses):\n")
    print(f"{'taxi':>5s} {'P(nearest)':>10s} {'E[dist]':>8s} {'reported dist':>13s}")
    for cand in result.candidates[:6]:
        naive = float(np.linalg.norm(reported[cand.oid] - passenger))
        print(f"{cand.oid:5d} {cand.probability:10.3f} "
              f"{cand.expected_distance:8.1f} {naive:13.1f}")

    naive_winner = int(np.argmin(np.linalg.norm(reported - passenger, axis=1)))
    prob_winner = result.best().oid
    print(f"\nnaive dispatch (closest last report): taxi {naive_winner}")
    print(f"probabilistic dispatch:               taxi {prob_winner} "
          f"(P = {result.best().probability:.2f})")
    if naive_winner != prob_winner:
        print("-> the answers differ: uncertainty changed the best dispatch!")

    top3 = db.nearest(NearestSpec(passenger, k=3, rounds=4_000, seed=5, mode="expected"))
    print("\ntop-3 by expected distance:",
          [(c.oid, round(c.expected_distance, 1)) for c in top3.nn.candidates])


if __name__ == "__main__":
    main()
