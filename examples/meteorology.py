"""Meteorology monitoring: the paper's 3-D sensor scenario (Section 1).

A network of stations reports (temperature, humidity, UV index) readings
every half hour; between reports the true atmospheric state drifts, so the
database models each station as an uncertain 3-D point: a box uncertainty
region around the last reading with a Gaussian pdf (readings are most
likely near the reported value, as the paper suggests for temperature).

The paper's example query: "identify the regions whose temperatures are
in [75F, 80F], humidity in [40%, 60%] and UV index in [4.5, 6] with at
least 70% likelihood" — a 3-D prob-range query.

Run:  python examples/meteorology.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AppearanceEstimator,
    BoxRegion,
    ConstrainedGaussianDensity,
    ProbRangeQuery,
    Rect,
    UncertainObject,
    UTree,
)

N_STATIONS = 250

# Physical ranges per axis: temperature (F), humidity (%), UV index.
AXIS_LOW = np.array([30.0, 10.0, 0.0])
AXIS_HIGH = np.array([110.0, 95.0, 11.0])
# Drift half-widths between reports, and pdf spread.
DRIFT = np.array([4.0, 8.0, 1.2])
SIGMA_FRACTION = 0.45  # sigma as a fraction of the smallest half-width


def station_object(oid: int, reading: np.ndarray) -> UncertainObject:
    lo = np.maximum(reading - DRIFT, AXIS_LOW)
    hi = np.minimum(reading + DRIFT, AXIS_HIGH)
    region = BoxRegion(Rect(lo, hi))
    sigma = float(DRIFT.min()) * SIGMA_FRACTION
    pdf = ConstrainedGaussianDensity(region, sigma=sigma, mean=reading, marginal_seed=oid)
    return UncertainObject(oid, pdf)


def main() -> None:
    rng = np.random.default_rng(23)

    # Last-reported readings, loosely correlated (hot -> high UV, low humidity).
    temperature = rng.uniform(55, 95, N_STATIONS)
    humidity = np.clip(110 - temperature + rng.normal(0, 12, N_STATIONS), 10, 95)
    uv = np.clip((temperature - 40) / 8 + rng.normal(0, 1.2, N_STATIONS), 0, 11)
    readings = np.stack([temperature, humidity, uv], axis=1)

    tree = UTree(dim=3, estimator=AppearanceEstimator(n_samples=12_000, seed=5))
    for oid, reading in enumerate(readings):
        tree.insert(station_object(oid, reading))
    print(f"Indexed {len(tree)} stations (3-D box regions, Gaussian pdfs).\n")

    # The paper's example query.
    comfortable = Rect([75.0, 40.0, 4.5], [80.0, 60.0, 6.0])
    for confidence in (0.3, 0.5, 0.7):
        answer = tree.query(ProbRangeQuery(comfortable, confidence))
        s = answer.stats
        print(
            f"T in [75, 80], H in [40, 60], UV in [4.5, 6] @ >= {confidence:.0%}: "
            f"{len(answer.object_ids):3d} stations | I/O {s.node_accesses:3d}, "
            f"P_app computed {s.prob_computations:3d}"
        )

    # Wider query: heat-stress watch (high temperature OR high UV corner).
    hot = Rect([88.0, 10.0, 0.0], [110.0, 95.0, 11.0])
    answer = tree.query(ProbRangeQuery(hot, 0.6))
    print(
        f"\nHeat watch (T >= 88F @ >= 60%): {len(answer.object_ids)} stations, "
        f"{answer.stats.validated_directly} validated without integration."
    )

    # A new half-hourly report cycle updates a third of the stations.
    refresh = rng.choice(N_STATIONS, size=N_STATIONS // 3, replace=False)
    for oid in refresh:
        tree.delete(int(oid))
        readings[oid, 0] += rng.normal(0, 2.0)
        tree.insert(station_object(int(oid), readings[oid]))
    print(f"Refreshed {len(refresh)} stations; index still holds {len(tree)}.")


if __name__ == "__main__":
    main()
