"""Meteorology monitoring: the paper's 3-D sensor scenario (Section 1).

A network of stations reports (temperature, humidity, UV index) readings
every half hour; between reports the true atmospheric state drifts, so the
database models each station as an uncertain 3-D point: a box uncertainty
region around the last reading with a Gaussian pdf (readings are most
likely near the reported value, as the paper suggests for temperature).

The paper's example query: "identify the regions whose temperatures are
in [75F, 80F], humidity in [40%, 60%] and UV index in [4.5, 6] with at
least 70% likelihood" — a 3-D prob-range query, asked through the
:class:`repro.api.Database` facade.

Run:  python examples/meteorology.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BoxRegion,
    ConstrainedGaussianDensity,
    Database,
    ExecConfig,
    RangeSpec,
    Rect,
    UncertainObject,
)

N_STATIONS = 250

# Physical ranges per axis: temperature (F), humidity (%), UV index.
AXIS_LOW = np.array([30.0, 10.0, 0.0])
AXIS_HIGH = np.array([110.0, 95.0, 11.0])
# Drift half-widths between reports, and pdf spread.
DRIFT = np.array([4.0, 8.0, 1.2])
SIGMA_FRACTION = 0.45  # sigma as a fraction of the smallest half-width


def station_object(oid: int, reading: np.ndarray) -> UncertainObject:
    lo = np.maximum(reading - DRIFT, AXIS_LOW)
    hi = np.minimum(reading + DRIFT, AXIS_HIGH)
    region = BoxRegion(Rect(lo, hi))
    sigma = float(DRIFT.min()) * SIGMA_FRACTION
    pdf = ConstrainedGaussianDensity(region, sigma=sigma, mean=reading, marginal_seed=oid)
    return UncertainObject(oid, pdf)


def main() -> None:
    rng = np.random.default_rng(23)

    # Last-reported readings, loosely correlated (hot -> high UV, low humidity).
    temperature = rng.uniform(55, 95, N_STATIONS)
    humidity = np.clip(110 - temperature + rng.normal(0, 12, N_STATIONS), 10, 95)
    uv = np.clip((temperature - 40) / 8 + rng.normal(0, 1.2, N_STATIONS), 0, 11)
    readings = np.stack([temperature, humidity, uv], axis=1)

    db = Database.create(
        [station_object(oid, reading) for oid, reading in enumerate(readings)],
        ExecConfig(mc_samples=12_000, seed=5),
    )
    print(f"Indexed {len(db)} stations (3-D box regions, Gaussian pdfs).\n")

    # The paper's example query, swept over confidences in one batch:
    # the facade's batched executor fetches shared data pages once.
    comfortable = Rect([75.0, 40.0, 4.5], [80.0, 60.0, 6.0])
    batch = db.run([RangeSpec(comfortable, c) for c in (0.3, 0.5, 0.7)])
    for result in batch:
        s = result.stats
        print(
            f"T in [75, 80], H in [40, 60], UV in [4.5, 6] @ >= "
            f"{result.spec.threshold:.0%}: "
            f"{len(result):3d} stations | I/O {s.node_accesses:3d}, "
            f"P_app computed {s.prob_computations:3d}"
        )

    # Wider query: heat-stress watch (high temperature OR high UV corner).
    hot = Rect([88.0, 10.0, 0.0], [110.0, 95.0, 11.0])
    result = db.query(RangeSpec(hot, 0.6))
    print(
        f"\nHeat watch (T >= 88F @ >= 60%): {len(result)} stations, "
        f"{result.stats.validated_directly} validated without integration."
    )

    # A new half-hourly report cycle updates a third of the stations.
    refresh = rng.choice(N_STATIONS, size=N_STATIONS // 3, replace=False)
    for oid in refresh:
        db.delete(int(oid))
        readings[oid, 0] += rng.normal(0, 2.0)
        db.insert(station_object(int(oid), readings[oid]))
    print(f"Refreshed {len(refresh)} stations; database still holds {len(db)}.")


if __name__ == "__main__":
    main()
