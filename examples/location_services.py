"""Location-based services: the paper's motivating scenario (Section 1).

Moving clients report their position only when they drift more than a
distance threshold from their last report, so the server only ever knows
"somewhere within radius r of the last update" — a circular uncertainty
region with (here) a uniform pdf.  The canonical query is:

    "find the clients currently in the downtown area with probability
     of at least 80 %"

This example simulates several epochs of client movement with threshold-
triggered re-reports, keeps a :class:`repro.api.Database` in sync via
``insert``/``delete``, and runs the downtown query each epoch, printing
how much work the index avoided.

Run:  python examples/location_services.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BallRegion,
    Database,
    ExecConfig,
    RangeSpec,
    Rect,
    UncertainObject,
    UniformDensity,
)

N_CLIENTS = 300
REPORT_THRESHOLD = 250.0  # clients re-report after drifting this far
DOWNTOWN = Rect([4_000, 4_000], [6_500, 6_500])
CONFIDENCE = 0.8
EPOCHS = 4


def make_client(oid: int, reported: np.ndarray) -> UncertainObject:
    """A client is uncertain within the report-threshold circle."""
    region = BallRegion(reported, REPORT_THRESHOLD)
    return UncertainObject(oid, UniformDensity(region, marginal_seed=oid))


def main() -> None:
    rng = np.random.default_rng(11)
    true_position = {i: rng.uniform(1_000, 9_000, 2) for i in range(N_CLIENTS)}
    reported = {i: true_position[i].copy() for i in range(N_CLIENTS)}

    # batched=False: each epoch's query recomputes its own P_app work, so
    # the printed per-epoch counts measure that epoch (the batched
    # executor's cross-query memo would serve later epochs from cache).
    db = Database.create(
        [make_client(oid, reported[oid]) for oid in range(N_CLIENTS)],
        ExecConfig(batched=False, mc_samples=10_000, seed=3),
    )
    downtown_query = RangeSpec(DOWNTOWN, CONFIDENCE)

    for epoch in range(1, EPOCHS + 1):
        # Clients move; most drift a little, a few sprint.
        re_reports = 0
        for oid in range(N_CLIENTS):
            step = rng.normal(scale=120.0, size=2)
            if rng.random() < 0.1:
                step *= 4.0
            true_position[oid] = np.clip(true_position[oid] + step, 0, 10_000)
            # Threshold-triggered update: the server hears from a client
            # only when it leaves its uncertainty circle.
            if np.linalg.norm(true_position[oid] - reported[oid]) > REPORT_THRESHOLD:
                db.delete(oid)
                reported[oid] = true_position[oid].copy()
                db.insert(make_client(oid, reported[oid]))
                re_reports += 1

        result = db.query(downtown_query)
        s = result.stats
        actually_inside = sum(
            1 for oid in range(N_CLIENTS) if DOWNTOWN.contains_point(true_position[oid])
        )
        print(
            f"epoch {epoch}: {re_reports:3d} re-reports | "
            f"{len(result):3d} clients downtown with >= {CONFIDENCE:.0%} "
            f"(ground truth {actually_inside:3d}) | "
            f"I/O {s.node_accesses + s.data_page_reads:3d}, "
            f"P_app computed {s.prob_computations:2d}, "
            f"validated free {s.validated_directly:3d}"
        )

    print(
        "\nNote: the probabilistic answer can legitimately differ from the "
        "ground truth — the server only knows each client's last report."
    )


if __name__ == "__main__":
    main()
