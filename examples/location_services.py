"""Location-based services: the paper's motivating scenario, served.

Moving clients report their position only when they drift more than a
distance threshold from their last report, so the server only ever knows
"somewhere within radius r of the last update" — a circular uncertainty
region with (here) a uniform pdf.  The canonical query is:

    "find the clients currently in the downtown area with probability
     of at least 80 %"

This example runs the scenario the way a deployment would: one
:class:`repro.serve.QueryServer` wraps the :class:`repro.api.Database`
(in-process, ephemeral port), a *writer* wire client streams the
threshold-triggered re-reports, and several concurrent *dispatcher app*
clients — one per city district — fire their range queries together
each epoch.  Requests landing in the same batch window are answered as
one engine batch (watch ``cross_client_batches`` in the closing stats),
and the latency summary shows what each app actually waited.

Run:  python examples/location_services.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import (
    BallRegion,
    Database,
    ExecConfig,
    QueryServer,
    RangeSpec,
    Rect,
    ServeClient,
    UncertainObject,
    UniformDensity,
)

N_CLIENTS = 200
REPORT_THRESHOLD = 250.0  # clients re-report after drifting this far
CONFIDENCE = 0.8
EPOCHS = 4

# One dispatcher app per district, all querying concurrently.
DISTRICTS = {
    "downtown": Rect([4_000, 4_000], [6_500, 6_500]),
    "harbour": Rect([1_000, 6_500], [3_500, 9_000]),
    "airport": Rect([7_000, 1_000], [9_500, 3_000]),
    "old town": Rect([2_000, 1_500], [4_500, 4_000]),
}


def make_client(oid: int, reported: np.ndarray) -> UncertainObject:
    """A client is uncertain within the report-threshold circle."""
    region = BallRegion(reported, REPORT_THRESHOLD)
    return UncertainObject(oid, UniformDensity(region, marginal_seed=oid))


def main() -> None:
    rng = np.random.default_rng(11)
    true_position = {i: rng.uniform(1_000, 9_000, 2) for i in range(N_CLIENTS)}
    reported = {i: true_position[i].copy() for i in range(N_CLIENTS)}

    db = Database.create(
        [make_client(oid, reported[oid]) for oid in range(N_CLIENTS)],
        # A short batch window is enough: the district apps fire
        # together, so their queries coalesce into one engine batch.
        ExecConfig(mc_samples=6_000, seed=3, batch_window_ms=8.0),
    )

    names = list(DISTRICTS)
    counts = {name: 0 for name in names}
    latencies: dict[str, list[float]] = {name: [] for name in names}
    barrier = threading.Barrier(len(names) + 1)

    def district_app(name: str, address) -> None:
        """One dispatcher app: its district query, every epoch."""
        spec = RangeSpec(DISTRICTS[name], CONFIDENCE)
        with ServeClient(*address) as client:
            for _ in range(EPOCHS):
                barrier.wait()  # the epoch's movement is applied
                t0 = time.perf_counter()
                counts[name] = len(client.query(spec))
                latencies[name].append(time.perf_counter() - t0)
                barrier.wait()  # the epoch's answers are in

    with QueryServer(db) as server:
        apps = [
            threading.Thread(target=district_app, args=(name, server.address))
            for name in names
        ]
        for app in apps:
            app.start()

        with ServeClient(*server.address) as writer:
            for epoch in range(1, EPOCHS + 1):
                # Clients move; most drift a little, a few sprint.
                re_reports = 0
                for oid in range(N_CLIENTS):
                    step = rng.normal(scale=120.0, size=2)
                    if rng.random() < 0.1:
                        step *= 4.0
                    true_position[oid] = np.clip(true_position[oid] + step, 0, 10_000)
                    # Threshold-triggered update: the server hears from a
                    # client only when it leaves its uncertainty circle.
                    drift = np.linalg.norm(true_position[oid] - reported[oid])
                    if drift > REPORT_THRESHOLD:
                        writer.delete(oid)
                        reported[oid] = true_position[oid].copy()
                        writer.insert(make_client(oid, reported[oid]))
                        re_reports += 1

                barrier.wait()  # release the district apps...
                barrier.wait()  # ...and collect their answers
                downtown_truth = sum(
                    1
                    for oid in range(N_CLIENTS)
                    if DISTRICTS["downtown"].contains_point(true_position[oid])
                )
                per_district = " ".join(
                    f"{name}={counts[name]:3d}" for name in names
                )
                print(
                    f"epoch {epoch}: {re_reports:3d} re-reports | clients with "
                    f">= {CONFIDENCE:.0%}: {per_district} "
                    f"(downtown ground truth {downtown_truth:3d})"
                )

            stats = writer.stats()

        for app in apps:
            app.join()

    queue = stats["queue"]
    print(
        f"\nserver: {stats['served']['requests']} requests, "
        f"{queue['batches']} engine batches, "
        f"{queue['cross_client_batches']} of them cross-client "
        f"(largest {queue['largest_batch_requests']} apps together)"
    )
    for name in names:
        per_app = sorted(latencies[name])
        p50 = 1000.0 * per_app[len(per_app) // 2]
        worst = 1000.0 * per_app[-1]
        print(f"  {name:>8s} app: p50 {p50:5.1f} ms, worst {worst:5.1f} ms")

    print(
        "\nNote: the probabilistic answer can legitimately differ from the "
        "ground truth — the server only knows each client's last report."
    )


if __name__ == "__main__":
    main()
