"""Quickstart: index uncertain objects and run probabilistic range queries.

Builds a U-tree-backed :class:`repro.api.Database` over a few hundred
uncertain objects (uniform pdfs over circular uncertainty regions, the
paper's Figure 1 setup), runs one prob-range query at several probability
thresholds, and prints the cost breakdown the index is designed to
optimise — plus the planner's ``explain()`` view of one query.

The whole engine sits behind two classes::

    db = Database.create(objects, ExecConfig(...))
    result = db.query(RangeSpec(window, threshold))

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BallRegion,
    Database,
    ExecConfig,
    RangeSpec,
    Rect,
    UncertainObject,
    UniformDensity,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Create uncertain objects: each "appears" anywhere within 250
    #    units of its reported location, with uniform likelihood.
    objects = []
    for oid in range(400):
        reported = rng.uniform(0, 10_000, 2)
        region = BallRegion(reported, radius=250.0)
        objects.append(UncertainObject(oid, UniformDensity(region, marginal_seed=oid)))

    # 2. Build the database.  One ExecConfig wires everything: the
    #    Monte-Carlo estimator, the filter kernel, sharding, batching.
    db = Database.create(objects, ExecConfig(mc_samples=10_000, seed=7))
    tree = db.access_method("utree")
    print(f"{db!r}\nU-tree height {tree.height}, "
          f"{tree.size_bytes / 1024:.0f} KiB of node pages\n")

    # 3. Query: "which objects are in this window with probability >= p?"
    window = Rect([3_000, 3_000], [6_000, 6_000])
    for threshold in (0.2, 0.5, 0.8):
        result = db.query(RangeSpec(window, threshold))
        s = result.stats
        print(
            f"pq = {threshold:.1f}: {len(result):3d} results | "
            f"node accesses {s.node_accesses:3d}, data pages {s.data_page_reads:2d}, "
            f"P_app computations {s.prob_computations:2d} "
            f"({s.validated_directly} results validated without any integration)"
        )

    # 4. explain() previews the plan without running anything.
    print("\n" + db.explain(RangeSpec(window, 0.5)).summary())

    # 5. The index is fully dynamic.
    removed = result.object_ids[:5]
    for oid in removed:
        db.delete(oid)
    print(f"\nDeleted {len(removed)} objects; database now holds {len(db)}.")


if __name__ == "__main__":
    main()
