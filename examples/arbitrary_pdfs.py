"""Arbitrary pdfs and structure comparison: the paper's headline claim.

The U-tree makes no assumption about object pdfs.  This example indexes a
mixed population — uniform circles, constrained Gaussians, Zipf-skewed
histograms and mixtures — in ONE tree, then answers the same workload with
all three access methods (U-tree, U-PCR, sequential scan) and prints the
paper's cost comparison: identical answers, very different costs.

Run:  python examples/arbitrary_pdfs.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AppearanceEstimator,
    BallRegion,
    BoxRegion,
    ConstrainedGaussianDensity,
    MixtureDensity,
    ProbRangeQuery,
    Rect,
    SequentialScan,
    UncertainObject,
    UniformDensity,
    UPCRTree,
    UTree,
    zipf_histogram,
)

N_OBJECTS = 400
RADIUS = 250.0


def make_object(oid: int, centre: np.ndarray) -> UncertainObject:
    """Cycle through four pdf families on matching uncertainty regions."""
    kind = oid % 4
    if kind == 0:
        region = BallRegion(centre, RADIUS)
        pdf = UniformDensity(region, marginal_seed=oid)
    elif kind == 1:
        region = BallRegion(centre, RADIUS)
        pdf = ConstrainedGaussianDensity(region, sigma=RADIUS / 2, marginal_seed=oid)
    elif kind == 2:
        region = BoxRegion(Rect(centre - RADIUS, centre + RADIUS))
        pdf = zipf_histogram(region, cells_per_axis=8, skew=1.2, seed=oid, marginal_seed=oid)
    else:
        region = BallRegion(centre, RADIUS)
        pdf = MixtureDensity(
            [
                UniformDensity(region, marginal_seed=oid),
                ConstrainedGaussianDensity(region, sigma=RADIUS / 3, marginal_seed=oid),
            ],
            weights=[0.35, 0.65],
            marginal_seed=oid,
        )
    return UncertainObject(oid, pdf)


def main() -> None:
    rng = np.random.default_rng(31)
    objects = [make_object(i, rng.uniform(500, 9_500, 2)) for i in range(N_OBJECTS)]

    def estimator():
        # Same seed for every structure: identical refinement estimates.
        return AppearanceEstimator(n_samples=10_000, seed=9)

    structures = {
        "U-tree": UTree(2, estimator=estimator()),
        "U-PCR": UPCRTree(2, estimator=estimator()),
        "seq-scan": SequentialScan(2, estimator=estimator()),
    }
    for structure in structures.values():
        for obj in objects:
            structure.insert(obj)

    print(f"{N_OBJECTS} objects across 4 pdf families indexed in all structures.")
    print(f"index sizes: U-tree {structures['U-tree'].size_bytes // 1024} KiB, "
          f"U-PCR {structures['U-PCR'].size_bytes // 1024} KiB\n")

    workload = []
    for i in range(10):
        centre = objects[int(rng.integers(0, N_OBJECTS))].mbr.center
        workload.append(
            ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(400, 1_400))),
                round(float(rng.uniform(0.2, 0.9)), 2),
            )
        )

    header = f"{'structure':9s} {'results':>7s} {'IO':>6s} {'P_app':>6s} {'validated':>9s}"
    print(header)
    print("-" * len(header))
    reference = None
    for name, structure in structures.items():
        totals = {"results": 0, "io": 0, "papp": 0, "validated": 0}
        answers = []
        for query in workload:
            answer = structure.query(query)
            answers.append(answer.sorted_ids())
            totals["results"] += len(answer.object_ids)
            totals["io"] += answer.stats.node_accesses + answer.stats.data_page_reads
            totals["papp"] += answer.stats.prob_computations
            totals["validated"] += answer.stats.validated_directly
        if reference is None:
            reference = answers
        assert answers == reference, "structures disagree!"
        print(
            f"{name:9s} {totals['results']:7d} {totals['io']:6d} "
            f"{totals['papp']:6d} {totals['validated']:9d}"
        )

    print("\nAll three structures returned identical answers; the U-tree did it")
    print("with the least I/O, and both indexes avoided almost all integration.")


if __name__ == "__main__":
    main()
