"""Arbitrary pdfs and structure comparison: the paper's headline claim.

The U-tree makes no assumption about object pdfs.  This example indexes a
mixed population — uniform circles, constrained Gaussians, Zipf-skewed
histograms and mixtures — in ONE :class:`repro.api.Database` holding all
three access methods (U-tree, U-PCR, sequential scan), answers the same
workload pinned to each method, and prints the paper's cost comparison:
identical answers, very different costs.  The planner's ``explain()``
shows which method it would pick on its own.

Run:  python examples/arbitrary_pdfs.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BallRegion,
    BoxRegion,
    ConstrainedGaussianDensity,
    Database,
    ExecConfig,
    MixtureDensity,
    RangeSpec,
    Rect,
    UncertainObject,
    UniformDensity,
    zipf_histogram,
)

N_OBJECTS = 400
RADIUS = 250.0


def make_object(oid: int, centre: np.ndarray) -> UncertainObject:
    """Cycle through four pdf families on matching uncertainty regions."""
    kind = oid % 4
    if kind == 0:
        region = BallRegion(centre, RADIUS)
        pdf = UniformDensity(region, marginal_seed=oid)
    elif kind == 1:
        region = BallRegion(centre, RADIUS)
        pdf = ConstrainedGaussianDensity(region, sigma=RADIUS / 2, marginal_seed=oid)
    elif kind == 2:
        region = BoxRegion(Rect(centre - RADIUS, centre + RADIUS))
        pdf = zipf_histogram(region, cells_per_axis=8, skew=1.2, seed=oid, marginal_seed=oid)
    else:
        region = BallRegion(centre, RADIUS)
        pdf = MixtureDensity(
            [
                UniformDensity(region, marginal_seed=oid),
                ConstrainedGaussianDensity(region, sigma=RADIUS / 3, marginal_seed=oid),
            ],
            weights=[0.35, 0.65],
            marginal_seed=oid,
        )
    return UncertainObject(oid, pdf)


def main() -> None:
    rng = np.random.default_rng(31)
    objects = [make_object(i, rng.uniform(500, 9_500, 2)) for i in range(N_OBJECTS)]

    # One database, three structures, one shared estimator: every method
    # computes identical appearance probabilities.
    db = Database.create(
        objects,
        ExecConfig(mc_samples=10_000, seed=9),
        methods=("utree", "upcr", "scan"),
    )

    print(f"{N_OBJECTS} objects across 4 pdf families indexed in all structures.")
    print(f"index sizes: U-tree {db.access_method('utree').size_bytes // 1024} KiB, "
          f"U-PCR {db.access_method('upcr').size_bytes // 1024} KiB\n")

    specs = []
    for i in range(10):
        centre = objects[int(rng.integers(0, N_OBJECTS))].mbr.center
        specs.append(
            RangeSpec(
                Rect.from_center(centre, float(rng.uniform(400, 1_400))),
                round(float(rng.uniform(0.2, 0.9)), 2),
            )
        )

    header = f"{'structure':9s} {'results':>7s} {'IO':>6s} {'P_app':>6s} {'validated':>9s}"
    print(header)
    print("-" * len(header))
    reference = None
    for name in db.method_names:
        batch = db.run(specs, method=name)
        answers = [r.sorted_ids() for r in batch]
        if reference is None:
            reference = answers
        assert answers == reference, "structures disagree!"
        print(
            f"{name:9s} {sum(len(r) for r in batch):7d} "
            f"{sum(r.stats.total_io for r in batch):6d} "
            f"{sum(r.stats.prob_computations for r in batch):6d} "
            f"{sum(r.stats.validated_directly for r in batch):9d}"
        )

    print("\nAll three structures returned identical answers; the U-tree did it")
    print("with the least I/O, and both indexes avoided almost all integration.")

    # Left to itself, the planner prices each query and routes it:
    print("\nThe planner's verdict on the first query:")
    print(db.explain(specs[0]).summary())


if __name__ == "__main__":
    main()
