"""The query service's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Every request carries the protocol version and a
client-chosen request id; every reply echoes the id and either the
verb's result (``"ok": true``) or a typed error (``"ok": false`` with an
``error.code`` from :data:`ERROR_CODES`).  The codec functions here are
the single vocabulary both ends speak — the server
(:mod:`repro.serve.server`) and the client (:mod:`repro.serve.client`)
contain no JSON of their own — so a spec or a result round-trips through
one pair of functions and the equivalence tests can hold served answers
``==`` to in-process ones.

Framing is deliberately boring (the cxdb exemplar's shape: a small
binary header in front of a structured body): it needs no dependency,
survives partial reads, and rejects oversize or malformed frames with a
typed error instead of undefined behaviour.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict
from typing import Any

from repro.api.specs import NearestSpec, QuerySpec, RangeSpec, Result
from repro.core.nn import NNCandidate, NNResult
from repro.core.stats import QueryStats
from repro.geometry.rect import Rect

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "BadFrame",
    "BadRequest",
    "FrameTooLarge",
    "ProtocolError",
    "VersionMismatch",
    "error_reply",
    "ok_reply",
    "recv_frame",
    "request",
    "result_doc",
    "result_from_doc",
    "send_frame",
    "spec_doc",
    "spec_from_doc",
    "stats_doc",
    "stats_from_doc",
]

PROTOCOL_VERSION = 1

# Frames above this are rejected before any allocation happens; both
# sides enforce it (a client can lower its own bound, never raise the
# server's).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

# The typed error vocabulary.  BUSY is the admission queue shedding
# load; SHUTTING_DOWN a server that is draining; the rest are protocol
# or request faults attributable to the client (except SERVER_ERROR).
ERROR_CODES = (
    "BAD_FRAME",
    "TOO_LARGE",
    "BAD_VERSION",
    "BAD_REQUEST",
    "BUSY",
    "SERVER_ERROR",
    "SHUTTING_DOWN",
)


class ProtocolError(Exception):
    """A wire-level fault with a typed error code."""

    code = "BAD_FRAME"


class BadFrame(ProtocolError):
    """A frame that is not a complete, decodable JSON document."""

    code = "BAD_FRAME"


class FrameTooLarge(ProtocolError):
    """A frame whose declared length exceeds the receiver's bound."""

    code = "TOO_LARGE"


class VersionMismatch(ProtocolError):
    """A request speaking a protocol version this end does not."""

    code = "BAD_VERSION"


class BadRequest(ProtocolError):
    """A well-formed frame whose content the verb cannot accept."""

    code = "BAD_REQUEST"


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def send_frame(sock, payload: dict) -> None:
    """Serialise ``payload`` and write one length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock, n: int, *, at_boundary: bool) -> bytes | None:
    """``n`` bytes off the socket, or None on EOF at a frame boundary.

    EOF mid-frame is a :class:`BadFrame` — the peer died or sent a
    truncated frame; silently treating it as a clean close would hide
    torn requests.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise BadFrame(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> dict | None:
    """Read one frame; ``None`` on a clean close between frames.

    Raises :class:`FrameTooLarge` when the header declares more than
    ``max_bytes`` (the body is left unread — callers must close the
    connection after replying, the stream is no longer in sync) and
    :class:`BadFrame` for truncation or an undecodable body.
    """
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(f"frame of {length} bytes exceeds bound {max_bytes}")
    body = _recv_exact(sock, length, at_boundary=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadFrame(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadFrame(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------

def request(verb: str, body: dict | None = None, *, req_id: int = 0) -> dict:
    """A request envelope (version + id + verb + verb-specific body)."""
    doc = {"v": PROTOCOL_VERSION, "id": req_id, "verb": verb}
    if body:
        doc.update(body)
    return doc


def ok_reply(req_id: int, body: dict | None = None) -> dict:
    doc = {"v": PROTOCOL_VERSION, "id": req_id, "ok": True}
    if body:
        doc.update(body)
    return doc


def error_reply(req_id: int, code: str, message: str) -> dict:
    if code not in ERROR_CODES:  # pragma: no cover - programming error
        raise ValueError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def check_version(doc: dict) -> None:
    """Reject a request from a different protocol generation."""
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"protocol version {version!r} not supported (server speaks "
            f"{PROTOCOL_VERSION})"
        )


# ----------------------------------------------------------------------
# spec / result codecs
# ----------------------------------------------------------------------

def spec_doc(spec: QuerySpec) -> dict:
    """A JSON document reconstructing one query spec."""
    if isinstance(spec, RangeSpec):
        return {
            "kind": "range",
            "lo": [float(x) for x in spec.rect.lo],
            "hi": [float(x) for x in spec.rect.hi],
            "threshold": float(spec.threshold),
        }
    if isinstance(spec, NearestSpec):
        return {
            "kind": "nearest",
            "point": list(spec.point),
            "k": spec.k,
            "rounds": spec.rounds,
            "seed": spec.seed,
            "mode": spec.mode,
        }
    raise BadRequest(f"cannot encode spec type {type(spec).__name__}")


def spec_from_doc(doc: Any) -> QuerySpec:
    """Inverse of :func:`spec_doc` (typed errors on malformed docs)."""
    if not isinstance(doc, dict):
        raise BadRequest(f"spec must be an object, got {type(doc).__name__}")
    kind = doc.get("kind")
    try:
        if kind == "range":
            return RangeSpec(Rect(doc["lo"], doc["hi"]), float(doc["threshold"]))
        if kind == "nearest":
            return NearestSpec(
                point=doc["point"],
                k=int(doc.get("k", 1)),
                rounds=int(doc.get("rounds", 2000)),
                seed=int(doc.get("seed", 0)),
                mode=doc.get("mode", "probability"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequest(f"malformed {kind!r} spec: {exc}") from exc
    raise BadRequest(f"unknown spec kind {kind!r}")


def stats_doc(stats: QueryStats) -> dict:
    """Per-query stats as a flat JSON object (all fields numeric)."""
    return asdict(stats)


def stats_from_doc(doc: dict) -> QueryStats:
    known = set(QueryStats.__dataclass_fields__)
    return QueryStats(**{k: v for k, v in doc.items() if k in known})


def result_doc(result: Result, probs: dict[int, float] | None = None) -> dict:
    """One answered spec: ids, stats, optional P_app map, optional NN detail.

    ``probs`` (oid -> appearance probability) is attached verbatim; JSON
    forces string keys, so :func:`result_from_doc` restores the ints.
    Floats survive the round-trip exactly — ``json`` prints shortest
    round-trippable reprs — which is what lets the wire-equivalence
    tests compare P_app with ``==``.
    """
    doc: dict[str, Any] = {
        "spec": spec_doc(result.spec),
        "method": result.method,
        "object_ids": [int(oid) for oid in result.object_ids],
        "stats": stats_doc(result.stats),
    }
    if probs is not None:
        doc["probs"] = {str(oid): float(p) for oid, p in probs.items()}
    if result.nn is not None:
        doc["nn"] = {
            "candidates": [
                {
                    "oid": c.oid,
                    "probability": c.probability,
                    "expected_distance": c.expected_distance,
                }
                for c in result.nn.candidates
            ],
            "node_accesses": result.nn.node_accesses,
            "data_page_reads": result.nn.data_page_reads,
            "objects_examined": result.nn.objects_examined,
            "mc_rounds": result.nn.mc_rounds,
            "wall_seconds": result.nn.wall_seconds,
            "shards_skipped": result.nn.shards_skipped,
        }
    return doc


def result_from_doc(doc: dict) -> tuple[Result, dict[int, float] | None]:
    """Inverse of :func:`result_doc`: a typed Result plus its P_app map."""
    nn = None
    if "nn" in doc:
        nn_doc = doc["nn"]
        nn = NNResult(
            candidates=[
                NNCandidate(
                    oid=int(c["oid"]),
                    probability=float(c["probability"]),
                    expected_distance=float(c["expected_distance"]),
                )
                for c in nn_doc["candidates"]
            ],
            node_accesses=int(nn_doc["node_accesses"]),
            data_page_reads=int(nn_doc["data_page_reads"]),
            objects_examined=int(nn_doc["objects_examined"]),
            mc_rounds=int(nn_doc["mc_rounds"]),
            wall_seconds=float(nn_doc["wall_seconds"]),
            shards_skipped=int(nn_doc["shards_skipped"]),
        )
    result = Result(
        spec=spec_from_doc(doc["spec"]),
        method=doc["method"],
        object_ids=[int(oid) for oid in doc["object_ids"]],
        stats=stats_from_doc(doc["stats"]),
        nn=nn,
    )
    probs = None
    if "probs" in doc:
        probs = {int(oid): float(p) for oid, p in doc["probs"].items()}
    return result, probs
