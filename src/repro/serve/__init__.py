"""``repro.serve`` — the concurrent network front-end over one engine.

Serve a :class:`~repro.api.Database` to many concurrent clients::

    from repro import Database, ExecConfig, RangeSpec, Rect
    from repro.serve import QueryServer, ServeClient

    db = Database.create(objects, ExecConfig(batch_window_ms=5.0))
    with QueryServer(db) as server:                  # port 0 = ephemeral
        with ServeClient(*server.address) as client:
            result = client.query(RangeSpec(Rect([0, 0], [5e3, 5e3]), 0.8))
            print(result.object_ids)

Wire format, verbs and error codes live in :mod:`repro.serve.protocol`;
cross-client batch forming and the snapshot read/write split in
:mod:`repro.serve.queue`; the socket server in
:mod:`repro.serve.server`; the client SDK in :mod:`repro.serve.client`.
"""

from repro.serve.client import BusyError, ServeClient, ServeError, ServedRun
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_CODES,
    PROTOCOL_VERSION,
    BadFrame,
    BadRequest,
    FrameTooLarge,
    ProtocolError,
    VersionMismatch,
)
from repro.serve.queue import AdmissionQueue, QueueFull, ReadWriteLock
from repro.serve.server import QueryServer

__all__ = [
    "AdmissionQueue",
    "BadFrame",
    "BadRequest",
    "BusyError",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "FrameTooLarge",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryServer",
    "QueueFull",
    "ReadWriteLock",
    "ServeClient",
    "ServeError",
    "ServedRun",
    "VersionMismatch",
]
