"""Admission control: cross-client batch forming in front of one engine.

The server's whole throughput story lives here.  Every client request
lands in one bounded queue; a single dispatcher thread collects whatever
arrives within a ``batch_window_ms`` window, groups compatible requests
(same per-client config overlay), and submits each group as **one**
:meth:`repro.api.Database.run` batch.  The existing
:class:`~repro.exec.batch.BatchExecutor` then does what it has done
since PR 1 — fetch each candidate data page once for the whole batch and
memoise ``(address, rect)`` appearance probabilities — except the
batch's queries now come from *different clients*, so concurrent
sessions pay for shared pages and repeated rectangles once instead of
once each.  Answers are unaffected (batching changes cost, never
answers); the wire-equivalence suite pins that.

Admission is bounded: when ``max_inflight`` requests are already
pending, :meth:`AdmissionQueue.submit` raises :class:`QueueFull` and the
server sheds the request with a typed ``BUSY`` reply instead of growing
an unbounded backlog.

The dispatcher holds the server's :class:`ReadWriteLock` in read mode
for the whole group run, while writes (insert/delete) take it in write
mode — so a query batch sees every update either entirely applied or not
at all, never a structure mid-mutation.  That is the snapshot the wire
contract promises: reads admitted before a write drained see the
pre-write database; reads after it see the post-write one.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from dataclasses import dataclass, field

from repro.api.specs import QuerySpec, RangeSpec, Result
from repro.serve.protocol import BadRequest

__all__ = ["AdmissionQueue", "PendingRequest", "QueueFull", "ReadWriteLock"]

# The per-batch overlay keys a client may set; everything else in the
# server's base ExecConfig is fixed at serve time.  These are exactly
# Database.run's per-call overrides — pure cost knobs, never answers.
OVERLAY_KEYS = ("method", "parallelism", "executor", "filter_kernel")


class QueueFull(Exception):
    """The admission bound is hit; the caller must shed the request."""


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    Readers (query batches, P_app lookups) share; writers (insert /
    delete / rebalance) exclude everyone.  Writer preference keeps a
    steady query stream from starving updates: once a writer is waiting,
    new readers queue behind it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc_info):
            self._release()

    def read(self) -> "ReadWriteLock._Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "ReadWriteLock._Guard":
        return self._Guard(self.acquire_write, self.release_write)


def _overlay_key(overlay: dict) -> tuple:
    return tuple(sorted(overlay.items()))


def validate_overlay(overlay: dict | None) -> dict:
    """A client overlay narrowed to the allowed knobs (typed errors)."""
    if overlay is None:
        return {}
    if not isinstance(overlay, dict):
        raise BadRequest(
            f"overlay must be an object, got {type(overlay).__name__}"
        )
    unknown = sorted(set(overlay) - set(OVERLAY_KEYS))
    if unknown:
        raise BadRequest(
            f"unknown overlay keys {unknown}; allowed: {list(OVERLAY_KEYS)}"
        )
    out: dict = {}
    if "method" in overlay:
        if not isinstance(overlay["method"], str):
            raise BadRequest("overlay.method must be a string")
        out["method"] = overlay["method"]
    if "parallelism" in overlay:
        try:
            out["parallelism"] = int(overlay["parallelism"])
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"overlay.parallelism must be an int: {exc}") from exc
        if out["parallelism"] < 1:
            raise BadRequest("overlay.parallelism must be at least 1")
    if "executor" in overlay:
        if overlay["executor"] not in ("thread", "process"):
            raise BadRequest(
                f"overlay.executor must be 'thread' or 'process', "
                f"got {overlay['executor']!r}"
            )
        out["executor"] = overlay["executor"]
    if "filter_kernel" in overlay:
        if not isinstance(overlay["filter_kernel"], bool):
            raise BadRequest("overlay.filter_kernel must be a boolean")
        out["filter_kernel"] = overlay["filter_kernel"]
    return out


@dataclass
class PendingRequest:
    """One client's specs waiting for (or holding) their batch's answers."""

    specs: list[QuerySpec]
    overlay: dict = field(default_factory=dict)
    want_probs: bool = False
    done: threading.Event = field(default_factory=threading.Event)
    results: list[Result] | None = None
    probs: list[dict[int, float] | None] | None = None
    error: BaseException | None = None

    def wait(self, timeout: float | None = None) -> None:
        """Block until dispatched; re-raise the batch's failure here."""
        if not self.done.wait(timeout):
            raise TimeoutError("request was not dispatched in time")
        if self.error is not None:
            raise self.error


class AdmissionQueue:
    """The bounded request queue and its batch-forming dispatcher.

    Args:
        db: the served :class:`~repro.api.Database`.
        lock: the server's :class:`ReadWriteLock` (read side here).
        max_inflight: pending-request bound; beyond it :meth:`submit`
            raises :class:`QueueFull`.
        batch_window_ms: how long the dispatcher holds the *first*
            request of a batch open for companions.  ``0`` still
            coalesces whatever is already queued (no artificial delay).
        clock: monotonic time source (tests inject a fake).
    """

    def __init__(
        self,
        db,
        lock: ReadWriteLock,
        *,
        max_inflight: int = 64,
        batch_window_ms: float = 2.0,
        clock=time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        self._db = db
        self._lock = lock
        self._window = batch_window_ms / 1000.0
        self._clock = clock
        self._pending: _queue.Queue = _queue.Queue(maxsize=max_inflight)
        self._closed = False
        self._stop_after_batch = False
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "specs": 0,
            "busy_rejections": 0,
            "batches": 0,
            "cross_client_batches": 0,
            "largest_batch_specs": 0,
            "largest_batch_requests": 0,
        }
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(
        self,
        specs: list[QuerySpec],
        *,
        overlay: dict | None = None,
        want_probs: bool = False,
    ) -> PendingRequest:
        """Enqueue one request; raises :class:`QueueFull` over the bound."""
        if self._closed:
            raise QueueFull("server is shutting down")
        pending = PendingRequest(
            specs=list(specs),
            overlay=validate_overlay(overlay),
            want_probs=want_probs,
        )
        try:
            self._pending.put_nowait(pending)
        except _queue.Full:
            with self._stats_lock:
                self._stats["busy_rejections"] += 1
            raise QueueFull(
                f"admission queue is at its bound "
                f"({self._pending.maxsize} in-flight requests)"
            ) from None
        with self._stats_lock:
            self._stats["requests"] += 1
            self._stats["specs"] += len(pending.specs)
        return pending

    def stats(self) -> dict:
        with self._stats_lock:
            out = dict(self._stats)
        out["avg_batch_requests"] = (
            out["requests"] / out["batches"] if out["batches"] else 0.0
        )
        return out

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------
    def _collect_window(self, first: PendingRequest) -> list[PendingRequest]:
        """The batch-forming wait: hold the window open for companions.

        Once the window closes, whatever is already queued is still swept
        in (no artificial delay, and a 0ms window still coalesces a
        backlog); only then does the group go to execution.
        """
        group = [first]
        cap = self._pending.maxsize  # bounds the post-window sweep
        deadline = self._clock() + self._window
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                while len(group) <= cap:
                    try:
                        nxt = self._pending.get_nowait()
                    except _queue.Empty:
                        return group
                    if nxt is None:  # shutdown sentinel: stop after this batch
                        self._stop_after_batch = True
                        return group
                    group.append(nxt)
                return group
            try:
                nxt = self._pending.get(timeout=remaining)
            except _queue.Empty:
                return group
            if nxt is None:
                self._stop_after_batch = True
                return group
            group.append(nxt)

    def _dispatch_loop(self) -> None:
        while True:
            first = self._pending.get()
            if first is None:
                break
            group = self._collect_window(first)
            for key_group in self._split_by_overlay(group):
                self._run_group(key_group)
            if self._stop_after_batch:  # sentinel swept mid-window
                break
        # Drain anything still queued after the sentinel with a typed
        # shutdown failure, so no client blocks forever.
        while True:
            try:
                leftover = self._pending.get_nowait()
            except _queue.Empty:
                break
            if leftover is None:
                continue
            leftover.error = QueueFull("server shut down before dispatch")
            leftover.done.set()

    @staticmethod
    def _split_by_overlay(group: list[PendingRequest]) -> list[list[PendingRequest]]:
        by_key: dict[tuple, list[PendingRequest]] = {}
        for pending in group:
            by_key.setdefault(_overlay_key(pending.overlay), []).append(pending)
        return list(by_key.values())

    def _run_group(self, group: list[PendingRequest]) -> None:
        """One cross-client batch: a single Database.run under read lock."""
        specs: list[QuerySpec] = []
        for pending in group:
            specs.extend(pending.specs)
        overlay = group[0].overlay
        try:
            with self._lock.read():
                out = self._db.run(specs, **overlay)
                # P_app lookups stay inside the same read window so the
                # probabilities describe the snapshot the answers came
                # from (a write between run and lookup could delete an
                # answered oid).
                cursor = 0
                for pending in group:
                    n = len(pending.specs)
                    pending.results = out.results[cursor:cursor + n]
                    cursor += n
                    if pending.want_probs:
                        pending.probs = [
                            self._db.probabilities(
                                result.spec.rect,
                                result.object_ids,
                                method=result.method,
                            )
                            if isinstance(result.spec, RangeSpec)
                            else None
                            for result in pending.results
                        ]
        except BaseException as exc:  # noqa: BLE001 - routed to each client
            for pending in group:
                pending.error = exc
                pending.done.set()
            return
        with self._stats_lock:
            self._stats["batches"] += 1
            if len(group) > 1:
                self._stats["cross_client_batches"] += 1
            self._stats["largest_batch_specs"] = max(
                self._stats["largest_batch_specs"], len(specs)
            )
            self._stats["largest_batch_requests"] = max(
                self._stats["largest_batch_requests"], len(group)
            )
        for pending in group:
            pending.done.set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop admitting, dispatch what's queued, join the dispatcher."""
        if self._closed:
            return
        self._closed = True
        # May wait for a slot when the queue is at its bound, but the
        # dispatcher is still consuming, so the sentinel always lands.
        self._pending.put(None)
        self._dispatcher.join(timeout)
