"""The query service: one shared ``Database`` behind many sockets.

:class:`QueryServer` wraps exactly one :class:`~repro.api.Database` and
accepts any number of concurrent clients over the length-prefixed JSON
protocol of :mod:`repro.serve.protocol`.  The execution paths split:

* **reads** (``run`` — range and nearest specs) are admitted into the
  :class:`~repro.serve.queue.AdmissionQueue`, where a single dispatcher
  forms cross-client batches and executes them through the engine's
  batched executor under the shared read lock;
* **writes** (``insert`` / ``delete``) run on the connection's own
  thread under the exclusive write lock, straight through the facade's
  WAL-backed update path — with ``config.wal`` on and a checkpoint
  taken, every acknowledged write is fsync'd before it is applied.

The lock split is what gives wire clients snapshot reads: a query batch
never observes a half-applied update, because updates exclude readers
for exactly the duration of the in-memory mutation.

The server is deliberately in-process-friendly (port 0 binds an
ephemeral port, ``start``/``stop`` are cheap, everything is daemon
threads), so tests, benchmarks and the location-services example can
boot a real server and drive it over real sockets in milliseconds.
"""

from __future__ import annotations

import socket
import threading

from repro.api.config import ExecConfig
from repro.api.database import Database
from repro.api.specs import RangeSpec
from repro.serve import protocol
from repro.serve.protocol import (
    BadRequest,
    FrameTooLarge,
    ProtocolError,
    error_reply,
    ok_reply,
    recv_frame,
    result_doc,
    send_frame,
    spec_from_doc,
)
from repro.serve.queue import AdmissionQueue, QueueFull, ReadWriteLock
from repro.storage.serialize import SerializationError, density_from_descriptor
from repro.uncertainty.objects import UncertainObject

__all__ = ["QueryServer"]

_VERBS = ("ping", "run", "insert", "delete", "explain", "stats")


class QueryServer:
    """A threaded socket front-end over one shared database.

    Args:
        db: the database to serve.  The server owns its lifecycle from
            :meth:`start` to :meth:`stop` (which closes it by default).
        host/port: bind address; default from ``db.config.serve_host`` /
            ``serve_port`` (port 0 = ephemeral, read the resolved one
            from :attr:`port`).
        max_inflight: admission bound; default ``db.config.max_inflight``.
        batch_window_ms: batch-forming window; default
            ``db.config.batch_window_ms``.
        max_frame_bytes: largest accepted request frame.
    """

    def __init__(
        self,
        db: Database,
        *,
        host: str | None = None,
        port: int | None = None,
        max_inflight: int | None = None,
        batch_window_ms: float | None = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        config: ExecConfig = db.config
        self.db = db
        self.host = config.serve_host if host is None else host
        self._requested_port = config.serve_port if port is None else port
        self._max_inflight = (
            config.max_inflight if max_inflight is None else max_inflight
        )
        self._batch_window_ms = (
            config.batch_window_ms if batch_window_ms is None else batch_window_ms
        )
        self._max_frame_bytes = max_frame_bytes
        self.lock = ReadWriteLock()
        self.queue: AdmissionQueue | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._handlers: list[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._served = {"requests": 0, "errors": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (the resolved one when 0 was requested)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "QueryServer":
        with self._state_lock:
            if self._started:
                raise RuntimeError("server is already started")
            self._started = True
        self.queue = AdmissionQueue(
            self.db,
            self.lock,
            max_inflight=self._max_inflight,
            batch_window_ms=self._batch_window_ms,
        )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self, *, close_db: bool = True, timeout: float = 10.0) -> None:
        """Drain and shut down (idempotent).

        Stops accepting, closes every live connection, dispatches what
        the queue already admitted, then — by default — closes the
        database (which this PR made safe even when a batch is still in
        flight on another thread).
        """
        with self._state_lock:
            if self._stopping or not self._started:
                return
            self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._conn_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout)
        if self.queue is not None:
            self.queue.close(timeout)
        if close_db:
            self.db.close()

    def __enter__(self) -> "QueryServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accept / per-connection loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed: shutdown
                return
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="serve-conn", daemon=True,
            )
            with self._conn_lock:
                self._connections.add(conn)
                self._handlers = [h for h in self._handlers if h.is_alive()]
                self._handlers.append(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    doc = recv_frame(conn, max_bytes=self._max_frame_bytes)
                except FrameTooLarge as exc:
                    # The unread body leaves the stream out of sync: the
                    # typed reply is the last frame on this connection.
                    self._send_safe(conn, error_reply(0, exc.code, str(exc)))
                    return
                except ProtocolError as exc:
                    self._send_safe(conn, error_reply(0, exc.code, str(exc)))
                    return
                except OSError:  # socket closed under us (stop() or peer reset)
                    return
                if doc is None:  # clean disconnect
                    return
                reply = self._handle(doc)
                try:
                    send_frame(conn, reply)
                except OSError:
                    return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _send_safe(self, conn: socket.socket, payload: dict) -> None:
        try:
            send_frame(conn, payload)
        except OSError:  # peer already gone
            pass

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _handle(self, doc: dict) -> dict:
        req_id = doc.get("id", 0) if isinstance(doc.get("id", 0), int) else 0
        with self._state_lock:
            self._served["requests"] += 1
            if self._stopping:
                return error_reply(
                    req_id, "SHUTTING_DOWN", "server is shutting down"
                )
        try:
            protocol.check_version(doc)
            verb = doc.get("verb")
            if verb not in _VERBS:
                raise BadRequest(
                    f"unknown verb {verb!r}; supported: {list(_VERBS)}"
                )
            body = getattr(self, f"_verb_{verb}")(doc)
            return ok_reply(req_id, body)
        except QueueFull as exc:
            return error_reply(req_id, "BUSY", str(exc))
        except ProtocolError as exc:
            with self._state_lock:
                self._served["errors"] += 1
            return error_reply(req_id, exc.code, str(exc))
        except (KeyError, TypeError, ValueError, SerializationError) as exc:
            with self._state_lock:
                self._served["errors"] += 1
            return error_reply(req_id, "BAD_REQUEST", f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            with self._state_lock:
                self._served["errors"] += 1
            return error_reply(
                req_id, "SERVER_ERROR", f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def _verb_ping(self, doc: dict) -> dict:
        return {
            "server": {
                "protocol": protocol.PROTOCOL_VERSION,
                "methods": self.db.method_names,
                "objects": len(self.db),
                "dim": self.db.dim,
            }
        }

    def _verb_run(self, doc: dict) -> dict:
        specs_doc = doc.get("specs")
        if not isinstance(specs_doc, list) or not specs_doc:
            raise BadRequest("run needs a non-empty 'specs' list")
        specs = [spec_from_doc(d) for d in specs_doc]
        want_probs = bool(doc.get("probs", False))
        pending = self.queue.submit(
            specs, overlay=doc.get("overlay"), want_probs=want_probs
        )
        try:
            pending.wait()
        except (QueueFull, ProtocolError):
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"{type(exc).__name__}: {exc}") from exc
        probs = pending.probs or [None] * len(pending.results)
        return {
            "results": [
                result_doc(result, p)
                for result, p in zip(pending.results, probs)
            ]
        }

    def _verb_insert(self, doc: dict) -> dict:
        objects_doc = doc.get("objects")
        if not isinstance(objects_doc, list) or not objects_doc:
            raise BadRequest("insert needs a non-empty 'objects' list")
        objects = []
        for entry in objects_doc:
            if not isinstance(entry, dict) or "oid" not in entry or "pdf" not in entry:
                raise BadRequest("each object needs 'oid' and 'pdf' fields")
            objects.append(
                UncertainObject(int(entry["oid"]), density_from_descriptor(entry["pdf"]))
            )
        with self.lock.write():
            for obj in objects:
                self.db.insert(obj)
        return {"inserted": len(objects)}

    def _verb_delete(self, doc: dict) -> dict:
        oids_doc = doc.get("oids")
        if not isinstance(oids_doc, list) or not oids_doc:
            raise BadRequest("delete needs a non-empty 'oids' list")
        oids = [int(oid) for oid in oids_doc]
        deleted = []
        with self.lock.write():
            for oid in oids:
                outcome = self.db.delete(oid)
                if isinstance(outcome, dict):
                    outcome = any(v is not None for v in outcome.values())
                deleted.append(outcome is not None and outcome is not False)
        return {"deleted": deleted}

    def _verb_explain(self, doc: dict) -> dict:
        spec = spec_from_doc(doc.get("spec"))
        if not isinstance(spec, RangeSpec):
            raise BadRequest("explain prices range specs only")
        method = doc.get("method")
        with self.lock.read():
            explanation = self.db.explain(spec, method=method)
        return {
            "explain": {
                "choice": explanation.choice,
                "estimates": explanation.estimates,
                "shards": explanation.shards,
                "shard_probes": list(explanation.shard_probes),
                "shards_pruned": explanation.shards_pruned,
                "filter_kernel": explanation.filter_kernel,
                "batched": explanation.batched,
                "parallelism": explanation.parallelism,
                "executor": explanation.executor,
                "summary": explanation.summary(),
            }
        }

    def _verb_stats(self, doc: dict) -> dict:
        with self._state_lock:
            served = dict(self._served)
        return {
            "queue": self.queue.stats() if self.queue is not None else {},
            "served": served,
            "objects": len(self.db),
        }
