"""The wire client: the ``Database`` verbs over a socket.

:class:`ServeClient` speaks the protocol of :mod:`repro.serve.protocol`
to a :class:`~repro.serve.server.QueryServer` and exposes the same
query surface as the in-process facade — ``run`` / ``query`` /
``nearest`` / ``insert`` / ``delete`` / ``explain`` — returning the same
typed :class:`~repro.api.specs.Result` objects, so code written against
``Database`` ports to the served deployment by swapping the handle.
Served answers are bit-identical to in-process ones (the server runs
the same engine; ``tests/test_serve.py`` pins ids *and* P_app).

One client is one connection with synchronous request/reply framing;
use one client per thread (clients are cheap — the concurrency story
lives server-side, where the admission queue batches across them).

Typed failures: the server's error replies surface as
:class:`ServeError` (``.code`` from the protocol's vocabulary), with
:class:`BusyError` for admission-control shedding so load harnesses can
back off on exactly that.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from repro.api.specs import NearestSpec, QuerySpec, RangeSpec, Result
from repro.serve import protocol
from repro.serve.protocol import (
    recv_frame,
    request,
    result_from_doc,
    send_frame,
    spec_doc,
)
from repro.storage.serialize import density_descriptor
from repro.uncertainty.objects import UncertainObject

__all__ = ["BusyError", "ServeClient", "ServeError", "ServedRun"]


class ServeError(Exception):
    """A typed error reply from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class BusyError(ServeError):
    """The admission queue shed this request (back off and retry)."""


@dataclass
class ServedRun:
    """One served batch: typed results plus optional per-result P_app maps."""

    results: list[Result] = field(default_factory=list)
    # Parallel to ``results``: {oid: P_app} for range specs when the
    # batch was requested with ``probs=True``, else None per slot.
    probs: list[dict[int, float] | None] = field(default_factory=list)

    def answers(self) -> list[list[int]]:
        return [r.object_ids for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]


class ServeClient:
    """A connected client session (context-manager friendly)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self._max_frame_bytes = max_frame_bytes
        self._req_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _call(self, verb: str, body: dict | None = None) -> dict:
        self._req_id += 1
        send_frame(self._sock, request(verb, body, req_id=self._req_id))
        reply = recv_frame(self._sock, max_bytes=self._max_frame_bytes)
        if reply is None:
            raise ConnectionError("server closed the connection")
        if not reply.get("ok"):
            error = reply.get("error", {})
            code = error.get("code", "SERVER_ERROR")
            message = error.get("message", "")
            if code == "BUSY":
                raise BusyError(code, message)
            raise ServeError(code, message)
        return reply

    @staticmethod
    def _overlay(
        method: str | None,
        parallelism: int | None,
        executor: str | None,
        filter_kernel: bool | None,
    ) -> dict | None:
        overlay = {
            key: value
            for key, value in (
                ("method", method),
                ("parallelism", parallelism),
                ("executor", executor),
                ("filter_kernel", filter_kernel),
            )
            if value is not None
        }
        return overlay or None

    # ------------------------------------------------------------------
    # the Database verbs, over the wire
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._call("ping")["server"]

    def run(
        self,
        specs: list[QuerySpec],
        *,
        method: str | None = None,
        parallelism: int | None = None,
        executor: str | None = None,
        filter_kernel: bool | None = None,
        probs: bool = False,
    ) -> ServedRun:
        """Answer a batch of specs (the server may co-batch other clients).

        ``probs=True`` additionally returns each range result's appearance
        probabilities ({oid: P_app}), computed on the server from the
        same snapshot that produced the answer.
        """
        body: dict = {"specs": [spec_doc(s) for s in specs]}
        overlay = self._overlay(method, parallelism, executor, filter_kernel)
        if overlay:
            body["overlay"] = overlay
        if probs:
            body["probs"] = True
        reply = self._call("run", body)
        out = ServedRun()
        for doc in reply["results"]:
            result, p = result_from_doc(doc)
            out.results.append(result)
            out.probs.append(p)
        return out

    def query(self, spec: QuerySpec, *, method: str | None = None) -> Result:
        """Answer one spec (the single-query convenience form)."""
        return self.run([spec], method=method).results[0]

    def nearest(self, spec: NearestSpec) -> Result:
        if not isinstance(spec, NearestSpec):
            raise TypeError(
                f"nearest() takes a NearestSpec, got {type(spec).__name__}"
            )
        return self.run([spec]).results[0]

    def insert(self, objects: UncertainObject | list[UncertainObject]) -> int:
        """Insert one object (or a list) through the server's write path."""
        if isinstance(objects, UncertainObject):
            objects = [objects]
        reply = self._call(
            "insert",
            {
                "objects": [
                    {"oid": int(obj.oid), "pdf": density_descriptor(obj.pdf)}
                    for obj in objects
                ]
            },
        )
        return int(reply["inserted"])

    def delete(self, oids: int | list[int]) -> bool | list[bool]:
        """Delete by oid; returns whether each oid was present."""
        single = isinstance(oids, int)
        oid_list = [oids] if single else list(oids)
        deleted = self._call("delete", {"oids": oid_list})["deleted"]
        return deleted[0] if single else deleted

    def explain(self, spec: RangeSpec, *, method: str | None = None) -> dict:
        body: dict = {"spec": spec_doc(spec)}
        if method is not None:
            body["method"] = method
        return self._call("explain", body)["explain"]

    def stats(self) -> dict:
        reply = self._call("stats")
        return {k: v for k, v in reply.items() if k not in ("v", "id", "ok")}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
