"""Hyper-rectangle geometry primitives."""

from repro.geometry.rect import Rect

__all__ = ["Rect"]
