"""Axis-aligned hyper-rectangles in d-dimensional space.

The whole reproduction is built on top of this module: uncertainty-region
MBRs, PCRs, CFB evaluations, and every index entry are axis-aligned boxes.
A :class:`Rect` stores two ``float64`` vectors ``lo`` and ``hi`` with
``lo <= hi`` component-wise.  All geometric predicates used by the paper
(area, margin, overlap, centroid distance, containment, the R* penalty
metrics) live here.

For bulk work the index engine operates on *profiles*: arrays of shape
``(L, 2, d)`` holding ``L`` stacked rectangles (layer ``j`` is the box at
the ``j``-th U-catalog value).  The ``profile_*`` functions implement the
"summed" metrics of Section 5.3 of the paper without constructing Rect
objects layer by layer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "Rect",
    "profile_area",
    "profile_margin",
    "profile_overlap",
    "profile_centroid_distance",
    "profile_union",
    "profile_contains_profile",
]


class Rect:
    """An axis-aligned hyper-rectangle ``[lo_1, hi_1] x ... x [lo_d, hi_d]``.

    Instances are immutable by convention: all operations return new
    rectangles.  Degenerate rectangles (``lo == hi`` on some axes) are
    allowed; they arise naturally, e.g. ``pcr(0.5)`` collapses to a point.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Iterable[float], hi: Iterable[float]):
        lo_arr = np.asarray(lo, dtype=np.float64)
        hi_arr = np.asarray(hi, dtype=np.float64)
        if lo_arr.shape != hi_arr.shape or lo_arr.ndim != 1:
            raise ValueError(
                f"lo and hi must be 1-D vectors of equal length, "
                f"got shapes {lo_arr.shape} and {hi_arr.shape}"
            )
        if lo_arr.size == 0:
            raise ValueError("rectangles must have at least one dimension")
        if np.any(lo_arr > hi_arr):
            raise ValueError(f"lo must not exceed hi: lo={lo_arr}, hi={hi_arr}")
        self.lo = lo_arr
        self.hi = hi_arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, lo: np.ndarray, hi: np.ndarray) -> "Rect":
        """Unvalidated fast-path constructor for internally produced rects.

        Skips the shape/ordering checks of ``__init__``: the caller must
        supply 1-D float64 arrays with ``lo <= hi`` component-wise (and
        must not mutate them afterwards).  Hot paths that derive bounds
        from already-valid rectangles (PCR profile slices, unions,
        intersections) use this; anything built from external input goes
        through the validating constructor.
        """
        rect = object.__new__(cls)
        rect.lo = lo
        rect.hi = hi
        return rect

    @classmethod
    def from_point(cls, point: Iterable[float]) -> "Rect":
        """A degenerate rectangle covering a single point."""
        p = np.asarray(point, dtype=np.float64)
        return cls(p, p.copy())

    @classmethod
    def from_center(cls, center: Iterable[float], half_extent: Iterable[float] | float) -> "Rect":
        """A rectangle centred at ``center`` extending ``half_extent`` per axis."""
        c = np.asarray(center, dtype=np.float64)
        h = np.broadcast_to(np.asarray(half_extent, dtype=np.float64), c.shape)
        if np.any(h < 0):
            raise ValueError("half_extent must be non-negative")
        return cls(c - h, c + h)

    @classmethod
    def bounding(cls, rects: Sequence["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty set of rectangles."""
        if not rects:
            raise ValueError("cannot bound an empty collection of rectangles")
        lo = np.min(np.stack([r.lo for r in rects]), axis=0)
        hi = np.max(np.stack([r.hi for r in rects]), axis=0)
        return cls.from_arrays(lo, hi)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self.lo.size

    @property
    def extent(self) -> np.ndarray:
        """Per-axis side lengths ``hi - lo``."""
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        """The centroid of the rectangle."""
        return (self.lo + self.hi) / 2.0

    def area(self) -> float:
        """The d-dimensional volume (the paper calls this AREA)."""
        return float(np.prod(self.extent))

    def margin(self) -> float:
        """Sum of side lengths (the paper's MARGIN penalty, up to a constant).

        Following the R*-tree literature we use ``sum(extent)``; the true
        perimeter is ``2^(d-1)`` times this and the constant is irrelevant
        for all comparisons the algorithms make.
        """
        return float(np.sum(self.extent))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True iff the two closed rectangles share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside this rectangle."""
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def contains_point(self, point: Iterable[float]) -> bool:
        """True iff ``point`` lies inside this closed rectangle."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=np.float64)
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=1)

    # ------------------------------------------------------------------
    # combinations
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """The MBR of this rectangle and ``other``."""
        return Rect.from_arrays(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Rect.from_arrays(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        """Volume of the intersection (0.0 when disjoint)."""
        widths = np.minimum(self.hi, other.hi) - np.maximum(self.lo, other.lo)
        if np.any(widths < 0):
            return 0.0
        return float(np.prod(widths))

    def centroid_distance(self, other: "Rect") -> float:
        """Euclidean distance between the two centroids (the R* CDIST metric)."""
        return float(np.linalg.norm(self.center - other.center))

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (the R-tree insertion penalty)."""
        return self.union(other).area() - self.area()

    def expanded(self, amount: float) -> "Rect":
        """A copy grown by ``amount`` on every side (clamped to stay valid)."""
        lo = self.lo - amount
        hi = self.hi + amount
        mid = (lo + hi) / 2.0
        return Rect.from_arrays(np.minimum(lo, mid), np.maximum(hi, mid))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """A ``(2, d)`` array ``[lo, hi]`` (a single profile layer)."""
        return np.stack([self.lo, self.hi])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def approx_equals(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Equality up to absolute tolerance ``tol`` per coordinate."""
        return bool(
            np.allclose(self.lo, other.lo, atol=tol) and np.allclose(self.hi, other.hi, atol=tol)
        )

    def __repr__(self) -> str:
        lo = ", ".join(f"{v:g}" for v in self.lo)
        hi = ", ".join(f"{v:g}" for v in self.hi)
        return f"Rect(lo=[{lo}], hi=[{hi}])"


# ----------------------------------------------------------------------
# Profile operations.
#
# A profile is an (L, 2, d) float64 array: L stacked rectangles, where
# profile[j, 0] is the lo vector and profile[j, 1] the hi vector of the
# j-th layer.  The U-tree/U-PCR "summed" penalty metrics (Section 5.3)
# are plain sums of the per-layer classic metrics.
# ----------------------------------------------------------------------

def _check_profile(profile: np.ndarray) -> np.ndarray:
    arr = np.asarray(profile, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[1] != 2:
        raise ValueError(f"profile must have shape (L, 2, d), got {arr.shape}")
    return arr


def profile_area(profile: np.ndarray) -> float:
    """Summed area over all layers: sum_j AREA(layer_j)."""
    arr = _check_profile(profile)
    return float(np.sum(np.prod(arr[:, 1, :] - arr[:, 0, :], axis=1)))


def profile_margin(profile: np.ndarray) -> float:
    """Summed margin over all layers: sum_j MARGIN(layer_j)."""
    arr = _check_profile(profile)
    return float(np.sum(arr[:, 1, :] - arr[:, 0, :]))


def profile_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Summed overlap: sum_j OVERLAP(a_j, b_j)."""
    a_arr = _check_profile(a)
    b_arr = _check_profile(b)
    widths = np.minimum(a_arr[:, 1, :], b_arr[:, 1, :]) - np.maximum(a_arr[:, 0, :], b_arr[:, 0, :])
    widths = np.maximum(widths, 0.0)
    return float(np.sum(np.prod(widths, axis=1)))


def profile_centroid_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Summed centroid distance: sum_j CDIST(a_j, b_j)."""
    a_arr = _check_profile(a)
    b_arr = _check_profile(b)
    ca = (a_arr[:, 0, :] + a_arr[:, 1, :]) / 2.0
    cb = (b_arr[:, 0, :] + b_arr[:, 1, :]) / 2.0
    return float(np.sum(np.linalg.norm(ca - cb, axis=1)))


def profile_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Layer-wise MBR of two profiles."""
    a_arr = _check_profile(a)
    b_arr = _check_profile(b)
    out = np.empty_like(a_arr)
    out[:, 0, :] = np.minimum(a_arr[:, 0, :], b_arr[:, 0, :])
    out[:, 1, :] = np.maximum(a_arr[:, 1, :], b_arr[:, 1, :])
    return out


def profile_contains_profile(outer: np.ndarray, inner: np.ndarray, tol: float = 1e-9) -> bool:
    """True iff every layer of ``outer`` contains the matching layer of ``inner``."""
    o = _check_profile(outer)
    i = _check_profile(inner)
    return bool(
        np.all(o[:, 0, :] <= i[:, 0, :] + tol) and np.all(i[:, 1, :] <= o[:, 1, :] + tol)
    )
