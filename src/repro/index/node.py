"""Nodes and entries of the multi-layer R* engine.

Every index in this library (classic R*-tree, U-tree, U-PCR) is an
instance of one engine over *profiles*: stacks of ``L`` rectangles, one
per U-catalog value (``L = 1`` for the precise R*-tree).  An entry pairs a
profile with either a child node (intermediate levels) or an opaque data
payload (leaf level).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Entry", "Node"]


class Entry:
    """One slot of a node: a profile plus a child pointer or leaf payload."""

    __slots__ = ("profile", "child", "data")

    def __init__(self, profile: np.ndarray, child: "Node | None" = None, data: Any = None):
        arr = np.asarray(profile, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[1] != 2:
            raise ValueError(f"profile must have shape (L, 2, d), got {arr.shape}")
        if child is not None and data is not None:
            raise ValueError("an entry is either intermediate (child) or leaf (data)")
        self.profile = arr
        self.child = child
        self.data = data

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def layer(self, j: int) -> np.ndarray:
        """The ``(2, d)`` rectangle of layer ``j``."""
        return self.profile[j]

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf_entry else "inner"
        return f"Entry({kind}, layers={self.profile.shape[0]})"


class Node:
    """A tree node occupying one simulated disk page.

    ``level`` counts from 0 at the leaves; the root is the unique node at
    the maximum level.
    """

    __slots__ = ("level", "page_id", "entries")

    def __init__(self, level: int, page_id: int):
        if level < 0:
            raise ValueError("level must be non-negative")
        self.level = level
        self.page_id = page_id
        self.entries: list[Entry] = []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def size(self) -> int:
        return len(self.entries)

    def stacked_profiles(self) -> np.ndarray:
        """All entry profiles as one ``(n, L, 2, d)`` array."""
        if not self.entries:
            raise ValueError("node has no entries to stack")
        return np.stack([e.profile for e in self.entries])

    def __repr__(self) -> str:
        return f"Node(level={self.level}, page={self.page_id}, entries={self.size})"
