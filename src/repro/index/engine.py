"""The multi-layer R* engine shared by the R*-tree, U-tree and U-PCR.

The three index structures in this library differ only in what their
entries *bound*:

* R*-tree — one MBR per entry (``L = 1`` layers);
* U-PCR — the exact layer-wise union of child PCRs at every catalog value;
* U-tree — two stored rectangles (``MBR⊥`` at ``p_1`` and ``MBR`` at
  ``p_m``) from which ``e.MBR(p)`` is derived *linearly* (Eq. 15), i.e.
  the intermediate layers are chord interpolations.

Everything else — choose-subtree, forced reinsert, node split, deletion
with condense — is the R*-tree algorithm with the paper's *summed* penalty
metrics (Section 5.3).  This engine implements that machinery once, over
``(L, 2, d)`` rectangle profiles, with two policy knobs:

* ``chord_values`` — catalog values; when given, node summaries keep only
  the first/last layers exact and chord-derive the rest (U-tree mode).
  Chord summaries remain conservative: layer-wise union of linear-in-p
  boxes is concave (lower faces) / convex (upper faces) in ``p``, so the
  chord bounds it from outside.
* ``split_layer`` / ``split_mode`` — the paper's median-catalog-value
  split versus the expensive all-layer split (ablation).

All structural modifications charge simulated page I/O so the update-cost
experiment (Fig. 11) falls out of the same accounting as queries.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

import numpy as np

from repro.index import metrics
from repro.index.node import Entry, Node
from repro.index.split import rstar_split, rstar_split_profiles
from repro.storage.bufferpool import BufferPool
from repro.storage.layout import NodeLayout
from repro.storage.pager import IOCounter, PageStore

__all__ = ["RStarEngine"]


class RStarEngine:
    """A dynamic R*-style tree over multi-layer rectangle profiles."""

    def __init__(
        self,
        dim: int,
        layers: int,
        layout: NodeLayout,
        *,
        io: IOCounter | None = None,
        pool: BufferPool | None = None,
        chord_values: np.ndarray | None = None,
        split_layer: int | None = None,
        split_mode: str = "median-layer",
        reinsert_fraction: float = 0.3,
        min_fill_fraction: float = 0.4,
    ):
        if dim < 1:
            raise ValueError("dim must be at least 1")
        if layers < 1:
            raise ValueError("layers must be at least 1")
        if split_mode not in ("median-layer", "all-layers"):
            raise ValueError(f"unknown split_mode {split_mode!r}")
        if not 0.0 < reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")
        self.dim = dim
        self.layers = layers
        self.layout = layout
        self.io = io if io is not None else IOCounter()
        self.store = PageStore(self.io, layout.page_size, pool=pool)
        self.split_mode = split_mode
        self.split_layer = layers // 2 if split_layer is None else split_layer
        if not 0 <= self.split_layer < layers:
            raise ValueError("split_layer out of range")
        self.reinsert_fraction = reinsert_fraction
        self.min_fill_fraction = min_fill_fraction

        if chord_values is not None:
            vals = np.asarray(chord_values, dtype=np.float64)
            if vals.shape != (layers,):
                raise ValueError("chord_values must have one value per layer")
            if layers > 1:
                span = vals[-1] - vals[0]
                if span <= 0:
                    raise ValueError("chord_values must be ascending")
                self._chord_t: np.ndarray | None = (vals - vals[0]) / span
            else:
                self._chord_t = np.zeros(1)
        else:
            self._chord_t = None

        self.root = Node(level=0, page_id=self.store.allocate())
        self._size = 0
        self._overflow_seen: set[int] = set()
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self.root.level + 1

    @property
    def node_count(self) -> int:
        return self.store.page_count

    @property
    def size_bytes(self) -> int:
        """Index size: one page per node (Table 1's metric)."""
        return self.store.size_bytes

    def insert(self, profile: np.ndarray, data: Any) -> None:
        """Insert a leaf entry with the given profile and payload."""
        entry = Entry(np.asarray(profile, dtype=np.float64), data=data)
        if entry.profile.shape != (self.layers, 2, self.dim):
            raise ValueError(
                f"profile shape {entry.profile.shape} does not match "
                f"engine ({self.layers}, 2, {self.dim})"
            )
        self._overflow_seen = set()
        self._dirty = set()
        self._insert_at_level(entry, 0)
        self._size += 1
        self._flush_dirty()

    def delete(self, match: Callable[[Any], bool], profile: np.ndarray) -> bool:
        """Delete the first leaf entry whose payload satisfies ``match``.

        ``profile`` guides the search: only subtrees whose layer-0 box
        contains the entry's layer-0 box are explored.  Returns True when
        an entry was found and removed.
        """
        probe = np.asarray(profile, dtype=np.float64)
        found = self._find_leaf(self.root, match, probe, [], [])
        if found is None:
            return False
        nodes, idxs, entry_idx = found
        self._overflow_seen = set()
        self._dirty = set()
        leaf = nodes[-1]
        del leaf.entries[entry_idx]
        self._dirty.add(leaf.page_id)
        self._condense(nodes, idxs)
        self._size -= 1
        self._flush_dirty()
        return True

    def traverse(
        self,
        descend: Callable[[Entry], bool],
        on_leaf_entry: Callable[[Entry], None],
    ) -> int:
        """Generic guided traversal, charging one page read per visited node.

        ``descend(entry)`` decides whether an intermediate entry's subtree
        is visited; every entry of every visited leaf is passed to
        ``on_leaf_entry``.  Returns the number of node accesses.
        """
        stack = [self.root]
        accesses = 0
        while stack:
            node = stack.pop()
            self.store.touch_read(node.page_id)
            accesses += 1
            if node.is_leaf:
                for entry in node.entries:
                    on_leaf_entry(entry)
            else:
                for entry in node.entries:
                    if descend(entry):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return accesses

    def leaf_entries(self) -> Iterator[Entry]:
        """Iterate all leaf entries (no I/O charged; for testing/inspection)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]

    # ------------------------------------------------------------------
    # invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        self._check_node(self.root, is_root=True, expected_level=self.root.level)

    def _check_node(self, node: Node, is_root: bool, expected_level: int) -> None:
        assert node.level == expected_level, "level mismatch"
        cap = self._capacity(node)
        assert node.size <= cap, f"node over capacity: {node.size} > {cap}"
        if not is_root and self._size > 0:
            assert node.size >= self._min_fill(node), "node under-filled"
        if node.is_leaf:
            for entry in node.entries:
                assert entry.is_leaf_entry, "leaf node holds an inner entry"
            return
        for entry in node.entries:
            assert entry.child is not None, "inner node holds a leaf entry"
            child = entry.child
            assert child.level == node.level - 1, "child level mismatch"
            summary = self._summarize(child)
            tol = 1e-6
            assert np.all(entry.profile[:, 0, :] <= summary[:, 0, :] + tol) and np.all(
                summary[:, 1, :] <= entry.profile[:, 1, :] + tol
            ), "parent entry does not bound its child"
            self._check_node(child, is_root=False, expected_level=node.level - 1)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def _summarize(self, node: Node) -> np.ndarray:
        """Bounding profile of a node: exact unions, or chord-derived."""
        union = metrics.stacked_union(node.stacked_profiles())
        return self._derive(union)

    def _derive(self, union: np.ndarray) -> np.ndarray:
        if self._chord_t is None or self.layers == 1:
            return union
        first = union[0]
        last = union[-1]
        return first[None, :, :] + self._chord_t[:, None, None] * (last - first)[None, :, :]

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _capacity(self, node: Node) -> int:
        return self.layout.leaf_capacity if node.is_leaf else self.layout.inner_capacity

    def _min_fill(self, node: Node) -> int:
        return self.layout.min_fill(self._capacity(node), self.min_fill_fraction)

    def _insert_at_level(self, entry: Entry, level: int) -> None:
        if level > self.root.level:
            raise RuntimeError("cannot insert above the root level")
        nodes, idxs = self._choose_path(entry.profile, level)
        for node in nodes:
            self.store.touch_read(node.page_id)
        target = nodes[-1]
        target.entries.append(entry)
        self._dirty.add(target.page_id)
        self._refresh_upward(nodes, idxs)
        if target.size > self._capacity(target):
            self._handle_overflow(nodes, idxs)

    def _choose_path(self, profile: np.ndarray, level: int) -> tuple[list[Node], list[int]]:
        nodes = [self.root]
        idxs: list[int] = []
        node = self.root
        while node.level > level:
            i = self._choose_subtree(node, profile)
            idxs.append(i)
            node = node.entries[i].child  # type: ignore[assignment]
            nodes.append(node)
        return nodes, idxs

    def _choose_subtree(self, node: Node, profile: np.ndarray) -> int:
        stacked = node.stacked_profiles()
        enlarged = metrics.union_with(stacked, profile)
        areas_before = metrics.summed_areas(stacked)
        areas_after = metrics.summed_areas(enlarged)
        area_enl = areas_after - areas_before

        if node.level == 1:
            # Children are leaves: minimise summed overlap enlargement
            # (ties: area enlargement, then area), per the R* rule.
            n = node.size
            best = -1
            best_key: tuple[float, float, float] | None = None
            for i in range(n):
                mask = np.arange(n) != i
                others = stacked[mask]
                before = metrics.summed_overlap_with_each(stacked[i], others).sum()
                after = metrics.summed_overlap_with_each(enlarged[i], others).sum()
                key = (after - before, area_enl[i], areas_before[i])
                if best_key is None or key < best_key:
                    best_key = key
                    best = i
            return best

        order = np.lexsort((areas_before, area_enl))
        return int(order[0])

    def _refresh_upward(self, nodes: list[Node], idxs: list[int]) -> None:
        for i in range(len(nodes) - 1, 0, -1):
            parent = nodes[i - 1]
            parent.entries[idxs[i - 1]].profile = self._summarize(nodes[i])
            self._dirty.add(parent.page_id)

    def _handle_overflow(self, nodes: list[Node], idxs: list[int]) -> None:
        node = nodes[-1]
        if len(nodes) > 1 and node.level not in self._overflow_seen:
            self._overflow_seen.add(node.level)
            self._forced_reinsert(nodes, idxs)
        else:
            self._split_node(nodes, idxs)

    def _forced_reinsert(self, nodes: list[Node], idxs: list[int]) -> None:
        """R* forced reinsert: evict the entries farthest from the node
        centre (summed centroid distance) and re-insert them from the root,
        closest first."""
        node = nodes[-1]
        stacked = node.stacked_profiles()
        summary = self._derive(metrics.stacked_union(stacked))
        distances = metrics.summed_centroid_distances(stacked, summary)
        k = max(1, int(round(self.reinsert_fraction * node.size)))
        order = np.argsort(distances, kind="stable")
        keep = sorted(order[: node.size - k].tolist())
        evict = order[node.size - k:].tolist()  # ascending distance
        entries = node.entries
        evicted = [entries[i] for i in evict]
        node.entries = [entries[i] for i in keep]
        self._dirty.add(node.page_id)
        self._refresh_upward(nodes, idxs)
        for entry in evicted:
            self._insert_at_level(entry, node.level)

    def _split_node(self, nodes: list[Node], idxs: list[int]) -> None:
        node = nodes[-1]
        entries = node.entries
        stacked = node.stacked_profiles()
        min_fill = self._min_fill(node)
        if self.split_mode == "all-layers":
            g1, g2 = rstar_split_profiles(stacked, min_fill)
        else:
            g1, g2 = rstar_split(stacked[:, self.split_layer], min_fill)

        sibling = Node(node.level, self.store.allocate())
        node.entries = [entries[i] for i in g1]
        sibling.entries = [entries[i] for i in g2]
        self._dirty.add(node.page_id)
        self._dirty.add(sibling.page_id)

        if len(nodes) == 1:
            new_root = Node(node.level + 1, self.store.allocate())
            new_root.entries = [
                Entry(self._summarize(node), child=node),
                Entry(self._summarize(sibling), child=sibling),
            ]
            self.root = new_root
            self._dirty.add(new_root.page_id)
            return

        parent = nodes[-2]
        parent.entries[idxs[-1]].profile = self._summarize(node)
        parent.entries.append(Entry(self._summarize(sibling), child=sibling))
        self._dirty.add(parent.page_id)
        self._refresh_upward(nodes[:-1], idxs[:-1])
        if parent.size > self._capacity(parent):
            self._handle_overflow(nodes[:-1], idxs[:-1])

    # ------------------------------------------------------------------
    # deletion machinery
    # ------------------------------------------------------------------
    def _find_leaf(
        self,
        node: Node,
        match: Callable[[Any], bool],
        probe: np.ndarray,
        nodes: list[Node],
        idxs: list[int],
    ) -> tuple[list[Node], list[int], int] | None:
        nodes = nodes + [node]
        self.store.touch_read(node.page_id)
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if match(entry.data):
                    return nodes, idxs, i
            return None
        tol = 1e-9
        for i, entry in enumerate(node.entries):
            box = entry.profile[0]
            if np.all(box[0] <= probe[0, 0] + tol) and np.all(probe[0, 1] <= box[1] + tol):
                found = self._find_leaf(entry.child, match, probe, nodes, idxs + [i])  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, nodes: list[Node], idxs: list[int]) -> None:
        orphans: list[tuple[int, Entry]] = []
        for i in range(len(nodes) - 1, 0, -1):
            node = nodes[i]
            parent = nodes[i - 1]
            if node.size < self._min_fill(node):
                del parent.entries[idxs[i - 1]]
                self._dirty.add(parent.page_id)
                orphans.extend((node.level, e) for e in node.entries)
                self.store.free(node.page_id)
                self._dirty.discard(node.page_id)
            else:
                parent.entries[idxs[i - 1]].profile = self._summarize(node)
                self._dirty.add(parent.page_id)

        # Reinsert orphaned entries, lowest levels first.
        for level, entry in sorted(orphans, key=lambda pair: pair[0]):
            self._insert_at_level(entry, level)

        # Shrink the root while it is a one-child inner node.
        while not self.root.is_leaf and self.root.size == 1:
            old = self.root
            self.root = old.entries[0].child  # type: ignore[assignment]
            self.store.free(old.page_id)
            self._dirty.discard(old.page_id)

    # ------------------------------------------------------------------
    # I/O bookkeeping
    # ------------------------------------------------------------------
    def _flush_dirty(self) -> None:
        for page_id in self._dirty:
            self.store.touch_write(page_id)
        self._dirty = set()
