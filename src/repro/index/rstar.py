"""A classic R*-tree over precise rectangles.

This is the single-layer instantiation of the engine (Section 2.2 of the
paper).  It serves three roles in the reproduction: a structural sanity
check for the engine, the "conventional range search on reported
locations" strawman the introduction argues against, and the base line
that the U-tree's update algorithms are adapted from.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.geometry.rect import Rect
from repro.index.engine import RStarEngine
from repro.index.node import Entry
from repro.storage.layout import rstar_layout
from repro.storage.pager import IOCounter

__all__ = ["RStarTree"]


class RStarTree:
    """A dynamic R*-tree mapping rectangles to opaque payloads."""

    def __init__(self, dim: int, *, page_size: int = 4096, io: IOCounter | None = None):
        self.dim = dim
        self.io = io if io is not None else IOCounter()
        self.engine = RStarEngine(dim, 1, rstar_layout(dim, page_size), io=self.io)

    def __len__(self) -> int:
        return len(self.engine)

    @property
    def height(self) -> int:
        return self.engine.height

    @property
    def size_bytes(self) -> int:
        return self.engine.size_bytes

    def insert(self, rect: Rect, data: Any) -> None:
        """Insert a rectangle with its payload."""
        self.engine.insert(rect.as_array()[None, :, :], data)

    def delete(self, match: Callable[[Any], bool], rect: Rect) -> bool:
        """Delete the first entry under ``rect`` whose payload matches."""
        return self.engine.delete(match, rect.as_array()[None, :, :])

    def range_search(self, query: Rect) -> tuple[list[Any], int]:
        """All payloads intersecting ``query`` plus the node-access count."""
        results: list[Any] = []

        def descend(entry: Entry) -> bool:
            return query.intersects(Rect(entry.profile[0, 0], entry.profile[0, 1]))

        def on_leaf(entry: Entry) -> None:
            if query.intersects(Rect(entry.profile[0, 0], entry.profile[0, 1])):
                results.append(entry.data)

        accesses = self.engine.traverse(descend, on_leaf)
        return results, accesses

    def timed_range_search(self, query: Rect) -> tuple[list[Any], int, float]:
        """Like :meth:`range_search` but also reports wall time."""
        start = time.perf_counter()
        results, accesses = self.range_search(query)
        return results, accesses, time.perf_counter() - start

    def check_invariants(self) -> None:
        """Validate engine invariants."""
        self.engine.check_invariants()

    def all_rects(self) -> list[Rect]:
        """All stored rectangles (for testing)."""
        return [
            Rect(e.profile[0, 0], e.profile[0, 1]) for e in self.engine.leaf_entries()
        ]

    @staticmethod
    def brute_force(rects: list[tuple[Rect, Any]], query: Rect) -> list[Any]:
        """Reference answer for tests: linear scan intersection."""
        return [data for rect, data in rects if query.intersects(rect)]

    def bulk_insert(self, items: list[tuple[Rect, Any]]) -> None:
        """Insert many rectangles (convenience for tests/benchmarks)."""
        for rect, data in items:
            self.insert(rect, data)

    def profile_of(self, rect: Rect) -> np.ndarray:
        """The single-layer profile for ``rect`` (internal helper)."""
        return rect.as_array()[None, :, :]
