"""Sort-tile-recursive (STR) bulk loading for the multi-layer R* engine.

The paper builds its indexes by repeated insertion (that *is* the Fig. 11
experiment), but any production deployment of an R-tree family offers a
packing bulk loader: sort entries by the centre of their median-layer
box, tile the space into vertical slabs, sort each slab on the next axis,
and cut it into full nodes.  Applied level by level this yields a tree
with near-100 % node utilisation, far fewer pages, and a build cost of
one sort per axis instead of one tree descent per object.

``bulk_load`` replaces the contents of an *empty* engine in place, so the
tree facades (:meth:`repro.core.utree.UTree.bulk_load`) can expose it
without re-plumbing their constructors.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.index.engine import RStarEngine
from repro.index.node import Entry, Node

__all__ = ["bulk_load"]


def bulk_load(
    engine: RStarEngine,
    items: Sequence[tuple[np.ndarray, Any]],
    fill: float = 1.0,
) -> None:
    """STR-pack ``items`` (profile, payload pairs) into an empty engine.

    Args:
        engine: a freshly constructed engine (no prior inserts).
        items: leaf entries as ``(profile, data)`` pairs.
        fill: target node utilisation in (0, 1]; 1.0 packs nodes full,
            lower values leave slack for subsequent inserts.
    """
    if len(engine) != 0:
        raise ValueError("bulk_load requires an empty engine")
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    if not items:
        return

    entries = []
    for profile, data in items:
        entry = Entry(np.asarray(profile, dtype=np.float64), data=data)
        if entry.profile.shape != (engine.layers, 2, engine.dim):
            raise ValueError(
                f"profile shape {entry.profile.shape} does not match engine "
                f"({engine.layers}, 2, {engine.dim})"
            )
        entries.append(entry)

    # Free the empty root page; we rebuild the whole node set.
    engine.store.free(engine.root.page_id)

    level = 0
    capacity = max(2, int(engine.layout.leaf_capacity * fill))
    nodes = _pack_level(engine, entries, level, capacity)
    while len(nodes) > 1:
        level += 1
        capacity = max(2, int(engine.layout.inner_capacity * fill))
        parents = [Entry(engine._summarize(node), child=node) for node in nodes]
        nodes = _pack_level(engine, parents, level, capacity)

    engine.root = nodes[0]
    engine._size = len(entries)
    for page_id in list(engine._dirty):
        engine.store.touch_write(page_id)
    engine._dirty = set()


def _pack_level(
    engine: RStarEngine,
    entries: list[Entry],
    level: int,
    capacity: int,
) -> list[Node]:
    """One STR pass: tile entries into nodes of at most ``capacity``."""
    n = len(entries)
    split_layer = engine.split_layer
    centres = np.stack(
        [
            (e.profile[split_layer, 0, :] + e.profile[split_layer, 1, :]) / 2.0
            for e in entries
        ]
    )
    d = centres.shape[1]
    n_nodes = max(1, math.ceil(n / capacity))

    order = _str_order(centres, n_nodes, capacity, axis=0, dims=d)
    nodes: list[Node] = []
    for start in range(0, n, capacity):
        node = Node(level, engine.store.allocate())
        node.entries = [entries[i] for i in order[start:start + capacity]]
        engine._dirty.add(node.page_id)
        nodes.append(node)

    # STR can leave a runt final node below the engine's minimum fill
    # (which is defined against the FULL node capacity, independent of
    # the packing fill factor); rebalance by stealing from the
    # predecessor.
    if len(nodes) > 1:
        full_capacity = (
            engine.layout.leaf_capacity if level == 0 else engine.layout.inner_capacity
        )
        min_fill = engine.layout.min_fill(full_capacity)
        last, prev = nodes[-1], nodes[-2]
        while len(last.entries) < min_fill and len(prev.entries) > min_fill:
            last.entries.insert(0, prev.entries.pop())
    return nodes


def _str_order(
    centres: np.ndarray,
    n_nodes: int,
    capacity: int,
    axis: int,
    dims: int,
) -> np.ndarray:
    """Recursive STR ordering of entry indices."""
    n = centres.shape[0]
    order = np.argsort(centres[:, axis], kind="stable")
    if axis == dims - 1 or n_nodes <= 1:
        return order

    # Number of slabs along this axis: ceil((#nodes)^(1/remaining dims)).
    # Slab sizes must be a multiple of the node capacity: otherwise node
    # cuts straddle slab boundaries, and a straddling node mixes entries
    # from the far edge of one slab with the near edge of the next —
    # producing a box that spans the full secondary-axis range and ruins
    # query I/O.
    remaining = dims - axis
    slabs = max(1, math.ceil(n_nodes ** (1.0 / remaining)))
    slab_size = math.ceil(n_nodes / slabs) * capacity
    pieces = []
    for start in range(0, n, slab_size):
        chunk = order[start:start + slab_size]
        sub_nodes = max(1, math.ceil(len(chunk) / capacity))
        sub_order = _str_order(centres[chunk], sub_nodes, capacity, axis + 1, dims)
        pieces.append(chunk[sub_order])
    return np.concatenate(pieces)
