"""The R*-tree node-split algorithm over single-layer rectangles.

Section 5.3 of the paper keeps the two-step R* split (choose a split axis
by minimum total margin, then the distribution with minimum overlap) but,
to avoid one sort per catalog value, performs it on the rectangles at the
*median* catalog value only.  The engine therefore hands this module a
plain ``(n, 2, d)`` rectangle array — whichever layer the tree variant
wants to split on — and receives back the index partition.

An ``all-layer`` variant (sorting and scoring on summed metrics across
every layer) is provided for the ablation bench called out in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rstar_split", "rstar_split_profiles"]


def rstar_split(rects: np.ndarray, min_fill: int) -> tuple[np.ndarray, np.ndarray]:
    """Partition rectangles into two groups with the R* split.

    Args:
        rects: ``(n, 2, d)`` array of rectangles (one per entry).
        min_fill: minimum entries per resulting group.

    Returns:
        ``(group1, group2)`` index arrays covering ``range(n)``.
    """
    rects = np.asarray(rects, dtype=np.float64)
    if rects.ndim != 3 or rects.shape[1] != 2:
        raise ValueError(f"rects must have shape (n, 2, d), got {rects.shape}")
    n, _, d = rects.shape
    if min_fill < 1 or 2 * min_fill > n:
        raise ValueError(f"cannot split {n} entries with min_fill={min_fill}")

    axis = _choose_split_axis(rects, min_fill)
    return _choose_split_index(rects, min_fill, axis)


def rstar_split_profiles(profiles: np.ndarray, min_fill: int) -> tuple[np.ndarray, np.ndarray]:
    """All-layer split variant: axis and distribution scored on summed metrics.

    ``profiles`` has shape ``(n, L, 2, d)``.  Sort keys use the layer-wise
    mean of the face coordinates; margins/overlaps/areas are summed over
    layers.  This is the "sort at every p_j" alternative the paper rejects
    as too expensive — implemented for the ablation study.
    """
    profiles = np.asarray(profiles, dtype=np.float64)
    if profiles.ndim != 4 or profiles.shape[2] != 2:
        raise ValueError(f"profiles must have shape (n, L, 2, d), got {profiles.shape}")
    n = profiles.shape[0]
    if min_fill < 1 or 2 * min_fill > n:
        raise ValueError(f"cannot split {n} entries with min_fill={min_fill}")

    # Collapse layers by averaging the sort keys; score on summed metrics.
    collapsed = profiles.mean(axis=1)
    d = collapsed.shape[2]
    best = None
    for axis in range(d):
        for side in (0, 1):
            order = np.argsort(collapsed[:, side, axis], kind="stable")
            for k in range(min_fill, n - min_fill + 1):
                g1, g2 = order[:k], order[k:]
                u1 = _profile_union(profiles[g1])
                u2 = _profile_union(profiles[g2])
                overlap = _summed_overlap(u1, u2)
                area = _summed_area(u1) + _summed_area(u2)
                margin = _summed_margin(u1) + _summed_margin(u2)
                key = (margin, overlap, area)
                if best is None or key < best[0]:
                    best = (key, g1.copy(), g2.copy())
    assert best is not None
    return best[1], best[2]


# ----------------------------------------------------------------------
# single-layer internals
# ----------------------------------------------------------------------

def _prefix_suffix_unions(sorted_rects: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative unions from the front and the back.

    Returns ``(prefix, suffix)`` with shapes ``(n, 2, d)`` where
    ``prefix[k]`` bounds entries ``0..k`` and ``suffix[k]`` bounds
    ``k..n-1``.
    """
    lo = sorted_rects[:, 0, :]
    hi = sorted_rects[:, 1, :]
    prefix = np.empty_like(sorted_rects)
    prefix[:, 0, :] = np.minimum.accumulate(lo, axis=0)
    prefix[:, 1, :] = np.maximum.accumulate(hi, axis=0)
    suffix = np.empty_like(sorted_rects)
    suffix[:, 0, :] = np.minimum.accumulate(lo[::-1], axis=0)[::-1]
    suffix[:, 1, :] = np.maximum.accumulate(hi[::-1], axis=0)[::-1]
    return prefix, suffix


def _choose_split_axis(rects: np.ndarray, min_fill: int) -> int:
    """Pick the axis with minimum total margin over all distributions."""
    n, _, d = rects.shape
    best_axis = 0
    best_total = np.inf
    for axis in range(d):
        total = 0.0
        for side in (0, 1):
            order = np.argsort(rects[:, side, axis], kind="stable")
            prefix, suffix = _prefix_suffix_unions(rects[order])
            for k in range(min_fill, n - min_fill + 1):
                total += _margin(prefix[k - 1]) + _margin(suffix[k])
        if total < best_total:
            best_total = total
            best_axis = axis
    return best_axis


def _choose_split_index(
    rects: np.ndarray, min_fill: int, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """On the chosen axis, pick the distribution with least overlap (ties: area)."""
    n = rects.shape[0]
    best_key = None
    best_split: tuple[np.ndarray, np.ndarray] | None = None
    for side in (0, 1):
        order = np.argsort(rects[:, side, axis], kind="stable")
        prefix, suffix = _prefix_suffix_unions(rects[order])
        for k in range(min_fill, n - min_fill + 1):
            r1 = prefix[k - 1]
            r2 = suffix[k]
            key = (_overlap(r1, r2), _area(r1) + _area(r2))
            if best_key is None or key < best_key:
                best_key = key
                best_split = (order[:k].copy(), order[k:].copy())
    assert best_split is not None
    return best_split


def _margin(rect: np.ndarray) -> float:
    return float(np.sum(rect[1] - rect[0]))


def _area(rect: np.ndarray) -> float:
    return float(np.prod(rect[1] - rect[0]))


def _overlap(a: np.ndarray, b: np.ndarray) -> float:
    widths = np.minimum(a[1], b[1]) - np.maximum(a[0], b[0])
    if np.any(widths < 0):
        return 0.0
    return float(np.prod(widths))


def _profile_union(profiles: np.ndarray) -> np.ndarray:
    out = np.empty(profiles.shape[1:])
    out[:, 0, :] = profiles[:, :, 0, :].min(axis=0)
    out[:, 1, :] = profiles[:, :, 1, :].max(axis=0)
    return out


def _summed_area(profile: np.ndarray) -> float:
    return float(np.prod(profile[:, 1, :] - profile[:, 0, :], axis=1).sum())


def _summed_margin(profile: np.ndarray) -> float:
    return float((profile[:, 1, :] - profile[:, 0, :]).sum())


def _summed_overlap(a: np.ndarray, b: np.ndarray) -> float:
    widths = np.minimum(a[:, 1, :], b[:, 1, :]) - np.maximum(a[:, 0, :], b[:, 0, :])
    widths = np.maximum(widths, 0.0)
    return float(np.prod(widths, axis=1).sum())
