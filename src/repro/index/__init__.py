"""The multi-layer R* engine and the classic R*-tree."""

from repro.index.bulkload import bulk_load
from repro.index.engine import RStarEngine
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.split import rstar_split, rstar_split_profiles

__all__ = [
    "Entry",
    "Node",
    "RStarEngine",
    "RStarTree",
    "bulk_load",
    "rstar_split",
    "rstar_split_profiles",
]
