"""Vectorised summed penalty metrics over stacked profiles.

Section 5.3 of the paper replaces the four R* penalty metrics (area,
margin, overlap, centroid distance) by their *summed* counterparts over
all U-catalog values.  These helpers compute them on whole nodes at once:
``stacked`` arrays have shape ``(n, L, 2, d)`` (n entries, L layers) and a
single profile has shape ``(L, 2, d)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "stacked_union",
    "summed_areas",
    "summed_margins",
    "summed_area_enlargements",
    "summed_overlap_with_each",
    "summed_centroid_distances",
    "union_with",
]


def stacked_union(stacked: np.ndarray) -> np.ndarray:
    """Layer-wise union over all entries: ``(n, L, 2, d) -> (L, 2, d)``."""
    out = np.empty(stacked.shape[1:])
    out[:, 0, :] = stacked[:, :, 0, :].min(axis=0)
    out[:, 1, :] = stacked[:, :, 1, :].max(axis=0)
    return out


def union_with(stacked: np.ndarray, profile: np.ndarray) -> np.ndarray:
    """Union of each entry with one profile: ``(n, L, 2, d)`` result."""
    out = np.empty_like(stacked)
    out[:, :, 0, :] = np.minimum(stacked[:, :, 0, :], profile[None, :, 0, :])
    out[:, :, 1, :] = np.maximum(stacked[:, :, 1, :], profile[None, :, 1, :])
    return out


def summed_areas(stacked: np.ndarray) -> np.ndarray:
    """Per-entry summed area: ``sum_j AREA(layer_j)``, shape ``(n,)``."""
    extents = stacked[:, :, 1, :] - stacked[:, :, 0, :]
    return np.prod(extents, axis=2).sum(axis=1)


def summed_margins(stacked: np.ndarray) -> np.ndarray:
    """Per-entry summed margin, shape ``(n,)``."""
    extents = stacked[:, :, 1, :] - stacked[:, :, 0, :]
    return extents.sum(axis=(1, 2))


def summed_area_enlargements(stacked: np.ndarray, profile: np.ndarray) -> np.ndarray:
    """How much each entry's summed area grows to absorb ``profile``."""
    enlarged = union_with(stacked, profile)
    return summed_areas(enlarged) - summed_areas(stacked)


def summed_overlap_with_each(profile: np.ndarray, stacked: np.ndarray) -> np.ndarray:
    """Summed overlap of one profile against each stacked entry, shape ``(n,)``."""
    lo = np.maximum(stacked[:, :, 0, :], profile[None, :, 0, :])
    hi = np.minimum(stacked[:, :, 1, :], profile[None, :, 1, :])
    widths = np.maximum(hi - lo, 0.0)
    return np.prod(widths, axis=2).sum(axis=1)


def summed_centroid_distances(stacked: np.ndarray, profile: np.ndarray) -> np.ndarray:
    """Summed centroid distance of each entry to one profile, shape ``(n,)``."""
    centres = (stacked[:, :, 0, :] + stacked[:, :, 1, :]) / 2.0
    target = (profile[None, :, 0, :] + profile[None, :, 1, :]) / 2.0
    return np.linalg.norm(centres - target, axis=2).sum(axis=1)
