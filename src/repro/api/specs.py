"""Declarative query specs and typed results for the ``Database`` facade.

A spec says *what* to answer — a range rectangle with a probability
threshold, or a nearest-neighbour point with ``k`` — and carries no
wiring.  The facade turns specs into engine calls under its
:class:`~repro.api.config.ExecConfig`, and hands back typed results that
keep the per-phase statistics attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.nn import NNResult
from repro.core.query import ProbRangeQuery
from repro.core.stats import QueryStats
from repro.geometry.rect import Rect

__all__ = ["NearestSpec", "QuerySpec", "RangeSpec", "Result"]


@dataclass(frozen=True)
class RangeSpec:
    """A prob-range query: objects in ``rect`` with P_app >= ``threshold``."""

    rect: Rect
    threshold: float

    def __post_init__(self) -> None:
        if not isinstance(self.rect, Rect):
            raise TypeError(
                f"rect must be a Rect (got {type(self.rect).__name__}); "
                "use RangeSpec.box(lo, hi, threshold) for raw bounds"
            )
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold}")

    @classmethod
    def box(cls, lo, hi, threshold: float) -> "RangeSpec":
        """A spec from raw lower/upper corner coordinates."""
        return cls(Rect(lo, hi), threshold)

    @property
    def dim(self) -> int:
        return self.rect.dim

    def to_query(self) -> ProbRangeQuery:
        """The engine-level query this spec declares."""
        return ProbRangeQuery(self.rect, self.threshold)


@dataclass(frozen=True)
class NearestSpec:
    """A probabilistic nearest-neighbour query at ``point``.

    ``mode="probability"`` returns every candidate with its NN
    qualification probability (Cheng et al., SIGMOD'03 semantics);
    ``mode="expected"`` ranks by expected distance and keeps the best
    ``k``.
    """

    point: tuple
    k: int = 1
    rounds: int = 2000
    seed: int = 0
    mode: str = "probability"

    def __post_init__(self) -> None:
        # Store the point hashably so specs stay frozen/comparable.
        object.__setattr__(self, "point", tuple(float(x) for x in np.asarray(self.point).ravel()))
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.mode not in ("probability", "expected"):
            raise ValueError(
                f"mode must be 'probability' or 'expected', got {self.mode!r}"
            )

    @property
    def dim(self) -> int:
        return len(self.point)


# Anything the facade accepts as a query.
QuerySpec = RangeSpec | NearestSpec


@dataclass
class Result:
    """One spec's answer with its cost accounting attached.

    For a :class:`RangeSpec`, ``object_ids`` holds the qualifying ids and
    ``stats`` the per-phase :class:`~repro.core.stats.QueryStats`.  For a
    :class:`NearestSpec`, ``nn`` additionally carries the full
    :class:`~repro.core.nn.NNResult` (candidates with qualification
    probabilities); ``object_ids`` lists the candidates in rank order and
    ``stats`` mirrors the walk's I/O counts.
    """

    spec: QuerySpec
    method: str
    object_ids: list[int] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    nn: NNResult | None = None
    _id_set: set[int] | None = field(default=None, repr=False, compare=False)

    def __contains__(self, oid: int) -> bool:
        if self._id_set is None or len(self._id_set) != len(self.object_ids):
            self._id_set = set(self.object_ids)
        return oid in self._id_set

    def __len__(self) -> int:
        return len(self.object_ids)

    def sorted_ids(self) -> list[int]:
        return sorted(self.object_ids)

    def __repr__(self) -> str:
        kind = type(self.spec).__name__
        return (
            f"Result({kind} via {self.method!r}: {len(self.object_ids)} objects, "
            f"{self.stats.total_io} logical I/O, "
            f"{self.stats.prob_computations} P_app)"
        )

    def summary(self) -> str:
        """One aligned line (the row :meth:`RunResult.summary` prints)."""
        return self.stats.summary()
