"""``repro.api`` — the one front door over the engine.

Five lines from objects to answers::

    from repro.api import Database, ExecConfig, RangeSpec
    db = Database.create(objects, ExecConfig(shards=4, parallelism=4))
    result = db.query(RangeSpec(Rect([0, 0], [1000, 1000]), threshold=0.8))
    print(result.object_ids, result.stats.summary())
    print(db.explain(RangeSpec(Rect([0, 0], [1000, 1000]), 0.8)))

Everything the four execution subsystems expose — filter kernel, shard
router, batched executor, refinement engine, buffer pool, planner — is
configured through one validated :class:`ExecConfig` (env overrides
resolve once in :meth:`ExecConfig.from_env`;
:meth:`ExecConfig.paper_exact` pins the paper's accounting), and every
query is a declarative spec routed through the planner.
"""

from repro.api.config import ExecConfig
from repro.api.database import Database, Explanation, RunResult
from repro.api.specs import NearestSpec, QuerySpec, RangeSpec, Result

__all__ = [
    "Database",
    "ExecConfig",
    "Explanation",
    "NearestSpec",
    "QuerySpec",
    "RangeSpec",
    "Result",
    "RunResult",
]
