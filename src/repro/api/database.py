"""The ``Database`` facade: one front door over the whole engine.

PRs 1-4 left four separately-wired subsystems (shared executor, batched
executor, refinement engine, shard router, filter kernel).  ``Database``
owns them all behind one object:

* :meth:`Database.create` builds the access method(s) — monolithic or
  sharded — the shared Monte-Carlo estimator, the buffer pool and the
  cost-model planner from a single
  :class:`~repro.api.config.ExecConfig`;
* :meth:`Database.run` answers batches of declarative specs
  (:class:`~repro.api.specs.RangeSpec`,
  :class:`~repro.api.specs.NearestSpec`), routed through the planner
  when several methods are registered, returning typed
  :class:`~repro.api.specs.Result` objects with per-phase stats;
* :meth:`Database.explain` surfaces the planner's cost comparison and
  the chosen path — method, shard probe order, kernel on/off — without
  executing anything;
* :meth:`Database.save` / :meth:`Database.open` persist the whole thing.

Everything underneath is the existing execution layer; the facade adds
no third code path, so its answers are bit-identical to hand-wired
``QueryExecutor``/``BatchExecutor`` runs (``tests/test_api.py`` pins the
full knob matrix).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ExecConfig
from repro.api.specs import NearestSpec, QuerySpec, RangeSpec, Result
from repro.core.nn import expected_nearest_neighbors, probabilistic_nearest_neighbors
from repro.core.query import ProbRangeQuery
from repro.core.stats import QueryStats, WorkloadStats
from repro.exec.access import AccessMethod
from repro.exec.batch import SERIAL_FALLBACK_SAMPLE_OPS, BatchExecutor, BatchStats
from repro.exec.executor import QueryExecutor
from repro.exec.mpexec import ProcessBatchExecutor
from repro.exec.planner import (
    PlannedQuery,
    Planner,
    ScanCostModel,
    derive_data_records_per_page,
)
from repro.exec.refine import RefinementEngine
from repro.exec.resilience import BatchSupervisor
from repro.exec.shard import ShardedAccessMethod
from repro.exec.tuner import AutoTuner, TunerDecision
from repro.storage.bufferpool import BufferPool
from repro.storage.wal import WriteAheadLog
from repro.uncertainty.objects import UncertainObject

__all__ = ["Database", "Explanation", "RunResult"]

_METHOD_NAMES = ("utree", "upcr", "scan")
_METHOD_VARIANTS = ("mono", "sharded")


def _parse_method_name(name: str) -> tuple[str, str | None]:
    """Split ``"utree@mono"`` into ``("utree", "mono")``.

    The optional ``@mono``/``@sharded`` suffix pins the layout of one
    method regardless of ``config.shards`` — how a database registers
    both variants of the same structure side by side, so the planner and
    the auto-tuner can arbitrate between them at query time.
    """
    base, sep, variant = name.partition("@")
    if not sep:
        return base, None
    if variant not in _METHOD_VARIANTS:
        raise ValueError(
            f"unknown method variant {name!r}; the suffix must be one of "
            f"{_METHOD_VARIANTS}"
        )
    return base, variant

# Archive keys the save/open pair speaks (npz entries).
_META_KEY = "database_meta"
# v2: descriptors are a UTF-8 JSON bytes entry, so np.load never needs
# allow_pickle (untrusted archives cannot execute code on open).
_FORMAT_OBJECTS = "repro-database-objects-v2"
_FORMAT_OBJECTS_V1 = "repro-database-objects-v1"
_FORMAT_UTREE = "repro-database-utree-v1"
# Durable (wal=True) databases persist as a directory: a manifest, one
# npz member per method (per shard when sharded) and a write-ahead log.
# Member files are epoch-versioned and each checkpoint starts a fresh
# WAL segment, so the atomic manifest replace is the single commit
# point: a crash at any byte leaves either the old checkpoint (plus its
# full WAL) or the new one (plus an empty WAL) — never a mix.
_FORMAT_DIR = "repro-database-dir-v1"
_MANIFEST_NAME = "MANIFEST.json"


def _default_catalog(name: str, dim: int):
    from repro.core.catalog import UCatalog

    if _parse_method_name(name)[0] == "upcr":
        return UCatalog.paper_upcr_default(dim)
    return UCatalog.paper_utree_default()


def _resolve_catalog(catalog, name: str, dim: int):
    """One method's catalog from a single override, a per-method map, or None."""
    if catalog is None:
        return _default_catalog(name, dim)
    if isinstance(catalog, dict):
        chosen = catalog.get(name)
        if chosen is None:  # variant names fall back to their base entry
            chosen = catalog.get(_parse_method_name(name)[0])
        return chosen if chosen is not None else _default_catalog(name, dim)
    return catalog


def _method_catalog(method):
    """The catalog a (possibly sharded) structure classifies with."""
    if isinstance(method, ShardedAccessMethod):
        return method.shards[0].catalog
    return method.catalog


def _build_monolithic(name, dim, catalog, config, estimator, pool):
    if name == "utree":
        from repro.core.utree import UTree

        return UTree(
            dim, catalog, page_size=config.page_size, pool=pool,
            estimator=estimator, filter_kernel=config.filter_kernel,
        )
    if name == "upcr":
        from repro.core.upcr import UPCRTree

        return UPCRTree(
            dim, catalog, page_size=config.page_size, pool=pool,
            estimator=estimator, filter_kernel=config.filter_kernel,
        )
    if name == "scan":
        from repro.core.scan import SequentialScan

        return SequentialScan(
            dim, catalog, page_size=config.page_size, pool=pool,
            estimator=estimator, filter_kernel=config.filter_kernel,
        )
    raise ValueError(f"unknown method {name!r}; pick from {_METHOD_NAMES}")


def _structures(method) -> list:
    """The concrete structures behind a (possibly sharded) method."""
    if isinstance(method, ShardedAccessMethod):
        return list(method.shards)
    return [method]


def _kernel_built(method) -> bool:
    """Whether the method carries a columnar sidecar (toggleable or not)."""
    return any(getattr(s, "kernel", None) is not None for s in _structures(method))


def _kernel_enabled(method) -> bool:
    """Whether the (possibly sharded) method classifies via the kernel."""
    return any(
        getattr(s, "active_kernel", getattr(s, "kernel", None)) is not None
        for s in _structures(method)
    )


def _set_kernel(method, enabled: bool) -> bool:
    """Flip query-time kernel use for every structure behind ``method``.

    The sidecar itself stays built and fed either way (update paths
    never consult the flag), so the toggle is free and instant.  Returns
    the *effective* state — asking for the kernel on a structure built
    without one stays off.
    """
    for structure in _structures(method):
        if hasattr(structure, "use_kernel"):
            structure.use_kernel = bool(enabled)
    return _kernel_enabled(method)


def _live_records(method):
    """The authoritative leaf records of a structure (post-update truth)."""
    if isinstance(method, ShardedAccessMethod):
        for child in method.shards:
            yield from _live_records(child)
    elif hasattr(method, "engine"):  # UTree / UPCRTree
        for entry in method.engine.leaf_entries():
            yield entry.data
    elif hasattr(method, "records"):  # SequentialScan
        yield from method.records()
    else:  # pragma: no cover - protocol violation
        raise TypeError(f"cannot enumerate records of {type(method).__name__}")


@dataclass(frozen=True)
class Explanation:
    """The planner's verdict for one spec, produced without executing.

    ``estimates`` maps every registered method to its predicted total
    I/O; ``choice`` is the cheapest (or the caller's pin).  For a
    sharded choice, ``shard_probes`` is the router's probe order
    (cheapest first) and ``shards_pruned`` how many shards it proved
    disjoint.  ``filter_kernel``/``parallelism``/``batched`` describe
    the execution mode the spec would run under.
    """

    spec: QuerySpec
    choice: str
    estimates: dict[str, float]
    shards: int
    shard_probes: tuple[int, ...]
    shards_pruned: int
    filter_kernel: bool
    batched: bool
    parallelism: int
    data_records_per_page: float
    executor: str = "thread"
    # Process backend only: the worker owning each shard (shard i on
    # worker_layout[i]); empty for the thread backend or a monolithic
    # choice, where work round-robins instead of following ownership.
    worker_layout: tuple[int, ...] = ()
    # How many probes the router's residual-probability bound dropped
    # beyond plain MBR pruning (sharded choices only).
    shards_bound_skipped: int = 0
    # The batch size the fallback prediction was made for (explain's
    # batch_size argument) and the PR 6 small-batch serial fallback: a
    # parallel-configured executor runs a zero-latency batch serially
    # when its Monte-Carlo volume (queries x samples) stays under the
    # threshold, because thread dispatch would cost more than it buys.
    batch_queries: int = 1
    serial_fallback_threshold: int = SERIAL_FALLBACK_SAMPLE_OPS
    serial_fallback: bool = False
    pool_policy: str = "2q"
    pool_capacity: int = 0
    # The auto-tuner's full report (None when auto_tune is off).
    tuner: dict | None = None
    # Resilience posture: how a fault mid-batch would be handled.  With
    # on_fault="degrade", degradation_ladder lists the backend fallback
    # chain the batch would descend (most capable first, exact serial
    # path last); empty under "fail".
    on_fault: str = "fail"
    worker_timeout: float = 0.0
    max_retries: int = 2
    checksum: bool = False
    degradation_ladder: tuple[str, ...] = ()

    def summary(self) -> str:
        lines = [f"{type(self.spec).__name__} -> {self.choice!r}"]
        priced = "  ".join(
            f"{name}={cost:.1f}" + (" *" if name == self.choice else "")
            for name, cost in sorted(self.estimates.items(), key=lambda kv: kv[1])
        )
        lines.append(f"  estimated I/O: {priced}")
        if self.shards > 1:
            lines.append(
                f"  shards: probe {list(self.shard_probes)} of {self.shards} "
                f"({self.shards_pruned} pruned, "
                f"{self.shards_bound_skipped} bound-skipped)"
            )
        mode = (
            f"batched, {self.executor} x{self.parallelism}" if self.batched
            else "per-query serial"
        )
        if self.worker_layout:
            mode += f", shard->worker {list(self.worker_layout)}"
        lines.append(
            f"  filter kernel: {'on' if self.filter_kernel else 'off'} | {mode} | "
            f"calibration: {self.data_records_per_page:.2f} records/page"
        )
        if self.batched and self.parallelism > 1:
            lines.append(
                f"  serial fallback: "
                f"{'taken' if self.serial_fallback else 'not taken'} for "
                f"{self.batch_queries} queries "
                f"(threshold {self.serial_fallback_threshold} sample-ops)"
            )
        if self.pool_capacity:
            lines.append(
                f"  buffer pool: {self.pool_policy}, "
                f"{self.pool_capacity} frames"
            )
        if self.tuner is not None:
            state = "converged" if self.tuner.get("converged") else "exploring"
            knobs = ", ".join(
                f"{k}={v!r}" for k, v in self.tuner.get("incumbent", {}).items()
            )
            lines.append(
                f"  auto-tuner: {state} after "
                f"{self.tuner.get('observations', 0)} batches ({knobs})"
            )
        if self.on_fault != "fail" or self.checksum:
            ladder = " -> ".join(self.degradation_ladder) or "none"
            lines.append(
                f"  resilience: on_fault={self.on_fault} | ladder: {ladder} | "
                f"worker timeout {self.worker_timeout:g}s, "
                f"{self.max_retries} retries | "
                f"checksums {'on' if self.checksum else 'off'}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


@dataclass
class RunResult:
    """Answers for one ``db.run`` batch, in submission order."""

    results: list[Result] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    # One batch-level cost summary per access method that executed range
    # specs through the batched executor (empty under batched=False).
    batches: dict[str, BatchStats] = field(default_factory=dict)

    @property
    def batch(self) -> BatchStats | None:
        """The single batch summary, when exactly one method executed."""
        if len(self.batches) == 1:
            return next(iter(self.batches.values()))
        return None

    def answers(self) -> list[list[int]]:
        return [r.object_ids for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]

    def __repr__(self) -> str:
        methods = sorted({r.method for r in self.results})
        return (
            f"RunResult({len(self.results)} specs via {methods}, "
            f"avg logical I/O {self.workload.avg_total_io:.1f})"
        )

    def summary(self) -> str:
        """The batch in one aligned table (plus per-method batch stats)."""
        from repro.core.stats import format_aligned

        rows = []
        for i, result in enumerate(self.results):
            s = result.stats
            rows.append([
                i,
                type(result.spec).__name__.replace("Spec", "").lower(),
                result.method,
                len(result.object_ids),
                s.node_accesses,
                s.data_page_reads,
                s.prob_computations,
                s.validated_directly,
                f"{1000 * s.wall_seconds:.2f}",
            ])
        table = format_aligned(
            ["#", "spec", "method", "results", "nodes", "pages", "P_app",
             "validated", "ms"],
            rows,
        )
        parts = [table]
        for name, batch in self.batches.items():
            parts.append(f"[{name}] {batch!r}")
        return "\n".join(parts)


class Database:
    """One handle over built access methods, planner and executors.

    Construct with :meth:`create` (from objects), :meth:`from_methods`
    (around structures you built yourself) or :meth:`open` (from a
    saved archive).  All query traffic goes through :meth:`run` /
    :meth:`query` / :meth:`nearest`; :meth:`explain` previews the plan.
    """

    def __init__(
        self,
        methods: dict[str, AccessMethod],
        config: ExecConfig,
        *,
        planner: Planner | None = None,
    ):
        if not methods:
            raise ValueError("at least one access method is required")
        self._methods = dict(methods)
        self.config = config
        # Durability state.  The WAL attaches at the first checkpoint
        # (save with config.wal=True) or when open() loads a directory
        # archive; until then mutations are in-memory only, exactly as
        # before.  _epochs counts mutations per archive member so an
        # incremental save can skip members that are clean on disk.
        self.wal: WriteAheadLog | None = None
        self._replaying = False
        self._epochs: dict[str, int] = dict.fromkeys(self._member_keys(), 0)
        # Set by open() after WAL replay: {"wal_entries": n}.
        self.last_recovery: dict | None = None
        self.planner = planner if planner is not None else self._build_planner()
        # Keyed by (method name, executor backend, parallelism, kernel
        # on/off): per-call overrides and the tuner's decisions select
        # among cached executors instead of rebuilding them per batch,
        # and the kernel state in the key keeps forked process pools
        # from serving a batch under a kernel setting they never saw.
        # The lock makes the cache (and close()) safe against a run()
        # in flight on another thread — the query service's shutdown
        # path closes the database while batches may still be draining.
        self._exec_lock = threading.RLock()
        self._batch_executors: dict[tuple, BatchExecutor] = {}
        self._query_executors: dict[str, QueryExecutor] = {}
        self.tuner: AutoTuner | None = (
            self._build_tuner() if config.auto_tune else None
        )
        # Resilience wiring is applied here — the one funnel every
        # construction path (create / from_methods / open) goes through.
        for method in self._methods.values():
            self._apply_integrity(method)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        objects: Iterable[UncertainObject],
        config: ExecConfig | None = None,
        *,
        methods: Sequence[str] = ("utree",),
        catalog=None,
        dim: int | None = None,
    ) -> "Database":
        """Build access methods over ``objects`` under one config.

        ``methods`` names the structures to build (any subset of
        ``utree``/``upcr``/``scan``); all share one Monte-Carlo
        estimator, so their answers are bit-identical.  With
        ``config.shards > 1`` each method is a
        :class:`~repro.exec.shard.ShardedAccessMethod` over that many
        children.  ``catalog`` overrides the default paper catalogs —
        one ``UCatalog`` for every method, or a ``{method: UCatalog}``
        map for per-method overrides (how :meth:`open` restores saved
        catalogs).  ``dim`` is required only for an empty object list.
        """
        config = config if config is not None else ExecConfig()
        objects = list(objects)
        if dim is None:
            if not objects:
                raise ValueError(
                    "cannot infer dimensionality from an empty object list; pass dim="
                )
            dim = objects[0].dim
        if not methods:
            raise ValueError("at least one method name is required")
        estimator = config.estimator()
        built: dict[str, AccessMethod] = {}
        for name in methods:
            if name in built:
                raise ValueError(f"method {name!r} requested twice")
            base, variant = _parse_method_name(name)
            if variant == "sharded" and not config.sharded:
                raise ValueError(
                    f"method {name!r} pins the sharded layout but "
                    f"config.shards == {config.shards}; raise shards to >= 2"
                )
            sharded = config.sharded if variant is None else variant == "sharded"
            cat = _resolve_catalog(catalog, name, dim)
            if sharded:
                built[name] = ShardedAccessMethod.build(
                    objects,
                    shards=config.shards,
                    partitioner=config.partitioner,
                    method=base,
                    dim=dim,
                    catalog=cat,
                    page_size=config.page_size,
                    estimator=estimator,
                    pool_capacity=config.pool_capacity,
                    pool_policy=config.pool_policy,
                    pool_probation=config.pool_probation,
                    prune=config.prune,
                    probe_bound=config.probe_bound,
                    filter_kernel=config.filter_kernel,
                )
            else:
                pool = (
                    BufferPool(
                        config.pool_capacity,
                        policy=config.pool_policy,
                        probation_capacity=config.pool_probation,
                    )
                    if config.pool_capacity
                    else None
                )
                method = _build_monolithic(base, dim, cat, config, estimator, pool)
                for obj in objects:
                    method.insert(obj)
                built[name] = method
        if config.reclaim:
            for method in built.values():
                method.data_file.reclaim = True
        return cls(built, config)

    def _apply_integrity(self, method) -> None:
        """Switch a method's data file into the configured integrity mode.

        ``checksum`` stamps crc32 shadow images (capacity accounting
        shifts by the header for *future* appends; existing addresses
        are untouched); ``on_fault="degrade"`` additionally lets the
        file scrub-and-continue on a crc mismatch instead of raising.
        Both off (the defaults) leaves the file byte-identical.
        """
        data_file = getattr(method, "data_file", None)
        if data_file is None:  # pragma: no cover - protocol tolerance
            return
        if self.config.checksum:
            data_file.enable_checksum()
        if self.config.on_fault == "degrade":
            data_file.scrub = True

    @classmethod
    def from_methods(
        cls,
        methods: dict[str, AccessMethod],
        config: ExecConfig | None = None,
    ) -> "Database":
        """Wrap structures you built (or memoised) yourself."""
        return cls(dict(methods), config if config is not None else ExecConfig())

    # ------------------------------------------------------------------
    # planner wiring
    # ------------------------------------------------------------------
    def _build_planner(self) -> Planner:
        first = next(iter(self._methods.values()))
        planner = Planner(
            derive_data_records_per_page(first),
            auto_observe=self.config.auto_observe,
        )
        for name, method in self._methods.items():
            planner.register(name, method, self._cost_fn(name, method, planner))
        return planner

    def _cost_fn(self, name: str, method, planner: Planner):
        from repro.core.costmodel import UTreeCostModel

        if isinstance(method, ShardedAccessMethod):
            # Price a sharded method as the sum of its surviving shards'
            # estimates (the same models the router orders probes with) —
            # without mutating the router's decision counters.
            def sharded_cost(query: ProbRangeQuery, _m=method) -> float:
                if _m.prune:
                    live = [
                        i for i, box in enumerate(_m.shard_bounds)
                        if box is not None and box.intersects(query.rect)
                    ]
                else:
                    live = [
                        i for i, box in enumerate(_m.shard_bounds)
                        if box is not None
                    ]
                return sum(_m.router.price(i, query) for i in live)

            return sharded_cost

        # The cost model snapshots the structure's geometry, so build it
        # lazily on the first priced query: a method that is empty at
        # registration time (the create-then-insert pattern) prices as
        # infinite only while it stays empty, then gets a real model.
        # After heavy updates, refresh_planner() re-derives snapshots.
        state: dict = {"model": None}

        def cost(query: ProbRangeQuery, _m=method, _p=planner, _s=state) -> float:
            if len(_m) == 0:
                return float("inf")
            if _s["model"] is None:
                if hasattr(_m, "scan_pages"):
                    _s["model"] = ("scan", ScanCostModel(_m))
                else:
                    _s["model"] = ("tree", UTreeCostModel(_m))
            kind, model = _s["model"]
            if kind == "scan":
                return model.total_io(query, _p.data_records_per_page)
            return model.estimate(query).total_io(_p.data_records_per_page)

        return cost

    def refresh_planner(self) -> None:
        """Re-derive every cost model after heavy update traffic.

        The learnt calibration — packing constant *and* per-method bias
        — carries over; only the geometry snapshots are rebuilt.
        """
        learnt = self.planner.state_dict()
        self.planner = self._build_planner()
        self.planner.load_state(learnt)
        for method in self._methods.values():
            if isinstance(method, ShardedAccessMethod):
                method.refresh_router()

    # ------------------------------------------------------------------
    # auto-tuner wiring
    # ------------------------------------------------------------------
    def _build_tuner(self) -> AutoTuner:
        """The knob space the tuner searches, derived from what exists.

        Knobs with only one viable value never register (AutoTuner drops
        them): a single-method database has no method knob, a database
        built without sidecars has no kernel knob, and a platform
        without ``fork`` offers no process backend.
        """
        import multiprocessing

        knobs: dict[str, list] = {}
        baseline: dict[str, object] = {}
        if len(self._methods) > 1:
            knobs["method"] = list(self._methods)
            baseline["method"] = next(iter(self._methods))
        if any(_kernel_built(m) for m in self._methods.values()):
            knobs["filter_kernel"] = [True, False]
            baseline["filter_kernel"] = _kernel_enabled(
                next(iter(self._methods.values()))
            )
        executors = ["thread"]
        if "fork" in multiprocessing.get_all_start_methods():
            executors.append("process")
        knobs["executor"] = executors
        baseline["executor"] = self.config.executor
        knobs["parallelism"] = sorted({1, 2, self.config.parallelism})
        baseline["parallelism"] = self.config.parallelism
        # Two trials per value before convergence: qps feedback is
        # wall-clock, so a single sample can rank statistically-equal
        # values (e.g. mono vs sharded on a small workload) arbitrarily.
        return AutoTuner(knobs, baseline=baseline, min_trials=2)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def method_names(self) -> list[str]:
        return list(self._methods)

    @property
    def dim(self) -> int:
        return next(iter(self._methods.values())).dim

    def access_method(self, name: str | None = None) -> AccessMethod:
        """The underlying structure (the only one, or by name)."""
        if name is None:
            if len(self._methods) != 1:
                raise ValueError(
                    f"database holds {self.method_names}; pass a method name"
                )
            return next(iter(self._methods.values()))
        return self._methods[name]

    def __len__(self) -> int:
        return len(next(iter(self._methods.values())))

    def __repr__(self) -> str:
        return (
            f"Database(methods={self.method_names}, objects={len(self)}, "
            f"shards={self.config.shards}, "
            f"kernel={'on' if self.config.kernel_enabled else 'off'}, "
            f"parallelism={self.config.parallelism})"
        )

    def summary(self) -> str:
        lines = [repr(self), f"  {self.config.summary()}"]
        for name, method in self._methods.items():
            size = getattr(method, "size_bytes", None)
            size_text = f", {size / 1024:.0f} KiB" if size is not None else ""
            lines.append(f"  {name}: {len(method)} objects{size_text}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------
    def _member_keys(self) -> list[str]:
        """Archive member keys: one per method, or per shard when sharded."""
        keys: list[str] = []
        for name, method in self._methods.items():
            if isinstance(method, ShardedAccessMethod):
                keys.extend(f"{name}/shard{i}" for i in range(method.shard_count))
            else:
                keys.append(name)
        return keys

    def _bump_member(self, name: str, method) -> None:
        """Mark the member an update landed in as dirty (epoch += 1)."""
        if isinstance(method, ShardedAccessMethod):
            shard = method.last_update_shard
            if shard is None:  # unknown landing shard: dirty the whole method
                for i in range(method.shard_count):
                    key = f"{name}/shard{i}"
                    self._epochs[key] = self._epochs.get(key, 0) + 1
            else:
                key = f"{name}/shard{shard}"
                self._epochs[key] = self._epochs.get(key, 0) + 1
        else:
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def _log(self, record: dict) -> None:
        """Commit one mutation record to the WAL before it is applied.

        A no-op until a WAL is attached (first checkpoint) and during
        replay (replayed operations are already on the log).
        """
        if self.wal is not None and not self._replaying:
            self.wal.commit(record)

    def _attach_wal(self, directory: str, wal_name: str) -> None:
        """Point the log at ``directory/wal_name`` (closing any old segment)."""
        path = os.path.join(directory, wal_name)
        if self.wal is not None:
            if self.wal.path == path:
                return
            self.wal.close()
        self.wal = WriteAheadLog(path)

    def _apply_logged(self, entry: dict) -> None:
        """Re-apply one replayed WAL record through the public API."""
        from repro.storage.serialize import density_from_descriptor

        op = entry.get("op")
        if op == "insert":
            self.insert(
                UncertainObject(
                    int(entry["oid"]), density_from_descriptor(entry["pdf"])
                )
            )
        elif op == "delete":
            self.delete(int(entry["oid"]))
        elif op == "rebalance":
            self.rebalance(
                entry.get("method"), min_skew=float(entry.get("min_skew", 0.0))
            )
        else:
            raise ValueError(f"unknown WAL operation {op!r}")

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, obj: UncertainObject):
        """Insert into every method; returns the (single) update cost.

        With several registered methods a dict of per-method costs is
        returned instead.  With a WAL attached the operation is logged
        and fsynced *before* any structure mutates, so an acknowledged
        insert survives a crash and an unacknowledged one is never
        observable after recovery.
        """
        if obj.dim != self.dim:
            # Validate before logging: a rejected insert must never
            # reach the WAL (replay would re-raise on open).
            raise ValueError(
                f"object dimensionality {obj.dim} != database dimensionality {self.dim}"
            )
        if self.wal is not None and not self._replaying:
            from repro.storage.serialize import density_descriptor

            self._log(
                {
                    "op": "insert",
                    "oid": int(obj.oid),
                    "pdf": density_descriptor(obj.pdf),
                }
            )
        costs = {}
        for name, m in self._methods.items():
            costs[name] = m.insert(obj)
            self._bump_member(name, m)
        if len(costs) == 1:
            return next(iter(costs.values()))
        return costs

    def delete(self, oid: int):
        """Delete from every method; single outcome or per-method dict."""
        self._log({"op": "delete", "oid": int(oid)})
        outcomes = {}
        for name, m in self._methods.items():
            outcomes[name] = m.delete(oid)
            if outcomes[name]:
                self._bump_member(name, m)
        if len(outcomes) == 1:
            return next(iter(outcomes.values()))
        return outcomes

    def rebalance(self, method: str | None = None, *, min_skew: float = 0.0) -> dict:
        """Repartition sharded methods whose update traffic skewed them.

        Inserts follow the least-enlargement rule and hash residues, so
        a drifting workload concentrates objects (and probe cost) on a
        few shards; each sharded method counts that traffic in
        ``insert_traffic``/``delete_traffic`` and exposes the resulting
        imbalance as ``size_skew()`` (max shard size over mean, 1.0 =
        perfectly even).  This rebuilds the partition from the live
        records — same shard count, partitioner, catalog and estimator,
        so answers stay bit-identical — and resets the traffic counters.

        Args:
            method: one registered method to rebalance (default: every
                sharded method).  Monolithic methods are skipped.
            min_skew: only rebuild methods whose ``size_skew()`` is at
                least this (0.0 rebuilds unconditionally).

        Returns:
            Per-method report: objects carried over, the update traffic
            that triggered the rebuild, and skew before/after.
        """
        self._log({"op": "rebalance", "method": method, "min_skew": float(min_skew)})
        names = [method] if method is not None else list(self._methods)
        report: dict[str, dict] = {}
        for name in names:
            if name not in self._methods:
                raise KeyError(
                    f"method {name!r} is not registered (have {self.method_names})"
                )
            old = self._methods[name]
            if not isinstance(old, ShardedAccessMethod):
                continue
            skew_before = old.size_skew()
            if skew_before < min_skew:
                continue
            traffic = old.update_traffic
            records = sorted(_live_records(old), key=lambda r: r.oid)
            objects = [old.data_file.peek(r.address) for r in records]
            kernel_on = _kernel_enabled(old)
            rebuilt = ShardedAccessMethod.build(
                objects,
                shards=old.shard_count,
                partitioner=old.partitioner,
                method=_parse_method_name(name)[0],
                dim=old.dim,
                catalog=old.shards[0].catalog,
                page_size=old.data_file.page_size,
                estimator=old.estimator,
                pool_capacity=self.config.pool_capacity,
                pool_policy=self.config.pool_policy,
                pool_probation=self.config.pool_probation,
                prune=old.prune,
                probe_bound=old.probe_bound,
                filter_kernel="on" if _kernel_built(old) else "off",
            )
            _set_kernel(rebuilt, kernel_on)
            rebuilt.data_file.reclaim = self.config.reclaim
            self._apply_integrity(rebuilt)
            self._methods[name] = rebuilt
            self._drop_executors(name)
            # The rebuild rewrote every shard from scratch.
            for i in range(rebuilt.shard_count):
                key = f"{name}/shard{i}"
                self._epochs[key] = self._epochs.get(key, 0) + 1
            report[name] = {
                "objects": len(objects),
                "update_traffic": traffic,
                "skew_before": skew_before,
                "skew_after": rebuilt.size_skew(),
            }
        if report:
            self.refresh_planner()
        return report

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _pick_nn_method(self, pinned: str | None) -> str:
        from repro.core.utree import UTree

        def nn_capable(method) -> bool:
            if isinstance(method, ShardedAccessMethod):
                return all(isinstance(s, UTree) for s in method.shards)
            return isinstance(method, UTree)

        if pinned is not None:
            if pinned not in self._methods:
                raise KeyError(
                    f"method {pinned!r} is not registered (have {self.method_names})"
                )
            if not nn_capable(self._methods[pinned]):
                raise ValueError(
                    f"method {pinned!r} cannot answer nearest-neighbour specs "
                    "(the branch-and-bound walk needs a U-tree)"
                )
            return pinned
        for name, method in self._methods.items():
            if nn_capable(method):
                return name
        raise ValueError(
            f"no NN-capable method registered (have {self.method_names}); "
            "nearest-neighbour search needs a U-tree"
        )

    def _choose(
        self, spec: QuerySpec, pinned: str | None
    ) -> tuple[str, PlannedQuery | None]:
        """The method for one spec, plus the plan when the planner chose.

        The decision rides along so :meth:`run` can feed the executed
        cost back into the planner's per-method bias
        (:meth:`~repro.exec.planner.Planner.observe_choice`).
        """
        if isinstance(spec, NearestSpec):
            return self._pick_nn_method(pinned), None
        if pinned is not None:
            if pinned not in self._methods:
                raise KeyError(
                    f"method {pinned!r} is not registered (have {self.method_names})"
                )
            return pinned, None
        if len(self._methods) == 1:
            return next(iter(self._methods)), None
        decision = self.planner.plan(spec.to_query())
        return decision.choice, decision

    def _batch_executor(
        self,
        name: str,
        *,
        executor: str | None = None,
        parallelism: int | None = None,
    ) -> BatchExecutor:
        executor = self.config.executor if executor is None else executor
        parallelism = (
            self.config.parallelism if parallelism is None else parallelism
        )
        key = (name, executor, parallelism, _kernel_enabled(self._methods[name]))
        with self._exec_lock:
            if key not in self._batch_executors:
                if executor == "process":
                    # The fault-domain retry budget engages only in degrade
                    # mode; in fail mode faults propagate on first contact
                    # (after pool teardown, so the executor stays usable).
                    # The command deadline applies in both modes — detecting
                    # a hang is orthogonal to what happens next.
                    supervised = self.config.on_fault == "degrade"
                    self._batch_executors[key] = ProcessBatchExecutor(
                        self._methods[name],
                        workers=parallelism,
                        memoize=self.config.memoize,
                        dedupe_pages=self.config.dedupe_pages,
                        io_latency_seconds=self.config.io_latency_seconds,
                        worker_timeout=self.config.worker_timeout,
                        max_retries=self.config.max_retries if supervised else 0,
                    )
                else:
                    self._batch_executors[key] = BatchExecutor(
                        self._methods[name],
                        memoize=self.config.memoize,
                        dedupe_pages=self.config.dedupe_pages,
                        parallelism=parallelism,
                        io_latency_seconds=self.config.io_latency_seconds,
                    )
            return self._batch_executors[key]

    def _degradation_ladder(
        self,
        name: str,
        *,
        executor: str | None = None,
        parallelism: int | None = None,
    ) -> list:
        """The backend fallback chain for one method's batches.

        Most capable configured backend first, the exact serial path
        last: ``process → thread → serial`` under the process backend,
        ``thread → serial`` for a parallel thread config, and just
        ``serial`` when that is all that was configured.  Factories are
        lazy, so a fault-free run never builds the fallback executors.
        """
        resolved_exec = self.config.executor if executor is None else executor
        resolved_par = (
            self.config.parallelism if parallelism is None else parallelism
        )
        ladder: list = []
        if resolved_exec == "process":
            ladder.append((
                "process",
                lambda: self._batch_executor(
                    name, executor="process", parallelism=resolved_par
                ),
            ))
        if resolved_par > 1:
            ladder.append((
                "thread",
                lambda: self._batch_executor(
                    name, executor="thread", parallelism=resolved_par
                ),
            ))
        ladder.append((
            "serial",
            lambda: self._batch_executor(name, executor="thread", parallelism=1),
        ))
        return ladder

    def _run_range_batch(
        self,
        name: str,
        queries,
        *,
        executor: str | None = None,
        parallelism: int | None = None,
    ):
        """One method's batch, through the ladder when degradation is on."""
        if self.config.on_fault != "degrade":
            return self._batch_executor(
                name, executor=executor, parallelism=parallelism
            ).run(queries)
        supervisor = BatchSupervisor(
            self._degradation_ladder(
                name, executor=executor, parallelism=parallelism
            ),
            data_file=getattr(self._methods[name], "data_file", None),
        )
        return supervisor.run(queries)

    def _drop_executors(self, name: str) -> None:
        """Forget every executor bound to ``name``'s current structure."""
        with self._exec_lock:
            dropped = [
                self._batch_executors.pop(key)
                for key in [k for k in self._batch_executors if k[0] == name]
            ]
            self._query_executors.pop(name, None)
        for executor in dropped:
            closer = getattr(executor, "close", None)
            if closer is not None:
                closer()

    def close(self) -> None:
        """Release executor resources (the process backend's worker pool).

        Idempotent and thread-safe: concurrent calls — or a call racing a
        ``run()`` in flight on another thread (the query service's
        shutdown path) — never raise, and the database stays usable: the
        next batch under ``executor="process"`` simply re-forks its pool.
        An executor a concurrent ``run()`` builds *after* the snapshot
        below is released by the next ``close()`` (or the process pool's
        finalizer backstop).  The thread backend holds no persistent
        workers, so this is a no-op there.
        """
        with self._exec_lock:
            executors = list(self._batch_executors.values())
        for executor in executors:
            closer = getattr(executor, "close", None)
            if closer is not None:
                closer()
        wal = self.wal
        if wal is not None:
            wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _query_executor(self, name: str) -> QueryExecutor:
        with self._exec_lock:
            if name not in self._query_executors:
                self._query_executors[name] = QueryExecutor(self._methods[name])
            return self._query_executors[name]

    def clear_memos(self) -> None:
        """Drop every batched executor's cross-query P_app memo.

        The memos persist across :meth:`run` calls by design (the fig-10
        access pattern); callers that need run-to-run reproducible *cost
        counters* — repeated experiment sweeps — reset here.  Answers are
        never affected either way.
        """
        with self._exec_lock:
            executors = list(self._batch_executors.values())
        for executor in executors:
            executor.clear_memo()

    def _run_nearest(self, spec: NearestSpec, name: str) -> Result:
        method = self._methods[name]
        point = np.asarray(spec.point, dtype=float)
        if spec.mode == "expected":
            nn = expected_nearest_neighbors(
                method, point, k=spec.k, rounds=spec.rounds, seed=spec.seed
            )
            ranked = nn.candidates
        else:
            nn = probabilistic_nearest_neighbors(
                method, point, rounds=spec.rounds, seed=spec.seed
            )
            ranked = nn.candidates[: spec.k]
        stats = QueryStats(
            node_accesses=nn.node_accesses,
            data_page_reads=nn.data_page_reads,
            prob_computations=nn.objects_examined,
            result_count=len(ranked),
            wall_seconds=nn.wall_seconds,
        )
        return Result(
            spec=spec,
            method=name,
            object_ids=[c.oid for c in ranked],
            stats=stats,
            nn=nn,
        )

    def run(
        self,
        specs: Sequence[QuerySpec],
        *,
        method: str | None = None,
        parallelism: int | None = None,
        executor: str | None = None,
        filter_kernel: bool | None = None,
    ) -> RunResult:
        """Answer a batch of specs (submission order preserved).

        Range specs execute through the batched executor (cross-query
        page dedup + P_app memoisation; the serial/parallel mode and all
        reuse knobs come from the config) or, under ``batched=False``,
        query-at-a-time through the shared executor — the paper's exact
        accounting.  Nearest specs run the branch-and-bound NN walk.
        With several registered methods and no ``method`` pin, the
        planner prices every range spec and routes it to the cheapest
        structure.

        ``parallelism``/``executor``/``filter_kernel`` override the
        config for this batch only (answers never change — these are
        pure cost knobs); the kernel toggle is sticky on the structures
        until the next override.  Under ``config.auto_tune`` a batch
        with no explicit overrides is driven by the
        :class:`~repro.exec.tuner.AutoTuner` instead: it proposes the
        knob assignment, the batch executes under it, and the measured
        throughput feeds back into the tuner's estimates.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, (RangeSpec, NearestSpec)):
                raise TypeError(
                    f"specs must be RangeSpec or NearestSpec, got {type(spec).__name__}"
                )
        if executor is not None and executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; pick 'thread' or 'process'"
            )
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if not self.config.batched and (
            parallelism not in (None, 1) or executor == "process"
        ):
            raise ValueError(
                "per-batch parallelism/executor overrides need batched=True"
            )

        # Tuner-driven batches: only when the caller pinned nothing (an
        # explicit override is the caller measuring, not the tuner).
        range_pin = method
        proposal: TunerDecision | None = None
        has_ranges = any(isinstance(s, RangeSpec) for s in specs)
        if (
            self.tuner is not None
            and has_ranges
            and method is None
            and parallelism is None
            and executor is None
            and filter_kernel is None
        ):
            proposal = self.tuner.propose()
            range_pin = proposal.assignment.get("method")
            parallelism = proposal.assignment.get("parallelism")
            executor = proposal.assignment.get("executor")
            filter_kernel = proposal.assignment.get("filter_kernel")
        if filter_kernel is not None:
            for m in self._methods.values():
                _set_kernel(m, filter_kernel)

        decisions = [
            self._choose(
                spec, method if isinstance(spec, NearestSpec) else range_pin
            )
            for spec in specs
        ]
        choices = [choice for choice, _ in decisions]
        out = RunResult()
        slots: list[Result | None] = [None] * len(specs)

        # Group range specs per chosen method, preserving submission
        # order within each group (a single-method batch is then exactly
        # one legacy BatchExecutor.run call).
        grouped: dict[str, list[int]] = {}
        for i, (spec, choice) in enumerate(zip(specs, choices)):
            if isinstance(spec, RangeSpec):
                grouped.setdefault(choice, []).append(i)
            else:
                slots[i] = self._run_nearest(spec, choices[i])

        range_count = 0
        executors_before = len(self._batch_executors)
        # Throughput windows run on the tuner's clock so tests can make
        # qps observations deterministic (a fake clock replaces
        # wall-time noise); without a tuner nothing observes the window.
        clock = self.tuner.clock if self.tuner is not None else time.perf_counter
        range_start = clock()
        for name, indices in grouped.items():
            queries = [specs[i].to_query() for i in indices]
            range_count += len(queries)
            if self.config.batched:
                batch = self._run_range_batch(
                    name, queries, executor=executor, parallelism=parallelism
                )
                answers = batch.answers
                if name in out.batches:  # pragma: no cover - defensive
                    raise RuntimeError(f"duplicate batch for method {name!r}")
                out.batches[name] = batch.batch
            else:
                query_executor = self._query_executor(name)
                answers = [query_executor.execute(query) for query in queries]
            for i, answer in zip(indices, answers):
                slots[i] = Result(
                    spec=specs[i],
                    method=name,
                    object_ids=answer.object_ids,
                    stats=answer.stats,
                )
        if proposal is not None and range_count:
            # A batch that had to build its executor ran cold (fresh
            # thread/process pool, empty P_app memo) — feeding that wall
            # time to the tuner would systematically punish explored
            # alternatives, whose executor keys are new by construction,
            # against always-warm incumbents.  Skip the observation; the
            # tuner re-proposes the still-undersampled value and the next
            # batch measures it warm.
            warmed = len(self._batch_executors) == executors_before
            # A degraded batch executed on some fallback backend, not the
            # proposed assignment — crediting its throughput would teach
            # the tuner about a configuration that never ran.
            degraded = any(b.degraded for b in out.batches.values())
            if warmed and not degraded:
                range_wall = clock() - range_start
                self.tuner.observe(proposal, range_count / max(range_wall, 1e-9))

        out.results = [slot for slot in slots if slot is not None]
        for result in out.results:
            out.workload.add(result.stats)
        if self.config.auto_observe and grouped:
            # Calibrate from range-spec stats only: NN results carry
            # walk counters with different semantics (objects_examined
            # in prob_computations) that would skew the packing EWMA.
            # Planner-routed specs additionally feed their observed cost
            # into the per-method bias, so a method whose model flatters
            # it (the sharded regression BENCH_shard exposed) loses
            # future plans to what actually ran cheaper.
            range_stats = WorkloadStats()
            for i, result in enumerate(slots):
                if result is None or not isinstance(result.spec, RangeSpec):
                    continue
                range_stats.add(result.stats)
                decision = decisions[i][1]
                if decision is not None:
                    self.planner.observe_choice(
                        result.method,
                        decision.raw_estimates.get(result.method, 0.0),
                        result.stats.node_accesses + result.stats.data_page_reads,
                    )
            self.planner.observe(range_stats)
        return out

    def query(self, spec: QuerySpec, *, method: str | None = None) -> Result:
        """Answer one spec (the single-query convenience form)."""
        return self.run([spec], method=method).results[0]

    def nearest(self, spec: NearestSpec) -> Result:
        """Answer one nearest-neighbour spec."""
        if not isinstance(spec, NearestSpec):
            raise TypeError(f"nearest() takes a NearestSpec, got {type(spec).__name__}")
        return self._run_nearest(spec, self._pick_nn_method(None))

    def probabilities(
        self,
        rect,
        oids: Iterable[int],
        *,
        method: str | None = None,
    ) -> dict[int, float]:
        """``P_app`` of each oid against ``rect`` (oid -> probability).

        Served from the method's shared
        :class:`~repro.exec.refine.RefinementEngine`, so the values are
        bit-identical to what query refinement computes for the same
        pairs (the Monte-Carlo stream derives from ``(seed, oid)``).
        This is the surface the query service's ``probs=True`` replies
        use — and what the wire-equivalence tests compare with ``==``.

        ``rect`` is a :class:`~repro.geometry.rect.Rect` or a
        :class:`~repro.api.specs.RangeSpec` (its rectangle is taken).
        Unknown oids raise ``KeyError``.
        """
        if isinstance(rect, RangeSpec):
            rect = rect.rect
        name = method if method is not None else next(iter(self._methods))
        if name not in self._methods:
            raise KeyError(
                f"method {name!r} is not registered (have {self.method_names})"
            )
        chosen = self._methods[name]
        engine = RefinementEngine.for_method(chosen)
        data_file = chosen.data_file
        wanted = {int(oid) for oid in oids}
        out: dict[int, float] = {}
        for record in _live_records(chosen):
            if record.oid in wanted and record.oid not in out:
                obj = data_file.peek(record.address)
                out[record.oid] = engine.estimate(obj, rect)
        missing = sorted(wanted - out.keys())
        if missing:
            raise KeyError(f"oids not present in method {name!r}: {missing}")
        return out

    # ------------------------------------------------------------------
    # explain
    # ------------------------------------------------------------------
    def explain(
        self,
        spec: QuerySpec,
        *,
        method: str | None = None,
        batch_size: int = 1,
    ) -> Explanation:
        """The planner's cost comparison and chosen path, no execution.

        Prices the spec under every registered method's cost model,
        reports the winner (or the pinned ``method``) and — for a
        sharded choice — the router's probe order, prune count and how
        many extra probes the residual-probability bound dropped.
        ``batch_size`` is the hypothetical batch the spec would ship in:
        it drives the PR 6 serial-fallback prediction (a parallel
        executor runs small zero-latency batches serially), reported in
        ``serial_fallback``/``serial_fallback_threshold``.  With
        ``auto_tune`` on, ``tuner`` carries the tuner's live report —
        every knob's throughput estimate and the chosen incumbents.
        """
        if not isinstance(spec, RangeSpec):
            raise TypeError(
                "explain() prices range specs; nearest-neighbour search has "
                "no cost model yet"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        query = spec.to_query()
        decision = self.planner.plan(query)
        choice = decision.choice if method is None else method
        if choice not in self._methods:
            raise KeyError(
                f"method {choice!r} is not registered (have {self.method_names})"
            )
        chosen = self._methods[choice]
        bound_skipped = 0
        if isinstance(chosen, ShardedAccessMethod):
            skips_before = chosen.router.bound_skips
            probes = tuple(chosen.route(query))
            bound_skipped = chosen.router.bound_skips - skips_before
            shards = chosen.shard_count
            pruned = shards - len(probes)
        else:
            probes = ()
            shards = 1
            pruned = 0
        layout: tuple[int, ...] = ()
        if self.config.executor == "process" and shards > 1:
            layout = tuple(
                shard_id % self.config.parallelism for shard_id in range(shards)
            )
        # Mirror BatchExecutor._below_fallback_threshold: a zero-latency
        # batch under the Monte-Carlo volume threshold takes the exact
        # serial path even when parallelism is configured.
        fallback = (
            self.config.batched
            and self.config.parallelism > 1
            and self.config.io_latency_seconds == 0.0
            and batch_size * self.config.mc_samples < SERIAL_FALLBACK_SAMPLE_OPS
        )
        return Explanation(
            spec=spec,
            choice=choice,
            estimates=dict(decision.estimates),
            shards=shards,
            shard_probes=probes,
            shards_pruned=pruned,
            filter_kernel=_kernel_enabled(chosen),
            batched=self.config.batched,
            parallelism=self.config.parallelism,
            data_records_per_page=self.planner.data_records_per_page,
            executor=self.config.executor,
            worker_layout=layout,
            shards_bound_skipped=bound_skipped,
            batch_queries=batch_size,
            serial_fallback_threshold=SERIAL_FALLBACK_SAMPLE_OPS,
            serial_fallback=fallback,
            pool_policy=self.config.pool_policy,
            pool_capacity=self.config.pool_capacity,
            tuner=self.tuner.report() if self.tuner is not None else None,
            on_fault=self.config.on_fault,
            worker_timeout=self.config.worker_timeout,
            max_retries=self.config.max_retries,
            checksum=self.config.checksum,
            degradation_ladder=(
                tuple(
                    level
                    for level, _ in self._degradation_ladder(
                        choice, executor=self.config.executor
                    )
                )
                if self.config.on_fault == "degrade"
                else ()
            ),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _meta(self, archive_format: str) -> str:
        return json.dumps(
            {
                "format": archive_format,
                "config": json.loads(self.config.to_json()),
                "methods": self.method_names,
                "catalogs": {
                    name: np.asarray(_method_catalog(m).values).tolist()
                    for name, m in self._methods.items()
                },
                # Learnt adaptive state rides along so a reopened
                # database plans (and tunes) from where this one left
                # off instead of re-learning from scratch.
                "planner": self.planner.state_dict(),
                "tuner": (
                    self.tuner.state_dict() if self.tuner is not None else None
                ),
            },
            sort_keys=True,
        )

    @staticmethod
    def _restore_learned(db: "Database", meta: dict | None) -> None:
        """Reload archived planner/tuner state into a reopened database."""
        if not meta:
            return
        planner_state = meta.get("planner")
        if planner_state:
            db.planner.load_state(planner_state)
        tuner_state = meta.get("tuner")
        if tuner_state and db.tuner is not None:
            db.tuner.load_state(tuner_state)

    def save(self, path):
        """Persist the database.

        With ``config.wal=False`` (the default) this writes one ``.npz``
        archive, exactly as before — atomically now (temp file +
        ``os.replace``), so a crash mid-save never clobbers the previous
        archive.  A monolithic single-U-tree database uses the
        fitted-summary archive of
        :func:`repro.storage.serialize.save_utree` (no CFB re-fitting on
        open).  Every other shape — sharded methods, U-PCR, scans,
        multi-method databases — stores the object set (ids + pdf
        descriptors) plus the config, and :meth:`open` rebuilds the
        structures deterministically; answers round-trip bit-identically
        (P_app streams derive from ``(seed, oid)``), while I/O accounting
        may differ from the pre-save instance when the original insert
        order did (the same caveat as ``load_utree``).

        With ``config.wal=True`` the target is a *directory*: a manifest,
        one ``.npz`` member per method (per shard when sharded) and a
        write-ahead log.  Saves are incremental — members whose dirty
        epoch matches the manifest's are skipped — and each successful
        checkpoint truncates the WAL.  From the first such save on,
        every mutation is logged durably before it is applied, and
        :meth:`open` replays the log over the checkpoint.  Returns a
        ``{"path", "written", "skipped"}`` report in this mode.

        Only the built-in pdf families round-trip; custom densities raise
        :class:`~repro.storage.serialize.SerializationError` — tabulate
        them first.
        """
        from repro.storage.serialize import (
            atomic_savez,
            density_descriptor,
            pack_json,
            save_utree,
        )

        if self.config.wal:
            return self._save_incremental(path)

        if self.method_names == ["utree"] and not isinstance(
            self._methods["utree"], ShardedAccessMethod
        ):
            save_utree(
                self._methods["utree"],
                path,
                extra={_META_KEY: self._meta(_FORMAT_UTREE)},
            )
            return None

        first = next(iter(self._methods.values()))
        records = sorted(_live_records(first), key=lambda r: r.oid)
        seen: set[int] = set()
        oids: list[int] = []
        descriptors: list[dict] = []
        data_file = first.data_file
        for record in records:
            if record.oid in seen:  # sharded children never overlap, but be safe
                continue
            seen.add(record.oid)
            obj = data_file.peek(record.address)
            oids.append(record.oid)
            descriptors.append(density_descriptor(obj.pdf))
        atomic_savez(
            path,
            **{_META_KEY: self._meta(_FORMAT_OBJECTS)},
            dim=np.int64(self.dim),
            oids=np.array(oids, dtype=np.int64),
            descriptors=pack_json(descriptors),
        )
        return None

    def _member_objects(self, method, shard: int | None) -> list:
        """``(oid, object)`` pairs of one archive member, oid-sorted."""
        source = method.shards[shard] if shard is not None else method
        records = sorted(_live_records(source), key=lambda r: r.oid)
        data_file = method.data_file
        return [(r.oid, data_file.peek(r.address)) for r in records]

    def _save_incremental(self, path) -> dict:
        """Checkpoint into a directory archive, rewriting dirty members only.

        Crash protocol: dirty members land first, under epoch-versioned
        filenames that the current manifest never references; then the
        manifest is atomically replaced, switching to the new member set
        and naming a fresh (empty) WAL segment in one step.  A crash
        before the replace leaves the old checkpoint plus its full WAL; a
        crash after it leaves the new checkpoint with nothing to replay.
        Stale member files and WAL segments are garbage-collected only
        after the replace has landed.
        """
        from repro.storage.serialize import (
            atomic_savez,
            atomic_write_text,
            density_descriptor,
            pack_json,
        )

        root = os.fspath(path)
        os.makedirs(root, exist_ok=True)
        manifest_path = os.path.join(root, _MANIFEST_NAME)
        previous: dict = {}
        if os.path.exists(manifest_path):
            with open(manifest_path, encoding="utf-8") as fh:
                previous = json.load(fh)
            if previous.get("format") != _FORMAT_DIR:
                raise ValueError(
                    f"{manifest_path} is not a {_FORMAT_DIR} manifest; refusing "
                    "to overwrite a foreign directory"
                )
        old_members: dict[str, dict] = previous.get("members", {})
        checkpoint = int(previous.get("checkpoint", -1)) + 1
        written: list[str] = []
        skipped: list[str] = []
        members: dict[str, dict] = {}
        for name, method in self._methods.items():
            if isinstance(method, ShardedAccessMethod):
                parts = [
                    (f"{name}/shard{i}", i) for i in range(method.shard_count)
                ]
            else:
                parts = [(name, None)]
            for key, shard in parts:
                epoch = self._epochs.setdefault(key, 0)
                old = old_members.get(key)
                if (
                    old is not None
                    and int(old["epoch"]) == epoch
                    and os.path.exists(os.path.join(root, old["file"]))
                ):
                    members[key] = {"file": old["file"], "epoch": epoch}
                    skipped.append(key)
                    continue
                safe = key.replace("/", ".").replace("@", "-")
                filename = f"{safe}.e{epoch}.npz"
                pairs = self._member_objects(method, shard)
                atomic_savez(
                    os.path.join(root, filename),
                    dim=np.int64(self.dim),
                    oids=np.array([oid for oid, _ in pairs], dtype=np.int64),
                    descriptors=pack_json(
                        [density_descriptor(obj.pdf) for _, obj in pairs]
                    ),
                )
                members[key] = {"file": filename, "epoch": epoch}
                written.append(key)
        wal_name = f"wal.{checkpoint}.log"
        manifest = {
            "format": _FORMAT_DIR,
            "checkpoint": checkpoint,
            "meta": json.loads(self._meta(_FORMAT_DIR)),
            "members": members,
            "wal": wal_name,
        }
        atomic_write_text(manifest_path, json.dumps(manifest, sort_keys=True))
        # Committed: mutations from here on log to the fresh segment.
        self._attach_wal(root, wal_name)
        self._collect_garbage(root, members, wal_name)
        return {"path": root, "written": written, "skipped": skipped}

    @staticmethod
    def _collect_garbage(root: str, members: dict, wal_name: str) -> None:
        """Drop member/WAL files the just-committed manifest no longer uses."""
        import re

        keep = {member["file"] for member in members.values()}
        keep.add(wal_name)
        ours = re.compile(r"(.+\.e\d+\.npz|wal\.\d+\.log)$")
        for filename in os.listdir(root):
            if filename in keep or not ours.fullmatch(filename):
                continue
            try:
                os.unlink(os.path.join(root, filename))
            except OSError:  # pragma: no cover - GC is best-effort
                pass

    @classmethod
    def open(cls, path, config: ExecConfig | None = None) -> "Database":
        """Reconstruct a database saved with :meth:`save`.

        ``config`` overrides the archived execution config (the archive's
        is used when omitted).  Plain ``save_utree`` archives open too,
        as a single-U-tree database under default config.  A directory
        archive (saved under ``config.wal=True``) is opened from its
        latest checkpoint, then the write-ahead log is replayed over it —
        ``db.last_recovery["wal_entries"]`` reports how many logged
        operations recovery re-applied.
        """
        from repro.core.catalog import UCatalog
        from repro.storage.serialize import (
            SerializationError,
            density_from_descriptor,
            load_utree,
            unpack_json,
        )

        if os.path.isdir(path):
            return cls._open_directory(path, config)

        with np.load(path) as archive:
            meta = None
            if _META_KEY in archive:
                meta = json.loads(str(archive[_META_KEY]))
            if meta is not None and meta.get("format") == _FORMAT_OBJECTS_V1:
                raise SerializationError(
                    "this archive uses the v1 object format (pickled "
                    "descriptors); re-save it with a current build"
                )
            if meta is not None and meta.get("format") == _FORMAT_OBJECTS:
                if config is None:
                    config = ExecConfig.from_json(json.dumps(meta["config"]))
                dim = int(archive["dim"])
                catalogs = {
                    name: UCatalog(np.asarray(values))
                    for name, values in meta.get("catalogs", {}).items()
                }
                objects = [
                    UncertainObject(int(oid), density_from_descriptor(doc))
                    for oid, doc in zip(
                        archive["oids"], unpack_json(archive["descriptors"])
                    )
                ]
                db = cls.create(
                    objects,
                    config,
                    methods=tuple(meta["methods"]),
                    catalog=catalogs or None,
                    dim=dim,
                )
                cls._restore_learned(db, meta)
                return db

        # A fitted U-tree archive (facade-saved with _FORMAT_UTREE, or a
        # plain save_utree file): load_utree restores the fitted CFBs and
        # the archived catalog without re-fitting anything.
        if config is None and meta is not None:
            config = ExecConfig.from_json(json.dumps(meta["config"]))
        if config is None:
            config = ExecConfig()
        pool = (
            BufferPool(
                config.pool_capacity,
                policy=config.pool_policy,
                probation_capacity=config.pool_probation,
            )
            if config.pool_capacity
            else None
        )
        tree = load_utree(
            path,
            estimator=config.estimator(),
            filter_kernel=config.filter_kernel,
            pool=pool,
        )
        db = cls({"utree": tree}, config)
        cls._restore_learned(db, meta)
        return db

    @classmethod
    def _open_directory(cls, path, config: ExecConfig | None) -> "Database":
        """Open a WAL-backed directory archive: checkpoint + log replay."""
        from repro.core.catalog import UCatalog
        from repro.storage.serialize import density_from_descriptor, unpack_json

        root = os.fspath(path)
        manifest_path = os.path.join(root, _MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise ValueError(
                f"{root} has no {_MANIFEST_NAME}; not a database directory"
            )
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _FORMAT_DIR:
            raise ValueError(
                f"{manifest_path} declares {manifest.get('format')!r}, "
                f"expected {_FORMAT_DIR}"
            )
        meta = manifest["meta"]
        if config is None:
            config = ExecConfig.from_json(json.dumps(meta["config"]))
        if not config.wal:
            raise ValueError(
                "directory archives are WAL-backed; open them with a "
                "wal=True config (or omit config to use the archived one)"
            )
        method_names = tuple(meta["methods"])
        first = method_names[0]
        # Every method indexes the same object set, so loading the first
        # method's member(s) recovers it; the others rebuild from it.
        objects_by_oid: dict[int, UncertainObject] = {}
        dim: int | None = None
        for key, member in manifest["members"].items():
            if key != first and not key.startswith(first + "/"):
                continue
            with np.load(os.path.join(root, member["file"])) as archive:
                dim = int(archive["dim"])
                for oid, doc in zip(
                    archive["oids"], unpack_json(archive["descriptors"])
                ):
                    objects_by_oid[int(oid)] = UncertainObject(
                        int(oid), density_from_descriptor(doc)
                    )
        if dim is None:  # pragma: no cover - manifest always lists members
            raise ValueError(f"manifest lists no members for method {first!r}")
        objects = [objects_by_oid[oid] for oid in sorted(objects_by_oid)]
        catalogs = {
            name: UCatalog(np.asarray(values))
            for name, values in meta.get("catalogs", {}).items()
        }
        db = cls.create(
            objects,
            config,
            methods=method_names,
            catalog=catalogs or None,
            dim=dim,
        )
        cls._restore_learned(db, meta)
        db._epochs = {
            key: int(member["epoch"])
            for key, member in manifest["members"].items()
        }
        db._attach_wal(root, manifest["wal"])
        entries = db.wal.replay()
        db._replaying = True
        try:
            for entry in entries:
                db._apply_logged(entry)
        finally:
            db._replaying = False
        db.last_recovery = {"wal_entries": len(entries)}
        return db
