"""``ExecConfig`` — every execution knob of the engine in one dataclass.

PRs 1-4 grew four subsystems (executor, refinement engine, shard router,
filter kernel), each with its own constructor knobs and environment
overrides.  ``ExecConfig`` is the single place they all resolve:

* construction: ``page_size``, ``pool_capacity`` (0 = the paper's
  uncached accounting), ``mc_samples``/``seed`` (the shared Monte-Carlo
  estimator), ``filter_kernel``, ``shards``/``partitioner``/``prune``;
* execution: ``batched``, ``parallelism``, ``memoize``,
  ``dedupe_pages``, ``io_latency_seconds``, ``auto_observe`` (planner
  calibration);
* environment: :meth:`ExecConfig.from_env` reads every recognised
  ``REPRO_*`` variable exactly once (through :mod:`repro.env`) and warns
  about unrecognised ones.

The config is frozen: derive variants with :meth:`with_options` (a typed
:func:`dataclasses.replace`).  :meth:`paper_exact` is the preset that
pins the paper's accounting — capacity-0 buffer pool, scalar filter
rules, one shard, strictly serial per-query execution — which the
equivalence tests hold against the seed counters.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro import env as repro_env
from repro.core.filterkernel import FILTER_KERNEL_ENV, resolve_filter_kernel
from repro.storage.bufferpool import POOL_POLICIES
from repro.uncertainty.montecarlo import AppearanceEstimator

__all__ = ["ExecConfig"]

_PARTITIONER_NAMES = ("str", "hash")
_EXECUTOR_NAMES = ("thread", "process")
_POOL_POLICY_NAMES = POOL_POLICIES
_ON_FAULT_NAMES = ("fail", "degrade")


@dataclass(frozen=True)
class ExecConfig:
    """The engine's execution configuration (validated, immutable).

    Attributes:
        filter_kernel: ``"on"``/``"off"`` (or a bool) for the vectorized
            leaf-classification kernel; ``None`` defers to the
            ``REPRO_FILTER_KERNEL`` environment default at build time.
        shards: child structures per access method (1 = monolithic).
        partitioner: ``"str"`` (spatial tiling) or ``"hash"``.
        prune: let the shard router skip provably disjoint shards.
        batched: run workloads through the cross-query
            :class:`~repro.exec.batch.BatchExecutor`; ``False`` executes
            query-at-a-time through the plain executor (the paper's
            accounting).
        parallelism: executor workers (1 = exact serial path) — threads
            for the default backend, forked processes for
            ``executor="process"``.
        executor: batch backend, ``"thread"`` (default; covers the
            serial path) or ``"process"`` (forked per-shard workers over
            shared-memory columns — see :mod:`repro.exec.mpexec`).
            Environment default via ``REPRO_EXECUTOR``.
        memoize: share ``(address, rect)`` P_app results across queries.
        dedupe_pages: fetch each candidate data page once per batch.
        io_latency_seconds: simulated per-page latency for the parallel
            fetch thread.
        pool_capacity: buffer-pool frames (0 = paper-exact uncached I/O).
        pool_policy: buffer-pool replacement policy, ``"lru"``, ``"2q"``
            (default) or ``"arc"`` (adaptive, with ghost lists).
            Environment default via ``REPRO_POOL_POLICY``.
        pool_probation: 2Q probation-FIFO frames; ``None`` keeps the
            built-in ``max(1, capacity // 8)``.  Ignored by the other
            policies.  Environment default via ``REPRO_POOL_PROBATION``.
        probe_bound: let the shard router stop probing once the
            cost-ordered cheapest shards provably satisfy the query
            (Observation-4 residual-probability bound for ranges,
            running best-worst distance bound for NN).  Answers are
            identical either way; only probe counts change.
        auto_tune: drive each :meth:`Database.run` batch through the
            workload-aware :class:`~repro.exec.tuner.AutoTuner`, which
            converges on method / kernel / executor / parallelism
            choices from observed throughput.  Requires ``batched``.
        wal: durable storage mode.  :meth:`Database.save` writes an
            incremental directory archive (per-method / per-shard
            members, clean ones skipped) instead of one monolithic
            ``.npz``, and attaches a write-ahead log
            (:mod:`repro.storage.wal`): every ``insert``/``delete``/
            ``rebalance`` after the first save is fsync'd to the log
            before the in-memory mutation, and :meth:`Database.open`
            replays the log on top of the snapshot.  Off (the default)
            preserves the seed's single-archive persistence and I/O
            accounting exactly.  Environment default via ``REPRO_WAL``.
        reclaim: let each method's :class:`~repro.storage.pager.DataFile`
            reuse slots freed by ``delete`` (exact-size free list; one
            page write per reused slot) instead of growing append-only
            forever.  Off by default — the paper's byte and I/O
            accounting assumes strict append.  Environment default via
            ``REPRO_RECLAIM``.
        on_fault: what the runtime does with a recoverable execution
            fault (:class:`~repro.faults.FaultError`).  ``"fail"`` (the
            default) propagates the structured exception after cleaning
            up, leaving behavior byte-identical to the seed on the
            fault-free path.  ``"degrade"`` turns on the full resilience
            ladder: supervised fault-domain retries in the process pool,
            quarantine-and-scrub of corrupt pages, and per-batch
            process → thread → serial backend fallback — answers stay
            bit-identical, only throughput degrades.  Environment
            default via ``REPRO_ON_FAULT``.
        worker_timeout: per-command reply deadline (seconds) for the
            process backend's workers; ``0`` (the default) blocks
            forever exactly as the seed did, so a hung worker goes
            undetected but nothing else changes.  Environment default
            via ``REPRO_WORKER_TIMEOUT``.
        max_retries: bounded attempts a failed fault domain gets
            (worker respawn-and-resend rounds; transient-read retries
            use the storage layer's own bound).  Only consulted under
            ``on_fault="degrade"``.  Environment default via
            ``REPRO_MAX_RETRIES``.
        checksum: keep a crc32 per data page and verify it on every
            physical read (:class:`~repro.storage.pager.DataFile`
            integrity mode).  The crc header costs
            :data:`~repro.storage.layout.PAGE_CHECKSUM_BYTES` of packing
            capacity per page; off (the default) is byte-compatible with
            the seed.  Environment default via ``REPRO_CHECKSUM``.
        serve_host: bind address for :class:`repro.serve.QueryServer`
            (the query-service front-end).  Environment default via
            ``REPRO_SERVE_HOST``.
        serve_port: TCP port the server binds; ``0`` (the default) picks
            an ephemeral port (read the resolved one from
            ``QueryServer.port``).  Environment default via
            ``REPRO_SERVE_PORT``.
        max_inflight: admission-control bound of the query service —
            requests pending beyond this are shed with a typed ``BUSY``
            reply instead of growing an unbounded backlog.  Environment
            default via ``REPRO_MAX_INFLIGHT``.
        batch_window_ms: how long the server's dispatcher holds the
            first request of a batch open for companion requests from
            other clients (cross-client batch forming — shared pages
            and repeated rectangles are then paid for once per batch).
            ``0`` still coalesces whatever is already queued.
            Environment default via ``REPRO_BATCH_WINDOW_MS``.
        page_size: simulated page size in bytes.
        mc_samples: Monte-Carlo samples per P_app evaluation.
        seed: base RNG seed; per-object streams derive from
            ``(seed, oid)``, so equal configs give bit-identical answers.
        auto_observe: let the planner recalibrate its packing constant
            from executed workloads.
        full_scale: run experiments at the paper's full parameters
            (the ``REPRO_FULL_SCALE`` switch).
    """

    filter_kernel: str | bool | None = None
    shards: int = 1
    partitioner: str = "str"
    prune: bool = True
    batched: bool = True
    parallelism: int = 1
    executor: str = "thread"
    memoize: bool = True
    dedupe_pages: bool = True
    io_latency_seconds: float = 0.0
    pool_capacity: int = 0
    pool_policy: str = "2q"
    pool_probation: int | None = None
    probe_bound: bool = True
    auto_tune: bool = False
    wal: bool = False
    reclaim: bool = False
    on_fault: str = "fail"
    worker_timeout: float = 0.0
    max_retries: int = 2
    checksum: bool = False
    serve_host: str = "127.0.0.1"
    serve_port: int = 0
    max_inflight: int = 64
    batch_window_ms: float = 2.0
    page_size: int = 4096
    mc_samples: int = 10_000
    seed: int = 0
    auto_observe: bool = True
    full_scale: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.partitioner not in _PARTITIONER_NAMES:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"pick one of {_PARTITIONER_NAMES}"
            )
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if not self.batched and self.parallelism != 1:
            raise ValueError(
                "parallelism > 1 requires batched=True (the per-query "
                "executor is strictly serial)"
            )
        if self.executor not in _EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"pick one of {_EXECUTOR_NAMES}"
            )
        if self.executor == "process" and not self.batched:
            raise ValueError(
                "executor='process' requires batched=True (the process "
                "pool is a batch backend)"
            )
        if self.io_latency_seconds < 0:
            raise ValueError("io_latency_seconds must be non-negative")
        if self.pool_capacity < 0:
            raise ValueError("pool_capacity must be non-negative")
        if self.pool_policy not in _POOL_POLICY_NAMES:
            raise ValueError(
                f"unknown pool_policy {self.pool_policy!r}; "
                f"pick one of {_POOL_POLICY_NAMES}"
            )
        if self.pool_probation is not None and self.pool_probation < 0:
            raise ValueError("pool_probation must be non-negative")
        if self.auto_tune and not self.batched:
            raise ValueError(
                "auto_tune=True requires batched=True (the tuner observes "
                "batch throughput)"
            )
        if self.on_fault not in _ON_FAULT_NAMES:
            raise ValueError(
                f"unknown on_fault {self.on_fault!r}; "
                f"pick one of {_ON_FAULT_NAMES}"
            )
        if self.worker_timeout < 0:
            raise ValueError("worker_timeout must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not self.serve_host:
            raise ValueError("serve_host must be a non-empty bind address")
        if not 0 <= self.serve_port <= 65535:
            raise ValueError("serve_port must be in [0, 65535] (0 = ephemeral)")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if self.page_size < 256:
            raise ValueError("page_size must be at least 256 bytes")
        if self.mc_samples < 1:
            raise ValueError("mc_samples must be at least 1")
        # Normalise/validate the kernel setting eagerly so a typo fails
        # at config time, not at the first build.
        if self.filter_kernel is not None:
            resolve_filter_kernel(self.filter_kernel)

    # ------------------------------------------------------------------
    # presets and variants
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, **overrides) -> "ExecConfig":
        """Resolve the configuration from the environment, once.

        Reads every recognised ``REPRO_*`` key through :mod:`repro.env`
        (the package's only ``os.environ`` accessor), warns about
        unrecognised ``REPRO_*`` keys, and applies ``overrides`` on top
        of the environment-derived fields.
        """
        repro_env.warn_unknown_keys()
        fields: dict = {}
        kernel = repro_env.env_value(FILTER_KERNEL_ENV)
        if kernel is not None:
            fields["filter_kernel"] = kernel
        fields["parallelism"] = repro_env.env_int("REPRO_SHARD_PARALLELISM", 1)
        executor = repro_env.env_value("REPRO_EXECUTOR")
        if executor is not None and executor.strip():
            fields["executor"] = executor.strip().lower()
        policy = repro_env.env_value("REPRO_POOL_POLICY")
        if policy is not None and policy.strip():
            fields["pool_policy"] = policy.strip().lower()
        probation = repro_env.env_value("REPRO_POOL_PROBATION")
        if probation is not None and probation.strip():
            fields["pool_probation"] = int(probation)
        bound = repro_env.env_value("REPRO_PROBE_BOUND")
        if bound is not None and bound.strip():
            fields["probe_bound"] = repro_env.env_flag("REPRO_PROBE_BOUND")
        if repro_env.env_flag("REPRO_AUTO_TUNE"):
            fields["auto_tune"] = True
        if repro_env.env_flag("REPRO_WAL"):
            fields["wal"] = True
        if repro_env.env_flag("REPRO_RECLAIM"):
            fields["reclaim"] = True
        on_fault = repro_env.env_value("REPRO_ON_FAULT")
        if on_fault is not None and on_fault.strip():
            fields["on_fault"] = on_fault.strip().lower()
        timeout = repro_env.env_value("REPRO_WORKER_TIMEOUT")
        if timeout is not None and timeout.strip():
            fields["worker_timeout"] = float(timeout)
        retries = repro_env.env_value("REPRO_MAX_RETRIES")
        if retries is not None and retries.strip():
            fields["max_retries"] = int(retries)
        if repro_env.env_flag("REPRO_CHECKSUM"):
            fields["checksum"] = True
        host = repro_env.env_value("REPRO_SERVE_HOST")
        if host is not None and host.strip():
            fields["serve_host"] = host.strip()
        port = repro_env.env_value("REPRO_SERVE_PORT")
        if port is not None and port.strip():
            fields["serve_port"] = int(port)
        inflight = repro_env.env_value("REPRO_MAX_INFLIGHT")
        if inflight is not None and inflight.strip():
            fields["max_inflight"] = int(inflight)
        window = repro_env.env_value("REPRO_BATCH_WINDOW_MS")
        if window is not None and window.strip():
            fields["batch_window_ms"] = float(window)
        fields["full_scale"] = repro_env.env_flag("REPRO_FULL_SCALE")
        fields.update(overrides)
        return cls(**fields)

    @classmethod
    def paper_exact(cls) -> "ExecConfig":
        """The frozen paper-accounting preset.

        Capacity-0 buffer pool, scalar filter rules, one shard, strictly
        serial query-at-a-time execution with no cross-query memoisation
        — node accesses, data-page reads and P_app computation counts
        reproduce the seed implementation exactly.
        """
        return cls(
            filter_kernel="off",
            shards=1,
            batched=False,
            parallelism=1,
            memoize=False,
            dedupe_pages=False,
            pool_capacity=0,
            auto_observe=False,
        )

    def with_options(self, **changes) -> "ExecConfig":
        """A modified copy (the frozen dataclass's update surface)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # derived wiring
    # ------------------------------------------------------------------
    @property
    def kernel_enabled(self) -> bool:
        """The kernel knob resolved to a bool (env-deferred when unset)."""
        return resolve_filter_kernel(self.filter_kernel)

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    def estimator(self) -> AppearanceEstimator:
        """A fresh Monte-Carlo estimator under this config's sampling."""
        return AppearanceEstimator(n_samples=self.mc_samples, seed=self.seed)

    def refinement_engine(self, *, cache_capacity: int = 4096):
        """A fresh refinement engine under this config's sampling."""
        from repro.exec.refine import RefinementEngine

        return RefinementEngine(
            n_samples=self.mc_samples, seed=self.seed, cache_capacity=cache_capacity
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """A JSON document reconstructing this config (for archives)."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, doc: str) -> "ExecConfig":
        fields = json.loads(doc)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in fields.items() if k in known})

    def summary(self) -> str:
        """One human line: only the fields that differ from the defaults."""
        default = ExecConfig()
        diffs = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return f"ExecConfig({', '.join(diffs) if diffs else 'defaults'})"
