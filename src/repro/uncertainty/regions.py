"""Uncertainty regions: the supports of object pdfs.

The paper's motivating example uses circular uncertainty regions (moving
clients whose distance threshold bounds their drift) and sphere regions for
the 3-D Aircraft dataset; box regions arise for sensor-reading style data.
A region knows its MBR, its volume, uniform sampling, and membership tests
— everything the Monte-Carlo estimator (Eq. 3) and the marginal-CDF
machinery need.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from repro.geometry.rect import Rect

__all__ = ["UncertaintyRegion", "BoxRegion", "BallRegion", "unit_ball_volume"]


def unit_ball_volume(dim: int) -> float:
    """Volume of the d-dimensional unit ball."""
    if dim < 1:
        raise ValueError("dimensionality must be at least 1")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


class UncertaintyRegion(ABC):
    """Abstract support of an uncertain object's pdf.

    Concrete regions must be bounded, have positive volume, and support
    exact membership tests plus uniform sampling (the primitive underlying
    the paper's Monte-Carlo integration).
    """

    @property
    @abstractmethod
    def dim(self) -> int:
        """Dimensionality of the data space."""

    @abstractmethod
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the region."""

    @abstractmethod
    def volume(self) -> float:
        """d-dimensional volume of the region."""

    @abstractmethod
    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which rows of ``(n, d)`` ``points`` lie inside."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points uniformly from the region, shape ``(n, d)``."""

    def contains_point(self, point: Iterable[float]) -> bool:
        """Membership test for a single point."""
        p = np.asarray(point, dtype=np.float64).reshape(1, -1)
        return bool(self.contains_points(p)[0])


class BoxRegion(UncertaintyRegion):
    """An axis-aligned box support (e.g. interval sensor readings)."""

    def __init__(self, rect: Rect):
        if rect.area() <= 0.0:
            raise ValueError("box region must have positive volume")
        self._rect = rect

    @property
    def rect(self) -> Rect:
        """The underlying rectangle."""
        return self._rect

    @property
    def dim(self) -> int:
        return self._rect.dim

    def mbr(self) -> Rect:
        return self._rect

    def volume(self) -> float:
        return self._rect.area()

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        return self._rect.contains_points(points)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("sample count must be non-negative")
        u = rng.random((n, self.dim))
        return self._rect.lo + u * self._rect.extent

    def __repr__(self) -> str:
        return f"BoxRegion({self._rect!r})"


class BallRegion(UncertaintyRegion):
    """A d-dimensional ball support (circle in 2-D, sphere in 3-D).

    This is the paper's canonical region: a moving object can be anywhere
    within ``radius`` of its last reported location.
    """

    def __init__(self, center: Iterable[float], radius: float):
        c = np.asarray(center, dtype=np.float64)
        if c.ndim != 1 or c.size == 0:
            raise ValueError("center must be a non-empty 1-D vector")
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        self.center = c
        self.radius = float(radius)

    @property
    def dim(self) -> int:
        return self.center.size

    def mbr(self) -> Rect:
        return Rect.from_center(self.center, self.radius)

    def volume(self) -> float:
        return unit_ball_volume(self.dim) * self.radius ** self.dim

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        sq = np.sum((pts - self.center) ** 2, axis=1)
        return sq <= self.radius * self.radius * (1.0 + 1e-12)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform ball sampling: random direction, radius ~ U^(1/d) scaling."""
        if n < 0:
            raise ValueError("sample count must be non-negative")
        d = self.dim
        directions = rng.normal(size=(n, d))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        # A zero vector has probability zero but guard against it anyway.
        norms[norms == 0.0] = 1.0
        directions /= norms
        radii = self.radius * rng.random(n) ** (1.0 / d)
        return self.center + directions * radii[:, None]

    def __repr__(self) -> str:
        c = ", ".join(f"{v:g}" for v in self.center)
        return f"BallRegion(center=[{c}], radius={self.radius:g})"
