"""Monte-Carlo evaluation of appearance probabilities (paper Eq. 3).

Computing ``P_app(o, q) = ∫_{o.ur ∩ r_q} o.pdf(x) dx`` has no closed form
for general pdf/region/query combinations, so the paper evaluates it with
the self-normalised estimator

    P_app ≈ ( Σ_{x_i ∈ r_q} pdf(x_i) ) / ( Σ_i pdf(x_i) )

over ``n1`` points drawn uniformly from the uncertainty region.  This
module implements that estimator, the "whole region inside the query"
shortcut the paper notes (n2 = n1 ⇒ exactly 1), and the instrumentation
needed for the CPU-cost experiments (each estimate is one "appearance
probability computation" in Figs. 9-10) and the accuracy study (Fig. 7).
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.rect import Rect
from repro.uncertainty.pdfs import Density

__all__ = ["AppearanceEstimator", "estimate_appearance_probability"]


class AppearanceEstimator:
    """Reusable Monte-Carlo estimator with evaluation accounting.

    Args:
        n_samples: points drawn per estimate (the paper's ``n1``; it uses
            10^6 at full fidelity and we default lower for speed — see
            DESIGN.md scale policy).
        seed: base RNG seed.  Each estimate derives its stream from
            ``seed`` and the object id so results are reproducible and,
            importantly for testing, *consistent across repeated calls*.
    """

    def __init__(self, n_samples: int = 10_000, seed: int = 0):
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.evaluations = 0
        self.elapsed_seconds = 0.0

    def reset_counters(self) -> None:
        """Zero the evaluation and time counters."""
        self.evaluations = 0
        self.elapsed_seconds = 0.0

    def estimate(self, density: Density, query: Rect, object_id: int = 0) -> float:
        """Estimate ``P_app`` for one object against one query rectangle."""
        start = time.perf_counter()
        self.evaluations += 1
        value = self._estimate(density, query, object_id)
        self.elapsed_seconds += time.perf_counter() - start
        return value

    def _estimate(self, density: Density, query: Rect, object_id: int) -> float:
        region = density.region
        mbr = region.mbr()
        if query.contains(mbr):
            # The paper's special case: all samples fall inside, P_app = 1.
            return 1.0
        if not query.intersects(mbr):
            return 0.0
        rng = np.random.default_rng((self.seed, object_id))
        points = region.sample(self.n_samples, rng)
        weights = density.density(points)
        total = float(weights.sum())
        if total <= 0.0:
            return 0.0
        inside = query.contains_points(points)
        return float(weights[inside].sum()) / total


def estimate_appearance_probability(
    density: Density,
    query: Rect,
    n_samples: int = 10_000,
    seed: int = 0,
) -> float:
    """One-shot convenience wrapper around :class:`AppearanceEstimator`."""
    return AppearanceEstimator(n_samples=n_samples, seed=seed).estimate(density, query)
