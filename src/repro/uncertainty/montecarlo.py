"""Monte-Carlo evaluation of appearance probabilities (paper Eq. 3).

Computing ``P_app(o, q) = ∫_{o.ur ∩ r_q} o.pdf(x) dx`` has no closed form
for general pdf/region/query combinations, so the paper evaluates it with
the self-normalised estimator

    P_app ≈ ( Σ_{x_i ∈ r_q} pdf(x_i) ) / ( Σ_i pdf(x_i) )

over ``n1`` points drawn uniformly from the uncertainty region.  This
module implements that estimator, the "whole region inside the query"
shortcut the paper notes (n2 = n1 ⇒ exactly 1), and the instrumentation
needed for the CPU-cost experiments (each estimate is one "appearance
probability computation" in Figs. 9-10) and the accuracy study (Fig. 7).

The per-object sample stream is fully determined by ``(seed, object_id)``
— every estimate against the same object re-draws the *same* cloud of
points and re-evaluates the same densities.  :class:`SampleCache` exploits
that: it stores one :class:`ObjectSamples` (points, per-point densities,
normalising total) per object, so the stream is drawn once and every
subsequent estimate reduces to a mask-and-dot over cached arrays.  Results
are bit-identical to the uncached path because the cache replays exactly
the draw the estimator would have made.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.uncertainty.pdfs import Density

__all__ = [
    "AppearanceEstimator",
    "ObjectSamples",
    "SampleCache",
    "estimate_appearance_probability",
]


@dataclass(frozen=True)
class ObjectSamples:
    """One object's cached Monte-Carlo state: draw once, reuse forever.

    Attributes:
        points: ``(n1, d)`` uniform draws from the uncertainty region.
        weights: pdf values at each point.
        total: ``float(weights.sum())`` — the estimator's normaliser,
            stored so cached and uncached estimates divide by the exact
            same float.
        columns: per-axis views of ``points``, staged once at draw time
            for the engine's stacked mask comparisons (zero-copy — they
            share the points buffer).
        density_ref: weak reference to the density the cloud was drawn
            from.  Object ids can be reused (delete + re-insert), so a
            cache hit is only valid if the requesting density is the
            *same instance*; the weakref avoids keeping deleted objects'
            pdfs alive.
    """

    points: np.ndarray
    weights: np.ndarray
    total: float
    columns: tuple[np.ndarray, ...] = ()
    density_ref: "weakref.ref | None" = None

    @property
    def nbytes(self) -> int:
        # columns are views into the points buffer — not counted twice.
        return self.points.nbytes + self.weights.nbytes


class SampleCache:
    """A bounded, thread-safe LRU cache of per-object sample clouds.

    The estimator's stream for object ``o`` is ``default_rng((seed, o))``
    — deterministic, so one draw serves every query that object ever
    meets.  The cache is keyed by object id and bound to one
    ``(n_samples, seed)`` configuration; sharing it between estimators
    with different configurations would silently change results, so the
    pairing is validated at attach time.

    Concurrent ``get`` calls for the same uncached object coordinate
    through an in-flight event so the draw happens once; other objects
    sample in parallel (NumPy releases the GIL for the heavy parts).

    Args:
        n_samples: points per object (the estimator's ``n1``).
        seed: base RNG seed shared with the estimator.
        capacity: maximum number of objects retained (LRU).  ``0``
            disables retention — every ``get`` re-draws, which is only
            useful for testing the accounting.
        max_bytes: byte budget for retained clouds (LRU-evicted past it;
            at least one entry is always kept).  Entry counts alone are a
            poor bound — at the paper's ``n1 = 10^6`` one 2-D cloud is
            ~24 MB, so 4096 entries would be ~100 GB.  ``None`` disables
            the byte bound.
    """

    DEFAULT_MAX_BYTES = 512 * 2**20

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        capacity: int = 4096,
        *,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
    ):
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.capacity = int(capacity)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0
        self._entries: OrderedDict[int, ObjectSamples] = OrderedDict()
        self._in_flight: dict[int, threading.Event] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries

    @property
    def draws(self) -> int:
        """Sample clouds actually drawn (== density evaluations)."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> tuple[int, int]:
        """Current ``(hits, misses)`` pair, for delta accounting."""
        return (self.hits, self.misses)

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.resident_bytes = 0

    def invalidate(self, object_id: int) -> None:
        """Drop one object's cloud (e.g. the object was deleted)."""
        with self._lock:
            entry = self._entries.pop(int(object_id), None)
            if entry is not None:
                self.resident_bytes -= entry.nbytes

    def get(self, density: Density, object_id: int) -> ObjectSamples:
        """The object's sample cloud, drawing it on first request.

        A hit is served only when the cloud was drawn from this exact
        ``density`` instance — a reused object id (delete + re-insert)
        therefore re-draws instead of replaying a stale object's cloud.
        """
        oid = int(object_id)
        while True:
            with self._lock:
                entry = self._entries.get(oid)
                if entry is not None:
                    if (
                        entry.density_ref is not None
                        and entry.density_ref() is density
                    ):
                        self._entries.move_to_end(oid)
                        self.hits += 1
                        return entry
                    # Stale: same id, different object. Evict and re-draw.
                    del self._entries[oid]
                    self.resident_bytes -= entry.nbytes
                    entry = None
                event = self._in_flight.get(oid)
                if event is None:
                    event = threading.Event()
                    self._in_flight[oid] = event
                    self.misses += 1
                    break
            # Another thread is drawing this object; wait and re-check.
            event.wait()
        try:
            entry = self._draw(density, oid)
            with self._lock:
                if self.capacity > 0:
                    self._entries[oid] = entry
                    self.resident_bytes += entry.nbytes
                    while len(self._entries) > self.capacity or (
                        self.max_bytes is not None
                        and self.resident_bytes > self.max_bytes
                        and len(self._entries) > 1
                    ):
                        _, evicted = self._entries.popitem(last=False)
                        self.resident_bytes -= evicted.nbytes
                        self.evictions += 1
        finally:
            with self._lock:
                self._in_flight.pop(oid, None)
            event.set()
        return entry

    def _draw(self, density: Density, object_id: int) -> ObjectSamples:
        # Exactly the draw AppearanceEstimator made before the cache
        # existed — same RNG derivation, same order of operations — so
        # cached estimates are bit-identical to uncached ones.
        rng = np.random.default_rng((self.seed, object_id))
        points = density.region.sample(self.n_samples, rng)
        weights = density.density(points)
        columns = tuple(points[:, axis] for axis in range(points.shape[1]))
        return ObjectSamples(
            points=points,
            weights=weights,
            total=float(weights.sum()),
            columns=columns,
            density_ref=weakref.ref(density),
        )

    def prewarm(self, pairs) -> int:
        """Draw (and retain) the cloud for every ``(density, object_id)`` pair.

        Used by the process executor to populate the cache *before*
        forking workers, so every worker inherits the warm clouds instead
        of redrawing them privately.  Draws go through :meth:`get` and
        charge the usual miss counters — prewarming therefore changes the
        hit/miss ledger relative to a cold serial run (never the
        estimates), which is why it is opt-in.

        Returns the number of clouds resident afterwards.
        """
        for density, object_id in pairs:
            self.get(density, object_id)
        return len(self._entries)

    def rebind_resident(self, share) -> int:
        """Move every resident cloud's buffers via ``share(array)``.

        The process executor passes
        :meth:`repro.storage.shm.SharedArena.share_array`; afterwards the
        points/weights of each retained :class:`ObjectSamples` live in
        shared anonymous mappings, so forked workers read one physical
        copy.  Column views are rebuilt against the shared points buffer;
        totals and density refs are preserved, so estimates remain
        bit-identical.  Returns the number of clouds rebound.
        """
        with self._lock:
            for oid, entry in list(self._entries.items()):
                points = share(entry.points)
                weights = share(entry.weights)
                columns = tuple(
                    points[:, axis] for axis in range(points.shape[1])
                )
                self._entries[oid] = ObjectSamples(
                    points=points,
                    weights=weights,
                    total=entry.total,
                    columns=columns,
                    density_ref=entry.density_ref,
                )
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SampleCache(n_samples={self.n_samples}, seed={self.seed}, "
            f"capacity={self.capacity}, resident={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class AppearanceEstimator:
    """Reusable Monte-Carlo estimator with evaluation accounting.

    Args:
        n_samples: points drawn per estimate (the paper's ``n1``; it uses
            10^6 at full fidelity and we default lower for speed — see
            DESIGN.md scale policy).
        seed: base RNG seed.  Each estimate derives its stream from
            ``seed`` and the object id so results are reproducible and,
            importantly for testing, *consistent across repeated calls*.
        cache: optional :class:`SampleCache` sharing this estimator's
            ``(n_samples, seed)``.  With a cache attached, repeated
            estimates against the same object skip the RNG rebuild and
            re-draw entirely; values are bit-identical either way.
    """

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        cache: SampleCache | None = None,
    ):
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        if cache is not None and (
            cache.n_samples != self.n_samples or cache.seed != self.seed
        ):
            raise ValueError(
                "sample cache must share the estimator's n_samples and seed "
                f"(cache: {cache.n_samples}/{cache.seed}, "
                f"estimator: {self.n_samples}/{self.seed})"
            )
        self.cache = cache
        self.evaluations = 0
        self.elapsed_seconds = 0.0

    def reset_counters(self) -> None:
        """Zero the evaluation and time counters."""
        self.evaluations = 0
        self.elapsed_seconds = 0.0

    def estimate(self, density: Density, query: Rect, object_id: int = 0) -> float:
        """Estimate ``P_app`` for one object against one query rectangle.

        The contains/intersects short-circuits resolve *before* the timer
        starts: ``elapsed_seconds`` charges only real Monte-Carlo work, so
        the Fig. 9 CPU panels are not inflated by trivial rectangle tests.
        """
        mbr = density.region.mbr()
        if query.contains(mbr):
            # The paper's special case: all samples fall inside, P_app = 1.
            self.evaluations += 1
            return 1.0
        if not query.intersects(mbr):
            self.evaluations += 1
            return 0.0
        start = time.perf_counter()
        self.evaluations += 1
        value = self._integrate(density, query, object_id)
        self.elapsed_seconds += time.perf_counter() - start
        return value

    def samples_for(self, density: Density, object_id: int) -> ObjectSamples:
        """The object's sample cloud — cached when a cache is attached."""
        if self.cache is not None:
            return self.cache.get(density, object_id)
        rng = np.random.default_rng((self.seed, object_id))
        points = density.region.sample(self.n_samples, rng)
        weights = density.density(points)
        return ObjectSamples(points=points, weights=weights, total=float(weights.sum()))

    def _integrate(self, density: Density, query: Rect, object_id: int) -> float:
        samples = self.samples_for(density, object_id)
        if samples.total <= 0.0:
            return 0.0
        inside = query.contains_points(samples.points)
        return float(samples.weights[inside].sum()) / samples.total


def estimate_appearance_probability(
    density: Density,
    query: Rect,
    n_samples: int = 10_000,
    seed: int = 0,
) -> float:
    """One-shot convenience wrapper around :class:`AppearanceEstimator`."""
    return AppearanceEstimator(n_samples=n_samples, seed=seed).estimate(density, query)
