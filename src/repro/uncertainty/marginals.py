"""Per-axis marginal CDFs and quantiles of an uncertain object's law.

PCR boundaries are axis quantiles of the *actual* object distribution
(Section 4.1): ``o.pcr_i-(p)`` is the value ``x`` with
``P(X_i <= x) = p``.  This module provides three interchangeable ways to
answer quantile/CDF questions:

* :class:`FunctionMarginals` — exact closed forms (uniform box, Gaussian
  truncated to a box, ...);
* :class:`GridMarginals` — numeric integration of a 1-D marginal density
  profile on a fine grid (uniform/Gaussian over balls, where the
  cross-section mass has a closed form but the CDF inverse does not);
* :class:`SampleMarginals` — weighted Monte-Carlo quantiles, the fully
  generic fallback that works for *arbitrary* pdfs, which is the paper's
  headline requirement.

All models are monotone by construction so PCR nesting
(``p <= p' => pcr(p) ⊇ pcr(p')``) holds exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "MarginalModel",
    "FunctionMarginals",
    "GridMarginals",
    "SampleMarginals",
]


class MarginalModel(ABC):
    """Answers per-axis CDF and quantile queries for one object."""

    @property
    @abstractmethod
    def dim(self) -> int:
        """Number of axes."""

    @abstractmethod
    def cdf(self, axis: int, x: float) -> float:
        """``P(X_axis <= x)``, clipped to [0, 1]."""

    @abstractmethod
    def quantile(self, axis: int, p: float) -> float:
        """The smallest ``x`` with ``P(X_axis <= x) >= p``."""

    def _check_axis(self, axis: int) -> None:
        if not 0 <= axis < self.dim:
            raise IndexError(f"axis {axis} out of range for {self.dim} dimensions")

    @staticmethod
    def _check_prob(p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return float(p)


class FunctionMarginals(MarginalModel):
    """Marginals given by exact per-axis CDF and quantile callables."""

    def __init__(
        self,
        cdfs: Sequence[Callable[[float], float]],
        quantiles: Sequence[Callable[[float], float]],
    ):
        if len(cdfs) != len(quantiles) or not cdfs:
            raise ValueError("need matching, non-empty cdf and quantile lists")
        self._cdfs = list(cdfs)
        self._quantiles = list(quantiles)

    @property
    def dim(self) -> int:
        return len(self._cdfs)

    def cdf(self, axis: int, x: float) -> float:
        self._check_axis(axis)
        return float(min(1.0, max(0.0, self._cdfs[axis](float(x)))))

    def quantile(self, axis: int, p: float) -> float:
        self._check_axis(axis)
        return float(self._quantiles[axis](self._check_prob(p)))


class GridMarginals(MarginalModel):
    """Marginals from per-axis density profiles integrated on a grid.

    For each axis the caller supplies grid points and (unnormalised)
    marginal density values; trapezoidal integration yields a piecewise
    linear CDF that is normalised to 1 and inverted by interpolation.
    """

    @classmethod
    def from_cdf(cls, grids: Sequence[np.ndarray], cdf_values: Sequence[np.ndarray]) -> "GridMarginals":
        """Build directly from per-axis piecewise-linear CDF values.

        Used when the CDF is known exactly at breakpoints (e.g. histogram
        pdfs), bypassing trapezoidal integration.  Each CDF array must be
        non-decreasing, start at 0 and end at 1.
        """
        if len(grids) != len(cdf_values) or not grids:
            raise ValueError("need matching, non-empty grid and cdf lists")
        model = cls.__new__(cls)
        model._grids = []
        model._cdfs = []
        for grid, cdf in zip(grids, cdf_values):
            g = np.asarray(grid, dtype=np.float64)
            c = np.asarray(cdf, dtype=np.float64)
            if g.ndim != 1 or g.shape != c.shape or g.size < 2:
                raise ValueError("each grid/cdf must be matching 1-D arrays, length >= 2")
            if np.any(np.diff(g) <= 0):
                raise ValueError("grid points must be strictly increasing")
            if np.any(np.diff(c) < -1e-12) or abs(c[0]) > 1e-9 or abs(c[-1] - 1.0) > 1e-9:
                raise ValueError("cdf values must rise from 0 to 1")
            c = np.clip(c, 0.0, 1.0)
            c[0] = 0.0
            c[-1] = 1.0
            model._grids.append(g)
            model._cdfs.append(np.maximum.accumulate(c))
        return model

    def __init__(self, grids: Sequence[np.ndarray], profiles: Sequence[np.ndarray]):
        if len(grids) != len(profiles) or not grids:
            raise ValueError("need matching, non-empty grid and profile lists")
        self._grids: list[np.ndarray] = []
        self._cdfs: list[np.ndarray] = []
        for grid, profile in zip(grids, profiles):
            g = np.asarray(grid, dtype=np.float64)
            f = np.asarray(profile, dtype=np.float64)
            if g.ndim != 1 or g.shape != f.shape or g.size < 2:
                raise ValueError("each grid/profile must be matching 1-D arrays, length >= 2")
            if np.any(np.diff(g) <= 0):
                raise ValueError("grid points must be strictly increasing")
            if np.any(f < 0):
                raise ValueError("density profile must be non-negative")
            steps = np.diff(g)
            cum = np.concatenate([[0.0], np.cumsum(steps * (f[1:] + f[:-1]) / 2.0)])
            total = cum[-1]
            if total <= 0.0:
                raise ValueError("density profile integrates to zero")
            self._grids.append(g)
            self._cdfs.append(cum / total)

    @property
    def dim(self) -> int:
        return len(self._grids)

    def cdf(self, axis: int, x: float) -> float:
        self._check_axis(axis)
        return float(np.interp(x, self._grids[axis], self._cdfs[axis], left=0.0, right=1.0))

    def quantile(self, axis: int, p: float) -> float:
        self._check_axis(axis)
        p = self._check_prob(p)
        cdf = self._cdfs[axis]
        grid = self._grids[axis]
        # np.interp needs strictly increasing x; the cdf may have flat runs
        # (zero-density stretches).  searchsorted picks the left-most point.
        idx = int(np.searchsorted(cdf, p, side="left"))
        if idx <= 0:
            return float(grid[0])
        if idx >= cdf.size:
            return float(grid[-1])
        c0, c1 = cdf[idx - 1], cdf[idx]
        if c1 <= c0:
            return float(grid[idx])
        t = (p - c0) / (c1 - c0)
        return float(grid[idx - 1] + t * (grid[idx] - grid[idx - 1]))


class SampleMarginals(MarginalModel):
    """Weighted-sample marginals: the arbitrary-pdf fallback.

    Given points drawn uniformly from the uncertainty region and weights
    proportional to the pdf at those points, the weighted empirical
    distribution along each axis converges to the true marginal.  This is
    exactly the self-normalised estimator the paper's Monte-Carlo step
    (Eq. 3) uses, recycled for quantiles.
    """

    def __init__(self, points: np.ndarray, weights: np.ndarray):
        pts = np.asarray(points, dtype=np.float64)
        w = np.asarray(weights, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if w.shape != (pts.shape[0],):
            raise ValueError("weights must be a 1-D array matching points")
        if np.any(w < 0) or not np.any(w > 0):
            raise ValueError("weights must be non-negative with positive total")
        self._dim = pts.shape[1]
        self._sorted_values: list[np.ndarray] = []
        self._cum_weights: list[np.ndarray] = []
        total = float(w.sum())
        for axis in range(self._dim):
            order = np.argsort(pts[:, axis], kind="stable")
            self._sorted_values.append(pts[order, axis])
            self._cum_weights.append(np.cumsum(w[order]) / total)

    @property
    def dim(self) -> int:
        return self._dim

    def cdf(self, axis: int, x: float) -> float:
        self._check_axis(axis)
        values = self._sorted_values[axis]
        idx = int(np.searchsorted(values, x, side="right"))
        if idx <= 0:
            return 0.0
        return float(min(1.0, self._cum_weights[axis][idx - 1]))

    def quantile(self, axis: int, p: float) -> float:
        self._check_axis(axis)
        p = self._check_prob(p)
        cum = self._cum_weights[axis]
        values = self._sorted_values[axis]
        idx = int(np.searchsorted(cum, p, side="left"))
        idx = min(idx, values.size - 1)
        return float(values[idx])
