"""Uncertain objects: the unit of data the U-tree indexes.

An :class:`UncertainObject` bundles an id, an uncertainty region and a pdf
(Section 3 of the paper).  It exposes exactly the operations the index
machinery needs: the MBR of the region, per-axis quantiles of the actual
distribution (for PCR computation) and Monte-Carlo appearance probability
(for the refinement step).
"""

from __future__ import annotations

from repro.geometry.rect import Rect
from repro.uncertainty.marginals import MarginalModel
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.pdfs import Density
from repro.uncertainty.regions import UncertaintyRegion

__all__ = ["UncertainObject"]


class UncertainObject:
    """A d-dimensional uncertain object ``o = (id, o.ur, o.pdf)``."""

    __slots__ = ("oid", "pdf", "_mbr")

    def __init__(self, oid: int, pdf: Density):
        self.oid = int(oid)
        self.pdf = pdf
        self._mbr: Rect | None = None

    @property
    def region(self) -> UncertaintyRegion:
        """The uncertainty region ``o.ur``."""
        return self.pdf.region

    @property
    def dim(self) -> int:
        """Dimensionality of the data space."""
        return self.pdf.dim

    @property
    def mbr(self) -> Rect:
        """MBR of the uncertainty region (``o.MBR`` in the paper)."""
        if self._mbr is None:
            self._mbr = self.region.mbr()
        return self._mbr

    def marginals(self) -> MarginalModel:
        """Per-axis marginal model of the object's actual law."""
        return self.pdf.marginals()

    def appearance_probability(
        self, query: Rect, estimator: AppearanceEstimator
    ) -> float:
        """``P_app(o, q)`` estimated with the given Monte-Carlo estimator."""
        return estimator.estimate(self.pdf, query, object_id=self.oid)

    def detail_size_bytes(self) -> int:
        """Approximate on-disk size of the object's detail record.

        Region parameters plus pdf parameters; used by the data-file layer
        when packing detail records into pages.  A conservative flat
        estimate keeps the simulation simple: centre/extents (2d floats),
        pdf descriptor (4 floats) and the id.
        """
        return 2 * self.dim * 8 + 4 * 8 + 4

    def __repr__(self) -> str:
        return f"UncertainObject(oid={self.oid}, pdf={self.pdf!r})"
