"""Uncertain-data substrate: regions, pdfs, Monte-Carlo, marginals."""

from repro.uncertainty.marginals import (
    FunctionMarginals,
    GridMarginals,
    MarginalModel,
    SampleMarginals,
)
from repro.uncertainty.montecarlo import AppearanceEstimator, estimate_appearance_probability
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    Density,
    HistogramDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    poisson_histogram,
    tabulate_density,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion, UncertaintyRegion, unit_ball_volume

__all__ = [
    "AppearanceEstimator",
    "BallRegion",
    "BoxRegion",
    "ConstrainedGaussianDensity",
    "Density",
    "FunctionMarginals",
    "GridMarginals",
    "HistogramDensity",
    "MarginalModel",
    "MixtureDensity",
    "RadialExponentialDensity",
    "SampleMarginals",
    "UncertainObject",
    "UncertaintyRegion",
    "UniformDensity",
    "estimate_appearance_probability",
    "poisson_histogram",
    "tabulate_density",
    "unit_ball_volume",
    "zipf_histogram",
]
