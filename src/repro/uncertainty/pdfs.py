"""Probability density models for uncertain objects.

The paper's central requirement is supporting *arbitrary* pdfs: its
experiments use Uniform and Constrained-Gaussian (Eq. 16) laws and the
introduction names Zipf and Poisson as further candidates.  This module
provides:

* :class:`UniformDensity` — equal likelihood over the region (Eq. 1);
* :class:`ConstrainedGaussianDensity` — a Gaussian renormalised to the
  region, the paper's "Con-Gau" (Eq. 16);
* :class:`HistogramDensity` — piecewise-constant over a grid: the honest
  stand-in for "an arbitrary pdf" (any density can be tabulated into it),
  with :func:`zipf_histogram` building the Zipf-skewed special case;
* :class:`MixtureDensity` — convex combinations of the above.

Every density is normalised over its uncertainty region, exposes vectorised
evaluation (for the Monte-Carlo estimator of Eq. 3), and yields a
:class:`~repro.uncertainty.marginals.MarginalModel` for PCR computation,
using closed forms where they exist and weighted-sample quantiles
otherwise.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import special

from repro.uncertainty.marginals import (
    FunctionMarginals,
    GridMarginals,
    MarginalModel,
    SampleMarginals,
)
from repro.uncertainty.regions import BallRegion, BoxRegion, UncertaintyRegion

__all__ = [
    "Density",
    "UniformDensity",
    "ConstrainedGaussianDensity",
    "HistogramDensity",
    "MixtureDensity",
    "RadialExponentialDensity",
    "poisson_histogram",
    "tabulate_density",
    "zipf_histogram",
]

_GRID_POINTS = 1025
_DEFAULT_MARGINAL_SAMPLES = 16384
_DEFAULT_NORMALISER_SAMPLES = 65536


class Density(ABC):
    """A pdf supported on (and normalised over) an uncertainty region."""

    def __init__(
        self,
        region: UncertaintyRegion,
        *,
        marginal_samples: int = _DEFAULT_MARGINAL_SAMPLES,
        marginal_seed: int = 0,
    ):
        self.region = region
        self._marginal_samples = int(marginal_samples)
        self._marginal_seed = int(marginal_seed)
        self._marginals: MarginalModel | None = None

    @property
    def dim(self) -> int:
        """Dimensionality of the data space."""
        return self.region.dim

    @abstractmethod
    def density(self, points: np.ndarray) -> np.ndarray:
        """Normalised pdf values at an ``(n, d)`` array of points.

        Points outside the uncertainty region evaluate to 0.
        """

    def density_at(self, point: Iterable[float]) -> float:
        """Convenience scalar evaluation."""
        p = np.asarray(point, dtype=np.float64).reshape(1, -1)
        return float(self.density(p)[0])

    def marginals(self) -> MarginalModel:
        """The per-axis marginal model (cached after first use)."""
        if self._marginals is None:
            self._marginals = self._build_marginals()
        return self._marginals

    def _build_marginals(self) -> MarginalModel:
        """Default: weighted-sample marginals — works for any pdf."""
        rng = np.random.default_rng(self._marginal_seed)
        points = self.region.sample(self._marginal_samples, rng)
        weights = self.density(points)
        return SampleMarginals(points, weights)

    def _inside(self, points: np.ndarray) -> np.ndarray:
        return self.region.contains_points(np.asarray(points, dtype=np.float64))


class UniformDensity(Density):
    """Equal appearance likelihood everywhere in the region (Eq. 1)."""

    def __init__(self, region: UncertaintyRegion, **kwargs):
        super().__init__(region, **kwargs)
        self._value = 1.0 / region.volume()

    def density(self, points: np.ndarray) -> np.ndarray:
        inside = self._inside(points)
        return np.where(inside, self._value, 0.0)

    def _build_marginals(self) -> MarginalModel:
        region = self.region
        if isinstance(region, BoxRegion):
            return _uniform_box_marginals(region)
        if isinstance(region, BallRegion):
            return _uniform_ball_marginals(region)
        return super()._build_marginals()

    def __repr__(self) -> str:
        return f"UniformDensity({self.region!r})"


class ConstrainedGaussianDensity(Density):
    """A Gaussian renormalised to the uncertainty region (paper Eq. 16).

    ``pdf_CG(x) = pdf_G(x) / lambda`` inside the region and 0 outside,
    where ``lambda`` is the Gaussian mass of the region.  The covariance is
    isotropic (``sigma^2 I``) as in the paper; ``mean`` defaults to the
    region's centre (the paper's moving-object setup).
    """

    def __init__(
        self,
        region: UncertaintyRegion,
        sigma: float,
        mean: Iterable[float] | None = None,
        **kwargs,
    ):
        super().__init__(region, **kwargs)
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)
        if mean is None:
            self.mean = region.mbr().center
        else:
            self.mean = np.asarray(mean, dtype=np.float64)
            if self.mean.shape != (region.dim,):
                raise ValueError("mean must match the region dimensionality")
        self._log_norm = -(region.dim / 2.0) * math.log(2.0 * math.pi * self.sigma**2)
        self.normaliser = self._compute_normaliser()

    def _gaussian(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        sq = np.sum((pts - self.mean) ** 2, axis=1)
        return np.exp(self._log_norm - sq / (2.0 * self.sigma**2))

    def density(self, points: np.ndarray) -> np.ndarray:
        values = self._gaussian(points) / self.normaliser
        return np.where(self._inside(points), values, 0.0)

    @property
    def _is_centred_ball(self) -> bool:
        return isinstance(self.region, BallRegion) and np.allclose(
            self.mean, self.region.center
        )

    def _compute_normaliser(self) -> float:
        """The Gaussian mass lambda of the region (Eq. 16).

        Closed forms: a ball around the mean has mass
        ``P(chi_d <= r / sigma) = gammainc(d/2, r^2 / (2 sigma^2))``;
        a box with isotropic covariance factorises into per-axis normal
        CDF differences.  Anything else falls back to a seeded Monte-Carlo
        estimate (the paper computes lambda once per object shape anyway).
        """
        region = self.region
        if self._is_centred_ball:
            r = region.radius  # type: ignore[union-attr]
            return float(special.gammainc(region.dim / 2.0, r**2 / (2.0 * self.sigma**2)))
        if isinstance(region, BoxRegion):
            lo = (region.rect.lo - self.mean) / self.sigma
            hi = (region.rect.hi - self.mean) / self.sigma
            return float(np.prod(special.ndtr(hi) - special.ndtr(lo)))
        rng = np.random.default_rng(self._marginal_seed + 0x5EED)
        points = region.sample(_DEFAULT_NORMALISER_SAMPLES, rng)
        return float(np.mean(self._gaussian(points)) * region.volume())

    def _build_marginals(self) -> MarginalModel:
        region = self.region
        if isinstance(region, BoxRegion):
            return _truncated_normal_marginals(region, self.mean, self.sigma)
        if self._is_centred_ball:
            return _centred_ball_gaussian_marginals(region, self.sigma)  # type: ignore[arg-type]
        return super()._build_marginals()

    def __repr__(self) -> str:
        return (
            f"ConstrainedGaussianDensity({self.region!r}, sigma={self.sigma:g}, "
            f"mean={np.array2string(self.mean, precision=3)})"
        )


class HistogramDensity(Density):
    """Piecewise-constant density on a regular grid over a box region.

    This is the work-horse for "arbitrary pdfs": any density can be
    tabulated into cell weights.  Marginals are exact (piecewise-linear
    CDFs from the cell-mass prefix sums).
    """

    def __init__(self, region: BoxRegion, weights: np.ndarray, **kwargs):
        super().__init__(region, **kwargs)
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != region.dim:
            raise ValueError(
                f"weights must be a {region.dim}-dimensional array, got {w.ndim}-D"
            )
        if np.any(w < 0) or not np.any(w > 0):
            raise ValueError("weights must be non-negative with positive total")
        self.weights = w / w.sum()
        self._cells = np.asarray(w.shape, dtype=np.int64)
        rect = region.rect
        self._cell_extent = rect.extent / self._cells
        self._cell_volume = float(np.prod(self._cell_extent))

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        rect = self.region.rect
        rel = (pts - rect.lo) / self._cell_extent
        idx = np.clip(np.floor(rel).astype(np.int64), 0, self._cells - 1)
        values = self.weights[tuple(idx.T)] / self._cell_volume
        return np.where(self._inside(pts), values, 0.0)

    def _build_marginals(self) -> MarginalModel:
        rect = self.region.rect
        grids = []
        cdfs = []
        for axis in range(self.dim):
            other_axes = tuple(a for a in range(self.dim) if a != axis)
            mass = self.weights.sum(axis=other_axes) if other_axes else self.weights
            breakpoints = np.linspace(rect.lo[axis], rect.hi[axis], self._cells[axis] + 1)
            cdf = np.concatenate([[0.0], np.cumsum(mass)])
            cdf /= cdf[-1]
            grids.append(breakpoints)
            cdfs.append(cdf)
        return GridMarginals.from_cdf(grids, cdfs)

    def __repr__(self) -> str:
        return f"HistogramDensity({self.region!r}, cells={tuple(self._cells)})"


class MixtureDensity(Density):
    """A convex combination of densities sharing one uncertainty region."""

    def __init__(
        self,
        components: Sequence[Density],
        weights: Sequence[float] | None = None,
        **kwargs,
    ):
        if not components:
            raise ValueError("a mixture needs at least one component")
        region = components[0].region
        for comp in components[1:]:
            if comp.region is not region:
                raise ValueError("all mixture components must share the same region object")
        super().__init__(region, **kwargs)
        if weights is None:
            w = np.full(len(components), 1.0 / len(components))
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (len(components),) or np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative, matching components")
            w = w / w.sum()
        self.components = list(components)
        self.weights = w

    def density(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        total = np.zeros(pts.shape[0])
        for weight, comp in zip(self.weights, self.components):
            total += weight * comp.density(pts)
        return total

    def __repr__(self) -> str:
        return f"MixtureDensity({len(self.components)} components)"


class RadialExponentialDensity(Density):
    """Exponential radial decay from a mode point: ``pdf ∝ exp(-|x - c| / s)``.

    A common location-uncertainty model (likelihood falls off with
    distance from the reported position, heavier-tailed than a
    Gaussian).  There is no closed-form marginal, so this class exercises
    the library's fully generic path: weighted-sample marginals for PCRs
    and Monte-Carlo for appearance probabilities — precisely the
    "arbitrary pdf" scenario the paper targets.
    """

    def __init__(
        self,
        region: UncertaintyRegion,
        scale: float,
        mode: Iterable[float] | None = None,
        **kwargs,
    ):
        super().__init__(region, **kwargs)
        if scale <= 0.0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)
        if mode is None:
            self.mode = region.mbr().center
        else:
            self.mode = np.asarray(mode, dtype=np.float64)
            if self.mode.shape != (region.dim,):
                raise ValueError("mode must match the region dimensionality")
        rng = np.random.default_rng(self._marginal_seed + 0xDECA)
        points = region.sample(_DEFAULT_NORMALISER_SAMPLES, rng)
        raw = self._raw(points)
        self.normaliser = float(raw.mean() * region.volume())
        if self.normaliser <= 0.0:  # pragma: no cover - scale > 0 prevents this
            raise ValueError("density integrates to zero over the region")

    def _raw(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        dist = np.linalg.norm(pts - self.mode, axis=1)
        return np.exp(-dist / self.scale)

    def density(self, points: np.ndarray) -> np.ndarray:
        values = self._raw(points) / self.normaliser
        return np.where(self._inside(points), values, 0.0)

    def __repr__(self) -> str:
        return f"RadialExponentialDensity({self.region!r}, scale={self.scale:g})"


def poisson_histogram(
    region: BoxRegion,
    rates: Iterable[float],
    cells_per_axis: int = 16,
    **kwargs,
) -> HistogramDensity:
    """A product-Poisson histogram density (the paper's "Poisson" family).

    Each axis carries a Poisson pmf over its cell indices with the given
    rate: cell ``k`` on axis ``i`` has marginal mass
    ``exp(-rate_i) rate_i^k / k!``.  The joint mass is the product —
    modelling attributes like event counts whose likeliest value sits
    near the rate.  Masses are renormalised over the finite grid.
    """
    if cells_per_axis < 1:
        raise ValueError("cells_per_axis must be at least 1")
    rate_vec = np.asarray(list(rates), dtype=np.float64)
    if rate_vec.shape != (region.dim,):
        raise ValueError(f"need one rate per axis ({region.dim}), got {rate_vec.shape}")
    if np.any(rate_vec <= 0):
        raise ValueError("rates must be positive")
    ks = np.arange(cells_per_axis, dtype=np.float64)
    log_fact = special.gammaln(ks + 1.0)
    axis_masses = []
    for rate in rate_vec:
        log_pmf = -rate + ks * math.log(rate) - log_fact
        pmf = np.exp(log_pmf)
        axis_masses.append(pmf / pmf.sum())
    weights = axis_masses[0]
    for pmf in axis_masses[1:]:
        weights = np.multiply.outer(weights, pmf)
    return HistogramDensity(region, weights, **kwargs)


def tabulate_density(
    pdf_callable,
    region: BoxRegion,
    cells_per_axis: int = 32,
    **kwargs,
) -> HistogramDensity:
    """Tabulate an arbitrary density callable into a histogram.

    The universal adapter behind the paper's "arbitrary pdf" claim: any
    non-negative function over the region (it need not be normalised)
    becomes an indexable :class:`HistogramDensity` by evaluation at cell
    centres.  ``pdf_callable`` receives an ``(n, d)`` array and returns
    ``(n,)`` values.
    """
    if cells_per_axis < 1:
        raise ValueError("cells_per_axis must be at least 1")
    rect = region.rect
    axes = [
        rect.lo[i] + (np.arange(cells_per_axis) + 0.5) * rect.extent[i] / cells_per_axis
        for i in range(region.dim)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    centres = np.stack([m.ravel() for m in mesh], axis=1)
    values = np.asarray(pdf_callable(centres), dtype=np.float64)
    if values.shape != (centres.shape[0],):
        raise ValueError("pdf_callable must return one value per point")
    if np.any(values < 0):
        raise ValueError("pdf_callable must be non-negative")
    shape = (cells_per_axis,) * region.dim
    return HistogramDensity(region, values.reshape(shape), **kwargs)


def zipf_histogram(
    region: BoxRegion,
    cells_per_axis: int,
    skew: float = 1.0,
    seed: int = 0,
    **kwargs,
) -> HistogramDensity:
    """A Zipf-skewed histogram density (the paper's "Zipf" pdf family).

    Cell masses follow a Zipf law ``1 / rank^skew`` with ranks assigned by
    a seeded random permutation of the grid cells, so mass concentrates in
    a few cells while remaining reproducible.
    """
    if cells_per_axis < 1:
        raise ValueError("cells_per_axis must be at least 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    n_cells = cells_per_axis**region.dim
    ranks = np.arange(1, n_cells + 1, dtype=np.float64)
    masses = 1.0 / ranks**skew
    rng = np.random.default_rng(seed)
    rng.shuffle(masses)
    shape = (cells_per_axis,) * region.dim
    return HistogramDensity(region, masses.reshape(shape), **kwargs)


# ----------------------------------------------------------------------
# closed-form / grid marginal builders
# ----------------------------------------------------------------------

def _uniform_box_marginals(region: BoxRegion) -> FunctionMarginals:
    rect = region.rect
    cdfs = []
    quantiles = []
    for axis in range(region.dim):
        lo, hi = float(rect.lo[axis]), float(rect.hi[axis])
        span = hi - lo

        def cdf(x: float, lo=lo, span=span) -> float:
            return (x - lo) / span

        def quantile(p: float, lo=lo, span=span) -> float:
            return lo + p * span

        cdfs.append(cdf)
        quantiles.append(quantile)
    return FunctionMarginals(cdfs, quantiles)


def _uniform_ball_marginals(region: BallRegion) -> GridMarginals:
    """Cross-section profile ``(r^2 - u^2)^((d-1)/2)`` integrated on a grid."""
    d = region.dim
    grids = []
    profiles = []
    for axis in range(d):
        c = float(region.center[axis])
        r = region.radius
        grid = np.linspace(c - r, c + r, _GRID_POINTS)
        u = grid - c
        profile = np.maximum(r**2 - u**2, 0.0) ** ((d - 1) / 2.0)
        if d == 1:
            profile = np.ones_like(u)
        grids.append(grid)
        profiles.append(profile)
    return GridMarginals(grids, profiles)


def _truncated_normal_marginals(
    region: BoxRegion, mean: np.ndarray, sigma: float
) -> FunctionMarginals:
    """Per-axis truncated normals (a Gaussian restricted to a box factorises)."""
    rect = region.rect
    cdfs = []
    quantiles = []
    for axis in range(region.dim):
        lo = (float(rect.lo[axis]) - float(mean[axis])) / sigma
        hi = (float(rect.hi[axis]) - float(mean[axis])) / sigma
        phi_lo = float(special.ndtr(lo))
        phi_hi = float(special.ndtr(hi))
        mass = phi_hi - phi_lo
        mu = float(mean[axis])

        def cdf(x: float, mu=mu, phi_lo=phi_lo, mass=mass) -> float:
            return (float(special.ndtr((x - mu) / sigma)) - phi_lo) / mass

        def quantile(p: float, mu=mu, phi_lo=phi_lo, mass=mass) -> float:
            return mu + sigma * float(special.ndtri(phi_lo + p * mass))

        cdfs.append(cdf)
        quantiles.append(quantile)
    return FunctionMarginals(cdfs, quantiles)


def _centred_ball_gaussian_marginals(region: BallRegion, sigma: float) -> GridMarginals:
    """Marginal of an isotropic Gaussian restricted to a ball about its mean.

    Along any axis, at offset ``u`` from the centre the remaining ``d-1``
    coordinates must land in a centred ``(d-1)``-ball of radius
    ``sqrt(r^2 - u^2)``, whose Gaussian mass is
    ``gammainc((d-1)/2, (r^2 - u^2) / (2 sigma^2))``; the axis profile is
    that mass times the 1-D Gaussian density.
    """
    d = region.dim
    r = region.radius
    grids = []
    profiles = []
    for axis in range(d):
        c = float(region.center[axis])
        grid = np.linspace(c - r, c + r, _GRID_POINTS)
        u = grid - c
        gauss = np.exp(-(u**2) / (2.0 * sigma**2))
        if d == 1:
            profile = gauss
        else:
            residual = np.maximum(r**2 - u**2, 0.0) / (2.0 * sigma**2)
            profile = gauss * special.gammainc((d - 1) / 2.0, residual)
        grids.append(grid)
        profiles.append(profile)
    return GridMarginals(grids, profiles)
