"""Sharded query execution: partitioned access methods behind one executor.

The paper runs every query against one monolithic index.  A serving
system partitions: this module splits an object set across ``N`` child
:class:`~repro.exec.access.AccessMethod` instances — each with its own
index pages, :class:`~repro.storage.pager.IOCounter` and
:class:`~repro.storage.bufferpool.BufferPool` slice — and puts a
:class:`ShardRouter` in front that prunes and orders shard probes per
query.  The composite :class:`ShardedAccessMethod` itself satisfies the
``AccessMethod`` protocol, so every existing executor (`execute_query`,
`QueryExecutor`, `BatchExecutor`, the planner) runs against it unchanged.

Three design decisions make sharding *observably equivalent* to the
monolithic path:

* **One shared data file, global append order.**  Object detail records
  are appended to a single :class:`~repro.storage.pager.DataFile` in the
  original object order — exactly the packing a monolithic structure
  built over the same objects produces.  Candidate
  :class:`~repro.storage.pager.DiskAddress`\\ es are therefore identical
  to the unsharded structure's, so batch-level page dedup, the
  ``(address, rect)`` P_app memo and the refinement engine all work
  across shards, and the refinement phase performs *identical physical
  page reads* to the unsharded executor.
* **One shared estimator.**  Every shard holds the same
  :class:`~repro.uncertainty.montecarlo.AppearanceEstimator`, whose
  sample streams derive from ``(seed, object_id)`` — appearance
  probabilities are bit-identical no matter which shard an object landed
  in (``tests/test_shard.py`` asserts ``==``, not ``approx``).
* **Sound pruning only.**  The router skips a shard only when the query
  rectangle is disjoint from the shard's bounding rectangle (then every
  member object has ``P_app = 0 < p_q``); a skipped shard's objects are
  counted as pruned.  With ``prune=False`` every shard is probed and the
  refinement-phase physical reads match the monolithic path exactly.

"Identical answers" means identical answer *sets*: the same object ids
with the same P_app values.  The raw ``object_ids`` order follows shard
probe order rather than one tree's traversal order, so comparisons use
``sorted_ids()`` (only ``shards=1`` reproduces the monolithic ordering).

Probe *order* among surviving shards is priced by the existing
:class:`~repro.exec.planner.Planner` cost models
(:meth:`Planner.for_shards` registers one model per shard): cheapest
shard first.  Ordering is a scheduling heuristic — it never changes the
answer, only which shard a latency-bounded probe loop would visit first.

Partitioners assign each object to a shard:

* :func:`str_tile_partition` — sort-tile-recursive spatial tiling (sort
  by the first-axis MBR centre into slabs, each slab sorted on the next
  axis and cut into balanced tiles), the same packing idea the bulk
  loader uses; clustered queries then touch few shards.
* :func:`hash_partition` — ``oid mod N``, the locality-free baseline
  (uniform load, no routing wins beyond empty-shard pruning).

Both are deterministic, handle ``shards > len(objects)`` (empty shards
are legal and routable) and degrade to the monolithic structure at
``shards=1`` — the one-shard tree is built over the same objects in the
same order, so even its node-access counts are identical.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.pruning import subtree_may_qualify
from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.exec.access import FilterResult
from repro.exec.executor import execute_query
from repro.exec.planner import Planner
from repro.geometry.rect import Rect
from repro.storage.bufferpool import BufferPool
from repro.storage.pager import CompositeIOCounter, DataFile, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "PARTITIONERS",
    "ShardRouter",
    "ShardedAccessMethod",
    "hash_partition",
    "str_tile_partition",
]


# ----------------------------------------------------------------------
# partitioners: object list -> per-object shard assignment
# ----------------------------------------------------------------------

def hash_partition(objects: Sequence[UncertainObject], shards: int) -> list[int]:
    """Assign each object to shard ``oid mod shards`` (locality-free)."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [obj.oid % shards for obj in objects]


def str_tile_partition(objects: Sequence[UncertainObject], shards: int) -> list[int]:
    """Sort-tile-recursive spatial assignment into ``shards`` tiles.

    Objects are ordered by first-axis MBR centre and cut into
    ``ceil(sqrt(shards))`` balanced slabs; each slab is ordered on the
    second axis and cut into its quota of balanced tiles, so tiles are
    roughly square and roughly equally loaded.  Stable sorts with
    integer split points make the assignment deterministic.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    n = len(objects)
    assignment = [0] * n
    if shards == 1 or n == 0:
        return assignment
    centres = np.stack([obj.mbr.center for obj in objects])
    second_axis = 1 if centres.shape[1] > 1 else 0
    slabs = max(1, math.ceil(math.sqrt(shards)))
    base, extra = divmod(shards, slabs)
    tiles_per_slab = [base + (1 if i < extra else 0) for i in range(slabs)]

    order0 = np.argsort(centres[:, 0], kind="stable")
    shard = 0
    tiles_done = 0
    for tiles in tiles_per_slab:
        lo = n * tiles_done // shards
        hi = n * (tiles_done + tiles) // shards
        slab = order0[lo:hi]
        slab = slab[np.argsort(centres[slab, second_axis], kind="stable")]
        for j in range(tiles):
            a = len(slab) * j // tiles
            b = len(slab) * (j + 1) // tiles
            for idx in slab[a:b]:
                assignment[int(idx)] = shard
            shard += 1
        tiles_done += tiles
    return assignment


PARTITIONERS = {
    "str": str_tile_partition,
    "hash": hash_partition,
}


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------

class ShardRouter:
    """Per-query shard pruning and probe ordering.

    Args:
        bounds: per-shard bounding rectangle of member-object MBRs
            (``None`` for an empty shard).  The router keeps this *list
            itself*, not a copy — the owning
            :class:`ShardedAccessMethod` grows entries in place on
            insert, and a stale private copy would let the pruning rule
            silently drop newly inserted objects.
        planner: a :class:`Planner` with each shard registered as
            ``shard-<i>`` (see :meth:`Planner.for_shards`) — its cost
            estimates order the surviving probes cheapest-first.
        prune: when True (default), shards whose bounds are disjoint
            from the query rectangle are skipped — sound, because a
            disjoint shard's every object has ``P_app = 0``, below any
            legal threshold.  When False every shard is probed (the
            equivalence-testing mode).
        level_bounds: per-shard union of member-object *profiles* — an
            ``(m, 2, d)`` array of the union box at each catalog value
            (``None`` for an empty shard).  Aliased like ``bounds``:
            the owning method grows entries in place on insert.
        catalog: the children's shared :class:`UCatalog` (required for
            the probability bound; ``None`` disables it).
        probe_bound: when True (default), apply the paper's
            Observation 4 at shard granularity — skip a shard whose
            level-bound box at the largest catalog value ``p_j <= p_q``
            misses the query rectangle.  The shard's level box at ``j``
            contains every member's PCR/CFB box at ``j``, so a miss
            proves every member's ``P_app < p_q`` — the same argument
            the trees apply per intermediate entry, lifted one level.
            Strictly tighter than the MBR-intersection prune, never
            changing the answer (pinned by the equivalence tests).
    """

    def __init__(
        self,
        bounds: "list[Rect | None]",
        planner: Planner,
        *,
        prune: bool = True,
        level_bounds: "list[np.ndarray | None] | None" = None,
        catalog=None,
        probe_bound: bool = True,
    ):
        self.bounds = bounds
        self.planner = planner
        self.prune = bool(prune)
        self.level_bounds = level_bounds
        self.catalog = catalog
        self.probe_bound = bool(probe_bound)
        self.decisions = 0
        self.pruned_probes = 0
        self.bound_skips = 0

    @property
    def shard_count(self) -> int:
        return len(self.bounds)

    def price(self, shard: int, query: ProbRangeQuery) -> float:
        """This shard's cost-model estimate for ``query``."""
        return self.planner.price(f"shard-{shard}", query)

    def _bound_allows(self, shard: int, query: ProbRangeQuery) -> bool:
        """Observation 4 at shard granularity (True = must probe).

        The shard's per-level union box is a virtual intermediate entry
        one level above the child roots; reusing
        :func:`subtree_may_qualify` on it applies exactly the pruning
        rule the trees trust for their own entries.
        """
        if not self.probe_bound or self.catalog is None or self.level_bounds is None:
            return True
        profile = self.level_bounds[shard]
        if profile is None:
            return True
        return subtree_may_qualify(
            self.catalog,
            lambda j: Rect.from_arrays(profile[j, 0], profile[j, 1]),
            query.rect,
            query.threshold,
        )

    def route(self, query: ProbRangeQuery) -> list[int]:
        """Shards to probe for ``query``, cheapest first.

        With pruning on, only shards whose bounds intersect the query
        rectangle — and whose per-level bound admits the query threshold
        (see ``probe_bound``) — survive (empty shards never do); with
        pruning off, every shard is returned.  Ties in the cost estimate
        break on the shard index, keeping the order deterministic.
        """
        self.decisions += 1
        if self.prune:
            live = []
            for i, box in enumerate(self.bounds):
                if box is None or not box.intersects(query.rect):
                    continue
                if not self._bound_allows(i, query):
                    self.bound_skips += 1
                    continue
                live.append(i)
        else:
            live = list(range(len(self.bounds)))
        self.pruned_probes += len(self.bounds) - len(live)
        return sorted(live, key=lambda i: (self.price(i, query), i))


# ----------------------------------------------------------------------
# the composite access method
# ----------------------------------------------------------------------

def _profile_of(child, oid: int) -> np.ndarray:
    """One member's ``(m, 2, d)`` per-catalog-level box profile.

    The trees keep profiles in their ``_profiles`` sidecar (the same
    arrays their own intermediate bounds are built from); the flat scan
    derives the profile from the record's conservative outer CFB — also
    conservative, so the shard-level union stays sound.
    """
    profiles = getattr(child, "_profiles", None)
    if profiles is not None:
        return np.asarray(profiles[oid], dtype=float)
    for record in reversed(child._records):
        if record.oid == oid:
            return np.asarray(record.outer.profile(child.catalog), dtype=float)
    raise KeyError(f"object {oid} not found in shard")


def _union_profile(
    current: np.ndarray | None, profile: np.ndarray
) -> np.ndarray:
    """Grow a per-level union box stack by one member profile."""
    if current is None:
        return np.array(profile, dtype=float, copy=True)
    np.minimum(current[:, 0, :], profile[:, 0, :], out=current[:, 0, :])
    np.maximum(current[:, 1, :], profile[:, 1, :], out=current[:, 1, :])
    return current


def _make_child(
    method: str,
    dim: int,
    catalog,
    page_size: int,
    io: IOCounter,
    pool: BufferPool | None,
    estimator: AppearanceEstimator,
    **method_kwargs,
):
    # Imported here: the structure modules import the exec package, so a
    # module-level import would be circular.
    if method == "utree":
        from repro.core.utree import UTree

        return UTree(
            dim, catalog, page_size=page_size, io=io, pool=pool,
            estimator=estimator, **method_kwargs,
        )
    if method == "upcr":
        from repro.core.upcr import UPCRTree

        return UPCRTree(
            dim, catalog, page_size=page_size, io=io, pool=pool,
            estimator=estimator, **method_kwargs,
        )
    if method == "scan":
        from repro.core.scan import SequentialScan

        return SequentialScan(
            dim, catalog, page_size=page_size, io=io, pool=pool,
            estimator=estimator, **method_kwargs,
        )
    raise ValueError(f"unknown shard method {method!r}; pick utree, upcr or scan")


class ShardedAccessMethod:
    """``N`` partitioned access methods behind one ``AccessMethod`` facade.

    Usually constructed via :meth:`build`.  The facade exposes the
    protocol surface every executor consumes: ``dim``, ``io`` (a
    :class:`CompositeIOCounter` over the shard counters plus the shared
    data file's), ``data_file`` (shared by every shard), ``estimator``
    (shared — the bit-identity anchor) and ``filter_candidates``.
    """

    def __init__(
        self,
        shards: Sequence,
        *,
        data_file: DataFile,
        estimator: AppearanceEstimator,
        bounds: Sequence[Rect | None],
        sizes: Sequence[int],
        partitioner: str = "str",
        prune: bool = True,
        planner: Planner | None = None,
        level_bounds: "Sequence[np.ndarray | None] | None" = None,
        probe_bound: bool = True,
    ):
        if not shards:
            raise ValueError("at least one shard is required")
        if not (len(shards) == len(bounds) == len(sizes)):
            raise ValueError("shards, bounds and sizes must align")
        self.shards = list(shards)
        self.dim = self.shards[0].dim
        self.data_file = data_file
        self.estimator = estimator
        self.partitioner = partitioner
        self.shard_bounds = list(bounds)
        self.shard_sizes = list(sizes)
        # Per-shard union of member profiles at every catalog value
        # ((m, 2, d), None while empty) — the probe bound's input.  Like
        # shard_bounds, grown on insert and conservative under delete.
        self.level_bounds: list[np.ndarray | None] = (
            [None] * len(self.shards) if level_bounds is None else list(level_bounds)
        )
        # Per-shard update traffic since build/last rebalance — the
        # skew signal Database.rebalance() consumes.
        self.insert_traffic = [0] * len(self.shards)
        self.delete_traffic = [0] * len(self.shards)
        # The shard the most recent successful insert/delete touched —
        # the facade's per-shard dirty-epoch tracking reads this to
        # invalidate exactly one incremental-snapshot member per update.
        self.last_update_shard: int | None = None
        self.io = CompositeIOCounter(
            [shard.io for shard in self.shards] + [data_file.io]
        )
        if planner is None:
            planner = Planner.for_shards(self.shards)
        # The router aliases shard_bounds / level_bounds (never copies):
        # bounds grown by insert() are immediately visible to pruning.
        self.router = ShardRouter(
            self.shard_bounds,
            planner,
            prune=prune,
            level_bounds=self.level_bounds,
            catalog=getattr(self.shards[0], "catalog", None),
            probe_bound=probe_bound,
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Sequence[UncertainObject],
        *,
        shards: int,
        partitioner: str = "str",
        method: str = "utree",
        dim: int | None = None,
        catalog=None,
        page_size: int = 4096,
        estimator: AppearanceEstimator | None = None,
        pool_capacity: int = 0,
        pool_policy: str = "2q",
        pool_probation: int | None = None,
        prune: bool = True,
        probe_bound: bool = True,
        **method_kwargs,
    ) -> "ShardedAccessMethod":
        """Partition ``objects`` into ``shards`` child structures.

        ``partitioner`` is a :data:`PARTITIONERS` key (``"str"`` or
        ``"hash"``); ``method`` picks the child structure (``"utree"``,
        ``"upcr"`` or ``"scan"``).  ``pool_capacity > 0`` attaches a
        buffer pool budget partitioned into one slice per shard plus one
        for the shared data file (:meth:`BufferPool.partition`); 0 keeps
        the uncached paper accounting.  Detail records are appended to
        the shared data file in **global object order**, so the data-file
        packing — and every candidate's disk address — is identical to a
        monolithic structure built over the same sequence.

        Remaining ``method_kwargs`` reach every child constructor; in
        particular ``filter_kernel="on"/"off"`` selects the vectorized
        filter kernel per shard — each child owns its own columnar
        sidecar, so a routed probe costs exactly one stacked Rules-1-5
        kernel call per ``(query, shard)`` batch, serial or batched.
        """
        objects = list(objects)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if dim is None:
            if not objects:
                raise ValueError("cannot infer dimensionality from an empty object list")
            dim = objects[0].dim
        if partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; pick one of {sorted(PARTITIONERS)}"
            )
        assignment = PARTITIONERS[partitioner](objects, shards)
        estimator = estimator if estimator is not None else AppearanceEstimator()

        if pool_capacity:
            # The shared data file takes the first slice — with a budget
            # smaller than the slice count, trailing slices come out
            # capacity-0, and it is the one file every query's
            # refinement reads that must not silently lose its cache.
            pools = BufferPool.partition(
                pool_capacity, shards + 1,
                policy=pool_policy, probation_capacity=pool_probation,
            )
        else:
            pools = [None] * (shards + 1)
        data_file = DataFile(IOCounter(), page_size, pool=pools[0])

        children = []
        for i in range(shards):
            child = _make_child(
                method, dim, catalog, page_size, IOCounter(), pools[i + 1],
                estimator, **method_kwargs,
            )
            # Children index their partition but share one detail file:
            # the constructor-made private file is discarded before any
            # record lands in it.
            child.data_file = data_file
            children.append(child)

        bounds: list[Rect | None] = [None] * shards
        level_bounds: list[np.ndarray | None] = [None] * shards
        sizes = [0] * shards
        for obj, shard in zip(objects, assignment):
            children[shard].insert(obj)
            sizes[shard] += 1
            bounds[shard] = (
                obj.mbr if bounds[shard] is None else bounds[shard].union(obj.mbr)
            )
            level_bounds[shard] = _union_profile(
                level_bounds[shard], _profile_of(children[shard], obj.oid)
            )
        return cls(
            children,
            data_file=data_file,
            estimator=estimator,
            bounds=bounds,
            sizes=sizes,
            partitioner=partitioner,
            prune=prune,
            level_bounds=level_bounds,
            probe_bound=probe_bound,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self.shard_sizes)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def prune(self) -> bool:
        """Whether the router skips non-intersecting shards (settable)."""
        return self.router.prune

    @prune.setter
    def prune(self, value: bool) -> None:
        self.router.prune = bool(value)

    @property
    def probe_bound(self) -> bool:
        """Whether the router applies the Observation-4 shard bound (settable)."""
        return self.router.probe_bound

    @probe_bound.setter
    def probe_bound(self, value: bool) -> None:
        self.router.probe_bound = bool(value)

    @property
    def update_traffic(self) -> int:
        """Inserts + deletes since build / the last traffic reset."""
        return sum(self.insert_traffic) + sum(self.delete_traffic)

    def size_skew(self) -> float:
        """Largest shard size over the mean (1.0 = perfectly balanced)."""
        total = sum(self.shard_sizes)
        if not total:
            return 1.0
        mean = total / len(self.shard_sizes)
        return max(self.shard_sizes) / mean

    def reset_traffic(self) -> None:
        """Zero the per-shard insert/delete counters (after a rebalance)."""
        self.insert_traffic = [0] * len(self.shards)
        self.delete_traffic = [0] * len(self.shards)

    def refresh_router(self) -> None:
        """Rebuild the router's cost models after updates changed shard shapes."""
        self.router.planner = Planner.for_shards(self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedAccessMethod(shards={self.shard_count}, "
            f"objects={len(self)}, partitioner={self.partitioner!r}, "
            f"prune={self.prune})"
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _choose_shard(self, obj: UncertainObject) -> int:
        if self.partitioner == "hash":
            return obj.oid % self.shard_count
        # Spatial partitioners: the shard whose bounds grow least (ties
        # on area then index), the R-tree choose-subtree rule one level up.
        best, best_key = 0, None
        for i, box in enumerate(self.shard_bounds):
            if box is None:
                key = (0.0, 0.0)
            else:
                key = (box.enlargement(obj.mbr), box.area())
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def insert(self, obj: UncertainObject):
        """Insert one object into its partitioner-chosen shard.

        Router cost models are snapshots; call :meth:`refresh_router`
        after heavy update traffic to re-price probe ordering (bounds —
        the pruning input — are maintained incrementally here).
        """
        if obj.dim != self.dim:
            raise ValueError(
                f"object dimensionality {obj.dim} != sharded dimensionality {self.dim}"
            )
        shard = self._choose_shard(obj)
        result = self.shards[shard].insert(obj)
        self.shard_sizes[shard] += 1
        self.insert_traffic[shard] += 1
        self.last_update_shard = shard
        box = self.shard_bounds[shard]
        self.shard_bounds[shard] = obj.mbr if box is None else box.union(obj.mbr)
        self.level_bounds[shard] = _union_profile(
            self.level_bounds[shard], _profile_of(self.shards[shard], obj.oid)
        )
        return result

    def delete(self, oid: int):
        """Delete by id from whichever shard holds it (bounds stay conservative).

        Hash placement is a function of the oid alone, so only the
        owning shard is searched; spatial partitions probe in order.
        """
        if self.partitioner == "hash":
            shard = oid % self.shard_count
            outcome = self.shards[shard].delete(oid)
            if outcome:
                self.shard_sizes[shard] -= 1
                self.delete_traffic[shard] += 1
                self.last_update_shard = shard
                return outcome
            return None
        for i, shard in enumerate(self.shards):
            outcome = shard.delete(oid)
            if outcome:
                self.shard_sizes[i] -= 1
                self.delete_traffic[i] += 1
                self.last_update_shard = i
                return outcome
        return None

    # ------------------------------------------------------------------
    # queries (the AccessMethod protocol)
    # ------------------------------------------------------------------
    def route(self, query: ProbRangeQuery) -> list[int]:
        """The router's probe plan for one query (cheapest shard first)."""
        return self.router.route(query)

    def merge_filter(
        self, order: Sequence[int], results: Sequence[FilterResult]
    ) -> FilterResult:
        """Merge per-shard filter results (in probe order) into one.

        Objects of shards the router skipped are accounted as pruned —
        the router proved their ``P_app`` is 0 without touching a page.
        """
        merged = FilterResult()
        merged.shard_probes = len(order)
        merged.shards_pruned = self.shard_count - len(order)
        probed = set(order)
        merged.pruned = sum(
            size for i, size in enumerate(self.shard_sizes) if i not in probed
        )
        for result in results:
            merged.validated.extend(result.validated)
            merged.candidates.extend(result.candidates)
            merged.node_accesses += result.node_accesses
            merged.pruned += result.pruned
        return merged

    def filter_with(
        self,
        query: ProbRangeQuery,
        on_probe: Callable[[int, FilterResult, float], None] | None = None,
    ) -> FilterResult:
        """Route, probe and merge — the one serial filter implementation.

        ``on_probe(shard_id, result, elapsed_seconds)`` observes each
        probe as it completes; the batch executor hooks its per-shard
        accounting here so facade-path and batch-path filtering cannot
        drift apart.
        """
        order = self.route(query)
        results = []
        for shard_id in order:
            start = time.perf_counter()
            filtered = self.shards[shard_id].filter_candidates(query)
            if on_probe is not None:
                on_probe(shard_id, filtered, time.perf_counter() - start)
            results.append(filtered)
        return self.merge_filter(order, results)

    def filter_candidates(self, query: ProbRangeQuery) -> FilterResult:
        """Filter phase: probe routed shards in cost order, merge results."""
        return self.filter_with(query)

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer a prob-range query through the shared executor."""
        return execute_query(self, query)
