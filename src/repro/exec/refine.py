"""The vectorized sample-reuse refinement engine.

The refinement step of Section 5.2 dominates CPU cost (paper Figs. 9-10):
every surviving candidate needs an appearance probability, and the
Monte-Carlo estimator of Eq. 3 historically re-drew and re-weighted the
object's entire sample cloud for every ``(object, query)`` pair.  The
per-object stream is deterministic (``default_rng((seed, object_id))``),
so everything except the query mask is redundant work.

:class:`RefinementEngine` removes that redundancy in two steps:

1. **Sample reuse** — each object's points, per-point densities and
   normalising total live in a bounded
   :class:`~repro.uncertainty.montecarlo.SampleCache`: drawn once, reused
   by every query the object ever meets.
2. **Batched masking** — a whole batch of ``(object, query)`` pairs is
   answered with stacked NumPy operations: all of one object's query
   rectangles are stacked into ``(q, d)`` lo/hi arrays, a single
   broadcasted comparison produces the ``(q, n1)`` inside mask, and each
   probability is the masked weight reduction over the shared cloud.

Both paths are **bit-identical** to the scalar
:meth:`~repro.uncertainty.montecarlo.AppearanceEstimator.estimate`: the
cache replays the exact draw the estimator would make, the stacked mask
equals ``rect.contains_points`` row by row (boolean comparisons are
exact), and the final reduction is the same ``weights[mask].sum() /
total`` in the same order.  Tests assert equality with ``==``, not
``approx``.

:func:`refine_with_engine` is the refinement driver the executors plug
into: it groups candidates by data page, pulls payloads (from a
batch-preloaded mapping, a parallel page loader, or the data file
directly), consults an optional cross-query memo, and batch-estimates
whatever remains.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.core.query import ProbRangeQuery
from repro.core.stats import QueryStats
from repro.geometry.rect import Rect
from repro.storage.pager import DataFile, DiskAddress
from repro.uncertainty.montecarlo import AppearanceEstimator, SampleCache
from repro.uncertainty.objects import UncertainObject

__all__ = ["RefinementEngine", "refine_with_engine"]

# Rectangles masked per broadcast: bounds the (chunk, n1, d) comparison
# temporaries to a few MB at paper-scale sample counts.
_RECT_CHUNK = 128

# One shared engine per estimator: QueryExecutor, BatchExecutor and the
# Planner all ask for "the engine for this method", and giving each its
# own would multiply the sample-cache footprint for zero benefit (values
# are deterministic per (seed, object_id), so sharing is always safe).
# Weak keys let the engine die with its estimator.
_SHARED_ENGINES: "weakref.WeakKeyDictionary[AppearanceEstimator, RefinementEngine]" = (
    weakref.WeakKeyDictionary()
)


def _short_circuit(rect: Rect, mbr: Rect) -> float | None:
    """The paper's trivial cases: containment => 1, disjoint => 0.

    The single copy of the short-circuit order both the scalar and the
    batched paths share (and that mirrors ``AppearanceEstimator``).
    """
    if rect.contains(mbr):
        return 1.0
    if not rect.intersects(mbr):
        return 0.0
    return None


def _mask_reduce(samples, rect: Rect) -> float:
    """The estimator's exact scalar reduction over a cached cloud."""
    if samples.total <= 0.0:
        return 0.0
    inside = rect.contains_points(samples.points)
    return float(samples.weights[inside].sum()) / samples.total


class RefinementEngine:
    """Answers appearance-probability queries from shared sample clouds.

    One engine wraps one ``(n_samples, seed)`` configuration — usually an
    access method's estimator — plus a bounded :class:`SampleCache`.  It
    is safe to share across queries, executors and threads; the cache
    coordinates concurrent draws internally.

    Args:
        n_samples: Monte-Carlo points per object (ignored when ``cache``
            is given — the cache fixes the configuration).
        seed: base RNG seed (ignored when ``cache`` is given).
        cache: an existing :class:`SampleCache` to reuse.
        cache_capacity: LRU bound for a newly created cache.
    """

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        *,
        cache: SampleCache | None = None,
        cache_capacity: int = 4096,
    ):
        if cache is None:
            cache = SampleCache(n_samples, seed, capacity=cache_capacity)
        self.cache = cache
        self.estimates = 0
        self.batch_calls = 0
        self._counter_lock = threading.Lock()

    @classmethod
    def from_estimator(
        cls, estimator: AppearanceEstimator, *, cache_capacity: int = 4096
    ) -> "RefinementEngine":
        """The engine for this estimator — one shared instance per estimator.

        Repeated calls return the same engine (``cache_capacity`` applies
        only to the first construction), so every executor bound to a
        method reuses one sample cache instead of each growing its own.
        Construct :class:`RefinementEngine` directly for an isolated one.
        """
        engine = _SHARED_ENGINES.get(estimator)
        if engine is None:
            if estimator.cache is not None:
                engine = cls(cache=estimator.cache)
            else:
                engine = cls(
                    estimator.n_samples,
                    estimator.seed,
                    cache_capacity=cache_capacity,
                )
            _SHARED_ENGINES[estimator] = engine
        return engine

    @classmethod
    def for_method(cls, method, *, cache_capacity: int = 4096) -> "RefinementEngine":
        """An engine bound to an access method's estimator configuration."""
        return cls.from_estimator(method.estimator, cache_capacity=cache_capacity)

    @property
    def n_samples(self) -> int:
        return self.cache.n_samples

    @property
    def seed(self) -> int:
        return self.cache.seed

    @property
    def density_evaluations(self) -> int:
        """Sample clouds drawn (one full density evaluation per draw).

        Per-pair estimation performs one of these for every non-trivial
        ``(object, query)`` pair; the engine performs at most one per
        object (cache evictions aside) — the benchmark's headline metric.
        """
        return self.cache.misses

    def reset_counters(self) -> None:
        self.estimates = 0
        self.batch_calls = 0
        self.cache.reset_counters()

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(self, obj: UncertainObject, rect: Rect) -> float:
        """``P_app(o, q)`` for one pair — bit-identical to the estimator."""
        with self._counter_lock:
            self.estimates += 1
        trivial = _short_circuit(rect, obj.pdf.region.mbr())
        if trivial is not None:
            return trivial
        return _mask_reduce(self.cache.get(obj.pdf, obj.oid), rect)

    def estimate_batch(
        self, pairs: Sequence[tuple[UncertainObject, Rect]]
    ) -> list[float]:
        """``P_app`` for every ``(object, rect)`` pair, order preserved.

        Pairs are grouped by object so each object's cloud is pulled from
        the cache once; all of its rectangles are masked in one stacked
        comparison.  Each returned value equals the scalar
        :meth:`estimate` for that pair bitwise.
        """
        with self._counter_lock:
            self.batch_calls += 1
            self.estimates += len(pairs)
        results = [0.0] * len(pairs)
        # Grouped by object *identity*, not oid: ids are reusable
        # (delete + re-insert), and a batch may legitimately hold two
        # generations of the same oid — each must mask its own cloud.
        grouped: dict[int, tuple[UncertainObject, list[tuple[int, Rect]]]] = {}
        for idx, (obj, rect) in enumerate(pairs):
            trivial = _short_circuit(rect, obj.pdf.region.mbr())
            if trivial is not None:
                results[idx] = trivial
            else:
                grouped.setdefault(id(obj), (obj, []))[1].append((idx, rect))

        for obj, group in grouped.values():
            samples = self.cache.get(obj.pdf, obj.oid)
            if samples.total <= 0.0:
                continue  # every pair stays 0.0, as in the scalar path
            weights = samples.weights
            if len(group) == 1:
                # Single rectangle (the refine-one-query shape): the
                # scalar reduction needs no stacked staging.
                idx, rect = group[0]
                results[idx] = _mask_reduce(samples, rect)
                continue
            # Per-axis contiguous columns, staged once at draw time: the
            # stacked comparisons stream each coordinate per chunk.
            columns = samples.columns
            for chunk_start in range(0, len(group), _RECT_CHUNK):
                chunk = group[chunk_start : chunk_start + _RECT_CHUNK]
                los = np.stack([rect.lo for _, rect in chunk])
                his = np.stack([rect.hi for _, rect in chunk])
                # (q, n1) mask accumulated axis by axis; row j is exactly
                # rect_j.contains_points (boolean comparisons are exact,
                # so bit-identity survives the vectorization).
                inside = (columns[0] >= los[:, 0, None]) & (
                    columns[0] <= his[:, 0, None]
                )
                for axis in range(1, len(columns)):
                    inside &= (columns[axis] >= los[:, axis, None]) & (
                        columns[axis] <= his[:, axis, None]
                    )
                for row, (idx, _) in enumerate(chunk):
                    results[idx] = (
                        float(weights[inside[row]].sum()) / samples.total
                    )
        return results

    def __repr__(self) -> str:
        return (
            f"RefinementEngine(n_samples={self.n_samples}, seed={self.seed}, "
            f"estimates={self.estimates}, cache={self.cache!r})"
        )


def refine_with_engine(
    engine: RefinementEngine,
    candidates: Sequence[tuple[int, DiskAddress]],
    query: ProbRangeQuery,
    data_file: DataFile,
    stats: QueryStats,
    results: list[int],
    *,
    pages: Mapping[int, list] | None = None,
    page_loader: Callable[[int], list] | None = None,
    memo: dict[tuple[DiskAddress, Rect], float] | None = None,
    attribute_cache: bool = True,
) -> int:
    """The engine-backed refinement step shared by every executor.

    Candidates are grouped by data page; payloads come from ``pages`` (a
    batch-preloaded mapping), ``page_loader`` (e.g. a future-resolving
    fetch in the parallel executor) or ``data_file.read_page`` directly.
    Logical accounting is unchanged from the historical per-pair path:
    each page holding a candidate charges one ``data_page_reads``, each
    estimated pair one ``prob_computations`` (memo hits count
    ``memoized_probs`` instead), and qualifying oids append to
    ``results`` in page order.  ``stats`` additionally receives
    sample-cache hit/miss deltas and fetch/refine wall-clock.

    The memo is keyed on ``(DiskAddress, rect)``: the data file is
    append-only, so an address permanently identifies one object version
    — a reused *oid* (delete + re-insert) lands at a fresh address and
    can never be served a stale probability.  Address keys are also known
    before any I/O, so a page whose candidates are all memoized is not
    fetched at all (its logical charge stands; the physical read is
    skipped).  Returns the number of pages actually fetched here.
    ``page_loader`` time is *not* charged to ``fetch_seconds``: a loader
    typically resolves a fetch shared by many queries (a future), so
    per-query charging would double-count one physical fetch — the
    parallel executor reports the authoritative fetch clock at batch
    level instead.
    """
    by_page: dict[int, list[tuple[int, DiskAddress]]] = {}
    for oid, address in candidates:
        by_page.setdefault(address.page_id, []).append((oid, address))

    refine_start = time.perf_counter()
    rect = query.rect
    threshold = query.threshold
    fetch_seconds = 0.0
    fetched_pages = 0
    pending_pairs: list[tuple[int, UncertainObject]] = []  # (result slot, object)
    pending_keys: list[tuple[DiskAddress, Rect]] = []
    verdicts: list[float] = []
    ordered_oids: list[int] = []
    for page_id, group in sorted(by_page.items()):
        stats.data_page_reads += 1  # logical charge, fetched or not
        if memo is not None:
            unmemoized = [
                (oid, addr) for oid, addr in group if (addr, rect) not in memo
            ]
        else:
            unmemoized = group
        payloads = None
        if unmemoized:
            if pages is not None and page_id in pages:
                payloads = pages[page_id]
            elif page_loader is not None:
                payloads = page_loader(page_id)
                fetched_pages += 1
            else:
                fetch_start = time.perf_counter()
                payloads = data_file.read_page(page_id)
                fetch_seconds += time.perf_counter() - fetch_start
                fetched_pages += 1
        for oid, address in group:
            slot = len(ordered_oids)
            ordered_oids.append(oid)
            if memo is not None and (address, rect) in memo:
                verdicts.append(memo[(address, rect)])
                stats.memoized_probs += 1
                continue
            obj = payloads[address.slot]
            if not isinstance(obj, UncertainObject):  # pragma: no cover - safety
                raise TypeError(
                    f"data page {page_id} slot {address.slot} is not an object"
                )
            verdicts.append(0.0)  # placeholder, filled from the batch below
            pending_pairs.append((slot, obj))
            pending_keys.append((address, rect))

    if pending_pairs:
        hits_before, misses_before = engine.cache.counters()
        computed = engine.estimate_batch(
            [(obj, rect) for _, obj in pending_pairs]
        )
        stats.prob_computations += len(pending_pairs)
        if attribute_cache:
            # Counter-window deltas are only meaningful when this query
            # is the sole cache user in the window — the parallel
            # executor disables this and reports batch-level deltas.
            hits_after, misses_after = engine.cache.counters()
            stats.sample_cache_hits += hits_after - hits_before
            stats.sample_cache_misses += misses_after - misses_before
        for (slot, _), key, value in zip(pending_pairs, pending_keys, computed):
            verdicts[slot] = value
            if memo is not None:
                memo[key] = value

    for oid, value in zip(ordered_oids, verdicts):
        if value >= threshold:
            results.append(oid)
    stats.fetch_seconds += fetch_seconds
    stats.refine_seconds += time.perf_counter() - refine_start - fetch_seconds
    return fetched_pages
