"""Cost-model-driven access-method selection.

Section 7 of the paper proposes analytical cost models "useful in query
optimization, where the cost of a query needs to be accurately predicted
in order to formulate a good execution plan".  This module is that
optimiser in miniature: a :class:`Planner` holds several access methods,
prices an incoming query under each one's cost model, and executes it
against the cheapest.

Tree-shaped methods are priced with
:class:`repro.core.costmodel.UTreeCostModel` (the Theodoridis–Sellis
adaptation, which only needs a catalog and the engine's entry geometry, so
it covers U-PCR as well); the sequential scan is priced by
:class:`ScanCostModel` — its filter cost is a constant ``scan_pages`` and
its refinement cost uses the same intersection-probability sum over the
flat file's summaries.  A scan never loses badly on tiny trees and wins
when a huge query region would visit every node anyway, which is exactly
the trade a planner should arbitrate.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import WorkloadStats
from repro.exec.access import AccessMethod
from repro.exec.executor import execute_query

__all__ = ["Planner", "PlannedQuery", "PlanReport", "ScanCostModel"]


class ScanCostModel:
    """Analytical cost of answering a query by sequential scan.

    Filter cost is the flat file's page count (every scan reads all
    summaries).  Refinement cost reuses the Theodoridis–Sellis idea: each
    object contributes its MBR-vs-query intersection probability to the
    expected candidate count, scaled by how many detail records share a
    data page.
    """

    def __init__(self, scan):
        self.scan_pages = scan.scan_pages
        records = list(scan.records())
        if records:
            los = np.stack([r.mbr.lo for r in records])
            his = np.stack([r.mbr.hi for r in records])
            self._domain_lo = los.min(axis=0)
            self._domain_hi = his.max(axis=0)
            self._extents = his - los
        else:
            dim = scan.dim
            self._domain_lo = np.zeros(dim)
            self._domain_hi = np.ones(dim)
            self._extents = np.zeros((0, dim))
        self._domain_extent = np.maximum(self._domain_hi - self._domain_lo, 1e-12)

    def expected_candidates(self, query: ProbRangeQuery) -> float:
        """Expected number of objects whose MBR meets the query region."""
        if self._extents.shape[0] == 0:
            return 0.0
        norm = self._extents / self._domain_extent
        q_extent = query.rect.extent / self._domain_extent
        probs = np.prod(np.minimum(norm + q_extent, 1.0), axis=1)
        return float(probs.sum())

    def total_io(self, query: ProbRangeQuery, data_records_per_page: float = 1.0) -> float:
        if data_records_per_page <= 0:
            raise ValueError("data_records_per_page must be positive")
        return self.scan_pages + self.expected_candidates(query) / data_records_per_page


@dataclass(frozen=True)
class PlannedQuery:
    """One planning decision: the chosen method and every method's price."""

    query: ProbRangeQuery
    choice: str
    estimates: dict[str, float]


@dataclass
class PlanReport:
    """Outcome of a planned workload run."""

    answers: list[QueryAnswer] = field(default_factory=list)
    decisions: list[PlannedQuery] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    wall_seconds: float = 0.0

    def choice_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.choice] = counts.get(decision.choice, 0) + 1
        return counts


class Planner:
    """Pick the cheapest access method per query, then execute it.

    Methods are registered with a cost function mapping a query to a
    predicted total I/O (any consistent unit works — the planner only
    compares).  :meth:`for_structures` wires the standard trio.
    """

    def __init__(self) -> None:
        self._methods: dict[str, AccessMethod] = {}
        self._cost_fns: dict[str, object] = {}

    def register(self, name: str, method: AccessMethod, cost_fn) -> None:
        """Add a method under ``name`` with cost model ``cost_fn(query)``."""
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = method
        self._cost_fns[name] = cost_fn

    @property
    def method_names(self) -> list[str]:
        return list(self._methods)

    def __getitem__(self, name: str) -> AccessMethod:
        return self._methods[name]

    @classmethod
    def for_structures(
        cls,
        utree=None,
        upcr=None,
        scan=None,
        *,
        data_records_per_page: float = 1.0,
    ) -> "Planner":
        """A planner over any subset of the paper's three structures.

        ``data_records_per_page`` converts expected refinement candidates
        into data-page reads in every model (the data files pack many
        small detail records per 4 KB page).
        """
        # Imported here: costmodel imports the U-tree module, which itself
        # uses the exec layer — a module-level import would be circular.
        from repro.core.costmodel import UTreeCostModel

        planner = cls()
        if utree is not None:
            model = UTreeCostModel(utree)
            planner.register(
                "utree",
                utree,
                lambda q, _m=model: _m.estimate(q).total_io(data_records_per_page),
            )
        if upcr is not None:
            model = UTreeCostModel(upcr)
            planner.register(
                "upcr",
                upcr,
                lambda q, _m=model: _m.estimate(q).total_io(data_records_per_page),
            )
        if scan is not None:
            model = ScanCostModel(scan)
            planner.register(
                "scan",
                scan,
                lambda q, _m=model: _m.total_io(q, data_records_per_page),
            )
        if not planner._methods:
            raise ValueError("at least one structure is required")
        return planner

    # ------------------------------------------------------------------
    def plan(self, query: ProbRangeQuery) -> PlannedQuery:
        """Price the query under every model; pick the cheapest method."""
        if not self._methods:
            raise RuntimeError("no access methods registered")
        estimates = {
            name: float(self._cost_fns[name](query)) for name in self._methods
        }
        choice = min(estimates, key=lambda name: estimates[name])
        return PlannedQuery(query=query, choice=choice, estimates=estimates)

    def execute(self, query: ProbRangeQuery) -> tuple[QueryAnswer, PlannedQuery]:
        """Plan one query and run it on the chosen method."""
        decision = self.plan(query)
        answer = execute_query(self._methods[decision.choice], query)
        return answer, decision

    def run(self, queries: Sequence[ProbRangeQuery]) -> PlanReport:
        """Plan and execute a whole workload."""
        start = time.perf_counter()
        report = PlanReport()
        for query in queries:
            answer, decision = self.execute(query)
            report.answers.append(answer)
            report.decisions.append(decision)
            report.workload.add(answer.stats)
        report.wall_seconds = time.perf_counter() - start
        return report
