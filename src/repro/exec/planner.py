"""Cost-model-driven access-method selection.

Section 7 of the paper proposes analytical cost models "useful in query
optimization, where the cost of a query needs to be accurately predicted
in order to formulate a good execution plan".  This module is that
optimiser in miniature: a :class:`Planner` holds several access methods,
prices an incoming query under each one's cost model, and executes it
against the cheapest.

Tree-shaped methods are priced with
:class:`repro.core.costmodel.UTreeCostModel` (the Theodoridis–Sellis
adaptation, which only needs a catalog and the engine's entry geometry, so
it covers U-PCR as well); the sequential scan is priced by
:class:`ScanCostModel` — its filter cost is a constant ``scan_pages`` and
its refinement cost uses the same intersection-probability sum over the
flat file's summaries.  A scan never loses badly on tiny trees and wins
when a huge query region would visit every node anyway, which is exactly
the trade a planner should arbitrate.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import WorkloadStats
from repro.exec.access import AccessMethod
from repro.exec.executor import execute_query
from repro.storage import layout

__all__ = [
    "Planner",
    "PlannedQuery",
    "PlanReport",
    "ScanCostModel",
    "derive_data_records_per_page",
]


class ScanCostModel:
    """Analytical cost of answering a query by sequential scan.

    Filter cost is the flat file's page count (every scan reads all
    summaries).  Refinement cost reuses the Theodoridis–Sellis idea: each
    object contributes its MBR-vs-query intersection probability to the
    expected candidate count, scaled by how many detail records share a
    data page.
    """

    def __init__(self, scan):
        self.scan_pages = scan.scan_pages
        records = list(scan.records())
        if records:
            los = np.stack([r.mbr.lo for r in records])
            his = np.stack([r.mbr.hi for r in records])
            self._domain_lo = los.min(axis=0)
            self._domain_hi = his.max(axis=0)
            self._extents = his - los
        else:
            dim = scan.dim
            self._domain_lo = np.zeros(dim)
            self._domain_hi = np.ones(dim)
            self._extents = np.zeros((0, dim))
        self._domain_extent = np.maximum(self._domain_hi - self._domain_lo, 1e-12)

    def expected_candidates(self, query: ProbRangeQuery) -> float:
        """Expected number of objects whose MBR meets the query region."""
        if self._extents.shape[0] == 0:
            return 0.0
        norm = self._extents / self._domain_extent
        q_extent = query.rect.extent / self._domain_extent
        probs = np.prod(np.minimum(norm + q_extent, 1.0), axis=1)
        return float(probs.sum())

    def total_io(self, query: ProbRangeQuery, data_records_per_page: float = 1.0) -> float:
        if data_records_per_page <= 0:
            raise ValueError("data_records_per_page must be positive")
        return self.scan_pages + self.expected_candidates(query) / data_records_per_page


def derive_data_records_per_page(method) -> float:
    """The packing density a cost model should assume for ``method``.

    Prefers the structure's *actual* data-file occupancy (records per
    first-fit page); an empty file falls back to the byte-layout bound
    from :func:`repro.storage.layout.data_records_per_page`.
    """
    data_file = getattr(method, "data_file", None)
    if data_file is not None and data_file.page_count > 0:
        observed = data_file.records_per_page
        if observed > 0:
            return float(observed)
    page_size = data_file.page_size if data_file is not None else 4096
    return float(layout.data_records_per_page(method.dim, page_size))


@dataclass(frozen=True)
class PlannedQuery:
    """One planning decision: the chosen method and every method's price.

    ``estimates`` are the *bias-corrected* prices the choice was made
    from; ``raw_estimates`` keep the uncorrected model outputs so
    feedback (:meth:`Planner.observe_choice`) can compare an execution
    against the raw model without compounding its own correction.
    """

    query: ProbRangeQuery
    choice: str
    estimates: dict[str, float]
    raw_estimates: dict[str, float] = field(default_factory=dict)


@dataclass
class PlanReport:
    """Outcome of a planned workload run."""

    answers: list[QueryAnswer] = field(default_factory=list)
    decisions: list[PlannedQuery] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    wall_seconds: float = 0.0

    def choice_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.choice] = counts.get(decision.choice, 0) + 1
        return counts


class Planner:
    """Pick the cheapest access method per query, then execute it.

    Methods are registered with a cost function mapping a query to a
    predicted total I/O (any consistent unit works — the planner only
    compares).  :meth:`for_structures` wires the standard trio.

    The planner carries one calibrated constant, ``data_records_per_page``
    (how many refinement candidates share a data page), which every
    :meth:`for_structures` cost model reads live — so
    :meth:`observe`-driven refinement immediately shifts future plans.
    ``auto_observe=False`` pins the constant (no drift from :meth:`run`);
    explicit :meth:`observe` calls always apply.
    """

    def __init__(
        self,
        data_records_per_page: float = 1.0,
        *,
        auto_observe: bool = True,
    ) -> None:
        if data_records_per_page <= 0:
            raise ValueError("data_records_per_page must be positive")
        self._methods: dict[str, AccessMethod] = {}
        self._cost_fns: dict[str, object] = {}
        self.data_records_per_page = float(data_records_per_page)
        self.auto_observe = bool(auto_observe)
        self.observations = 0
        # Per-method multiplicative correction: EWMA of observed/predicted
        # total-I/O ratios.  Analytical models are systematically off for
        # some shapes (the sharded router prices probes but not the probe
        # overhead that made BENCH_shard's sharded U-tree do 183 node
        # accesses against the monolithic 143), and the ratio feedback is
        # what lets the shards-vs-monolithic choice self-correct.
        self._bias: dict[str, float] = {}

    def register(self, name: str, method: AccessMethod, cost_fn) -> None:
        """Add a method under ``name`` with cost model ``cost_fn(query)``."""
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = method
        self._cost_fns[name] = cost_fn

    @property
    def method_names(self) -> list[str]:
        return list(self._methods)

    def __getitem__(self, name: str) -> AccessMethod:
        return self._methods[name]

    @classmethod
    def for_structures(
        cls,
        utree=None,
        upcr=None,
        scan=None,
        *,
        data_records_per_page: float | None = None,
        auto_observe: bool = True,
    ) -> "Planner":
        """A planner over any subset of the paper's three structures.

        ``data_records_per_page`` converts expected refinement candidates
        into data-page reads in every model (the data files pack many
        small detail records per 4 KB page).  By default it is *derived*:
        from the first structure's actual data-file occupancy when it
        holds pages, else from the detail-record byte layout
        (:func:`repro.storage.layout.data_records_per_page`).  Either way
        :meth:`observe` keeps refining it from executed workloads unless
        ``auto_observe=False`` pins it (a controlled experiment that
        passes an explicit constant usually wants that).
        """
        # Imported here: costmodel imports the U-tree module, which itself
        # uses the exec layer — a module-level import would be circular.
        from repro.core.costmodel import UTreeCostModel

        methods = [m for m in (utree, upcr, scan) if m is not None]
        if not methods:
            raise ValueError("at least one structure is required")
        if data_records_per_page is None:
            data_records_per_page = derive_data_records_per_page(methods[0])
        planner = cls(data_records_per_page, auto_observe=auto_observe)
        if utree is not None:
            model = UTreeCostModel(utree)
            planner.register(
                "utree",
                utree,
                lambda q, _m=model, _p=planner: _m.estimate(q).total_io(
                    _p.data_records_per_page
                ),
            )
        if upcr is not None:
            model = UTreeCostModel(upcr)
            planner.register(
                "upcr",
                upcr,
                lambda q, _m=model, _p=planner: _m.estimate(q).total_io(
                    _p.data_records_per_page
                ),
            )
        if scan is not None:
            model = ScanCostModel(scan)
            planner.register(
                "scan",
                scan,
                lambda q, _m=model, _p=planner: _m.total_io(
                    q, _p.data_records_per_page
                ),
            )
        return planner

    @classmethod
    def for_shards(
        cls,
        shards: Sequence[AccessMethod],
        *,
        data_records_per_page: float | None = None,
        auto_observe: bool = False,
    ) -> "Planner":
        """A planner pricing each shard of a partitioned method.

        Every shard registers as ``shard-<i>`` under the cost model its
        structure warrants: :class:`ScanCostModel` for flat scans (any
        method exposing ``scan_pages``), the Theodoridis–Sellis
        :class:`~repro.core.costmodel.UTreeCostModel` for tree shards.
        Empty shards price as ``inf`` — they sort last and the router's
        bounds check prunes them outright.  The
        :class:`~repro.exec.shard.ShardRouter` uses these estimates to
        order probes; ``auto_observe`` defaults to False because the
        router prices without executing through :meth:`run`.
        """
        # Imported here for the same circularity reason as for_structures.
        from repro.core.costmodel import UTreeCostModel

        shards = list(shards)
        if not shards:
            raise ValueError("at least one shard is required")
        if data_records_per_page is None:
            data_records_per_page = derive_data_records_per_page(shards[0])
        planner = cls(data_records_per_page, auto_observe=auto_observe)
        for i, shard in enumerate(shards):
            if len(shard) == 0:
                planner.register(f"shard-{i}", shard, lambda q: float("inf"))
            elif hasattr(shard, "scan_pages"):
                model = ScanCostModel(shard)
                planner.register(
                    f"shard-{i}",
                    shard,
                    lambda q, _m=model, _p=planner: _m.total_io(
                        q, _p.data_records_per_page
                    ),
                )
            else:
                model = UTreeCostModel(shard)
                planner.register(
                    f"shard-{i}",
                    shard,
                    lambda q, _m=model, _p=planner: _m.estimate(q).total_io(
                        _p.data_records_per_page
                    ),
                )
        return planner

    def price(self, name: str, query: ProbRangeQuery) -> float:
        """One registered method's *raw* cost estimate for ``query``."""
        if name not in self._cost_fns:
            raise KeyError(f"method {name!r} is not registered")
        return float(self._cost_fns[name](query))

    def bias(self, name: str) -> float:
        """The method's learnt observed/predicted ratio (1.0 untrained)."""
        return self._bias.get(name, 1.0)

    def observe_choice(
        self,
        name: str,
        predicted_raw: float,
        observed_io: float,
        *,
        smoothing: float = 0.5,
    ) -> float:
        """Blend one executed query's observed/raw-predicted I/O ratio.

        ``predicted_raw`` must be the **raw** model output
        (:attr:`PlannedQuery.raw_estimates`), not the bias-corrected
        price — feeding the corrected price back would compound the
        correction every observation.  The ratio is clamped to
        ``[1/16, 16]`` so one degenerate query (an empty answer priced
        near zero) cannot blow the EWMA up.  Returns the updated bias.
        """
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if name not in self._cost_fns:
            raise KeyError(f"method {name!r} is not registered")
        if (
            not np.isfinite(predicted_raw)
            or predicted_raw <= 0
            or observed_io < 0
        ):
            return self.bias(name)
        ratio = min(max(observed_io / predicted_raw, 1.0 / 16.0), 16.0)
        self._bias[name] = (1.0 - smoothing) * self.bias(name) + smoothing * ratio
        return self._bias[name]

    def observe(self, stats: WorkloadStats, *, smoothing: float = 0.5) -> float:
        """Refine the calibrated constants from an executed workload.

        The observed packing density is candidates per touched data page
        (``prob_computations + memoized_probs`` over ``data_page_reads``);
        it is blended into ``data_records_per_page`` with an exponential
        moving average so one unusual workload cannot whipsaw the plans.
        Returns the updated constant.
        """
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        pages = sum(q.data_page_reads for q in stats.queries)
        candidates = sum(
            q.prob_computations + q.memoized_probs for q in stats.queries
        )
        if pages > 0 and candidates > 0:
            observed = candidates / pages
            self.data_records_per_page = (
                (1.0 - smoothing) * self.data_records_per_page
                + smoothing * observed
            )
            self.observations += 1
        return self.data_records_per_page

    # ------------------------------------------------------------------
    # learnt-state persistence (what Database.save() archives)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The planner's learnt calibration as a JSON-safe dict."""
        return {
            "data_records_per_page": self.data_records_per_page,
            "observations": self.observations,
            "bias": dict(self._bias),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Bias entries for methods not registered here are kept anyway —
        they are harmless (``bias()`` only consults registered names) and
        survive a round trip through a planner with a different method
        subset.
        """
        constant = float(state.get("data_records_per_page", self.data_records_per_page))
        if constant > 0:
            self.data_records_per_page = constant
        self.observations = int(state.get("observations", self.observations))
        bias = state.get("bias", {})
        self._bias.update(
            {str(name): float(value) for name, value in bias.items()}
        )

    def reset_feedback(self) -> None:
        """Forget all learnt bias and observation history.

        ``data_records_per_page`` keeps its current value — it is a
        physical packing constant, not workload feedback; callers that
        want the derived default back should rebuild the planner.
        """
        self._bias.clear()
        self.observations = 0

    # ------------------------------------------------------------------
    def plan(self, query: ProbRangeQuery) -> PlannedQuery:
        """Price the query under every model; pick the cheapest method.

        Prices are the raw model outputs scaled by each method's learnt
        bias (:meth:`observe_choice`); with no feedback yet every bias is
        1.0 and the plan is the raw comparison.
        """
        if not self._methods:
            raise RuntimeError("no access methods registered")
        raw = {
            name: float(self._cost_fns[name](query)) for name in self._methods
        }
        estimates = {name: cost * self.bias(name) for name, cost in raw.items()}
        choice = min(estimates, key=lambda name: estimates[name])
        return PlannedQuery(
            query=query, choice=choice, estimates=estimates, raw_estimates=raw
        )

    def execute(self, query: ProbRangeQuery) -> tuple[QueryAnswer, PlannedQuery]:
        """Plan one query and run it on the chosen method."""
        decision = self.plan(query)
        answer = execute_query(self._methods[decision.choice], query)
        return answer, decision

    def run(self, queries: Sequence[ProbRangeQuery]) -> PlanReport:
        """Plan and execute a whole workload.

        Unless ``auto_observe`` is off, the observed refinement behaviour
        feeds :meth:`observe` afterwards, so the next workload plans with
        calibrated constants (decisions within this run are unaffected).
        """
        start = time.perf_counter()
        report = PlanReport()
        for query in queries:
            answer, decision = self.execute(query)
            report.answers.append(answer)
            report.decisions.append(decision)
            report.workload.add(answer.stats)
        report.wall_seconds = time.perf_counter() - start
        if self.auto_observe:
            self.observe(report.workload)
            for answer, decision in zip(report.answers, report.decisions):
                self.observe_choice(
                    decision.choice,
                    decision.raw_estimates.get(decision.choice, 0.0),
                    answer.stats.node_accesses + answer.stats.data_page_reads,
                )
        return report
