"""A workload-aware auto-tuner: engine knobs chosen from observed batches.

PR 6's planner learns per-method *cost bias* (``observe_choice``) — a
correction on predicted I/O.  This module closes the remaining loop: the
knobs the planner cannot price (which access method variant, filter
kernel on or off, thread or process backend, how many workers) are
learned from executed throughput instead.

The tuner is a deterministic coordinate-descent bandit:

* Each **knob** has a small list of candidate values; the current best
  per knob is the **incumbent**.
* :meth:`propose` returns the incumbent assignment, except on
  *exploration* decisions, where exactly one knob is flipped to a
  not-yet-converged alternative (round-robin over knobs; untried values
  first).  Exploring one coordinate at a time keeps credit assignment
  unambiguous without a combinatorial arm space, and using a decision
  counter instead of a random source keeps runs reproducible.
* :meth:`observe` feeds back the batch's queries-per-second.  An
  exploration batch credits *only* the flipped knob — the context knobs
  held at their incumbents must not absorb a sample produced by someone
  else's perturbation (a slow kernel-off probe would otherwise drag the
  incumbent method's estimate down with it).  A pure exploitation batch
  is a clean joint sample and credits every knob.  Each credited
  ``(knob, value)`` pair folds the sample into an EWMA — except the
  value's *second* sample, which overwrites the first: a value's debut
  runs on cold executors and memo caches, and letting that anchor the
  EWMA would systematically punish whichever value was measured first.
  The incumbent of each knob moves to the highest-reward *tried* value,
  with hysteresis: a challenger must beat the incumbent's estimate by
  ``switch_margin`` (default 10%) — noise-level differences between
  genuinely-equal values never flip an incumbent, so convergence holds.
* Once every value has at least ``min_trials`` samples and the
  incumbents have been stable for ``stable_after`` consecutive
  observations, the tuner declares :attr:`converged` and stops
  exploring — steady state runs the best-known static configuration,
  which is how the benchmark's "within 10% of best static" contract is
  met (exploration noise ends).

State round-trips through :meth:`state_dict`/:meth:`load_state` so a
:class:`~repro.api.Database` can persist tuned knobs across
``save()``/``open()`` instead of silently re-learning from scratch.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

__all__ = ["AutoTuner", "TunerDecision"]


@dataclass
class TunerDecision:
    """One proposed knob assignment (what :meth:`AutoTuner.observe` credits).

    ``explored`` names the knob deliberately flipped off its incumbent
    for this batch (``None`` = pure exploitation).
    """

    assignment: dict[str, object] = field(default_factory=dict)
    explored: str | None = None
    index: int = 0


class AutoTuner:
    """Choose engine knobs online from executed batch throughput.

    Args:
        knobs: mapping of knob name to its candidate values (order
            matters: the first value is the starting incumbent unless
            ``baseline`` overrides it).  Knobs with fewer than two
            values are dropped — there is nothing to tune.
        baseline: starting incumbent per knob (e.g. the user's
            ``ExecConfig`` choices), so the tuner explores *away* from
            the configured behaviour rather than from an arbitrary
            first value.
        smoothing: EWMA weight of a new throughput sample.
        explore_every: after the initial try-everything sweep, explore
            on every Nth decision (the rest exploit the incumbents).
        min_trials: samples every value needs before convergence.
        stable_after: consecutive observations without an incumbent
            change required to declare convergence.
        switch_margin: relative throughput improvement a challenger
            needs over the incumbent to dethrone it.  Wall-clock qps
            feedback is noisy at the ~10% level; without hysteresis two
            genuinely-equal values (e.g. parallelism 1 vs 2 on a batch
            small enough for the serial fallback) flip-flop forever and
            the tuner never stays converged.  Real knob gaps in this
            engine (filter kernel, method variant) are well above it.
        clock: the monotonic time source qps observations are measured
            with (``Database.run`` brackets each tuned batch with it).
            Injectable so tests replace wall-clock noise with a
            deterministic fake and convergence becomes exact instead of
            "usually, given enough batches".
    """

    def __init__(
        self,
        knobs: dict[str, Sequence],
        *,
        baseline: dict[str, object] | None = None,
        smoothing: float = 0.4,
        explore_every: int = 2,
        min_trials: int = 1,
        stable_after: int = 4,
        switch_margin: float = 0.1,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if explore_every < 1:
            raise ValueError("explore_every must be at least 1")
        if switch_margin < 0.0:
            raise ValueError("switch_margin must be non-negative")
        baseline = baseline or {}
        self.knobs: dict[str, list] = {}
        for name, values in knobs.items():
            unique = []
            for value in values:
                if value not in unique:
                    unique.append(value)
            if len(unique) >= 2:
                self.knobs[name] = unique
        self.smoothing = float(smoothing)
        self.explore_every = int(explore_every)
        self.min_trials = int(min_trials)
        self.stable_after = int(stable_after)
        self.switch_margin = float(switch_margin)
        self.incumbent: dict[str, object] = {
            name: baseline.get(name, values[0])
            for name, values in self.knobs.items()
        }
        # (knob, value) -> [ewma_qps, trials]
        self._stats: dict[str, list[list]] = {
            name: [[0.0, 0] for _ in values] for name, values in self.knobs.items()
        }
        self.clock = clock
        self.decisions = 0
        self.observations = 0
        self._stable = 0

    # ------------------------------------------------------------------
    # the bandit loop
    # ------------------------------------------------------------------
    def _value_stats(self, knob: str, value) -> list:
        return self._stats[knob][self.knobs[knob].index(value)]

    def _untried(self) -> "tuple[str, object] | None":
        """The first (knob, value) pair with no samples yet, if any."""
        for knob, values in self.knobs.items():
            for value, (ewma, trials) in zip(values, self._stats[knob]):
                if trials == 0:
                    return knob, value
        return None

    @property
    def converged(self) -> bool:
        """Every value sampled enough and incumbents stable — stop exploring."""
        if self._stable < self.stable_after:
            return False
        return all(
            trials >= self.min_trials
            for stats in self._stats.values()
            for _, trials in stats
        )

    def propose(self) -> TunerDecision:
        """The knob assignment for the next batch.

        Deterministic: untried values are swept first (one per batch,
        in declaration order), then every ``explore_every``-th decision
        flips the least-sampled alternative of one knob (round-robin).
        After convergence every decision is pure exploitation.
        """
        self.decisions += 1
        assignment = dict(self.incumbent)
        explored: str | None = None
        if self.knobs and not self.converged:
            untried = self._untried()
            if untried is not None:
                knob, value = untried
                assignment[knob] = value
                explored = knob
            elif self.decisions % self.explore_every == 0:
                names = list(self.knobs)
                knob = names[(self.decisions // self.explore_every) % len(names)]
                alternatives = [
                    v for v in self.knobs[knob] if v != self.incumbent[knob]
                ]
                if alternatives:
                    value = min(
                        alternatives,
                        key=lambda v: self._value_stats(knob, v)[1],
                    )
                    assignment[knob] = value
                    explored = knob
        return TunerDecision(
            assignment=assignment, explored=explored, index=self.decisions
        )

    def observe(self, decision: TunerDecision, qps: float) -> None:
        """Credit one executed batch's throughput to its assignment.

        Exploration credits only the explored knob (its sample was taken
        in incumbent context, so it compares apples-to-apples against
        the incumbent's own exploitation samples); exploitation credits
        every knob.

        Convergence is sticky: once declared, further samples refresh
        the incumbents' estimates (so reports stay current) but never
        flip an incumbent or reset stability.  Post-convergence batches
        all run the incumbents, so only their EWMAs keep moving — while
        the alternatives' estimates stay frozen at whatever machine
        speed they were measured under; comparing the two again would
        read global throughput drift as a knob preference.
        """
        if not math.isfinite(qps) or qps <= 0.0:
            return
        self.observations += 1
        for knob, value in decision.assignment.items():
            if decision.explored is not None and knob != decision.explored:
                continue
            if knob not in self.knobs or value not in self.knobs[knob]:
                continue
            stats = self._value_stats(knob, value)
            if stats[1] <= 1:
                # The first sample per value is warm-up (cold executors,
                # cold memo caches systematically under-measure whichever
                # value happens to run first); seed with it so the value
                # counts as tried, but let the second sample *overwrite*
                # rather than fold, discarding the cold anchor.
                stats[0] = float(qps)
            else:
                stats[0] = (
                    (1.0 - self.smoothing) * stats[0] + self.smoothing * float(qps)
                )
            stats[1] += 1
        if self.converged:
            return
        changed = False
        for knob, values in self.knobs.items():
            tried = [
                (ewma, -i, values[i])
                for i, (ewma, trials) in enumerate(self._stats[knob])
                if trials > 0
            ]
            if not tried:
                continue
            best_ewma, _, best = max(tried)
            if best == self.incumbent[knob]:
                continue
            inc_stats = self._value_stats(knob, self.incumbent[knob])
            # Hysteresis: an untried incumbent concedes to any data, a
            # tried one only to a challenger beating it by the margin.
            if inc_stats[1] == 0 or best_ewma > inc_stats[0] * (
                1.0 + self.switch_margin
            ):
                self.incumbent[knob] = best
                changed = True
        self._stable = 0 if changed else self._stable + 1

    # ------------------------------------------------------------------
    # reporting and persistence
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """The tuner's full decision state (what ``explain()`` surfaces)."""
        return {
            "incumbent": dict(self.incumbent),
            "converged": self.converged,
            "decisions": self.decisions,
            "observations": self.observations,
            "knobs": {
                name: [
                    {
                        "value": value,
                        "qps_ewma": stats[0],
                        "trials": stats[1],
                    }
                    for value, stats in zip(values, self._stats[name])
                ]
                for name, values in self.knobs.items()
            },
        }

    def explain_lines(self) -> list[str]:
        """Human-readable decision summary, one line per knob."""
        lines = [
            f"auto-tuner: {self.observations} batches observed, "
            + ("converged" if self.converged else "exploring")
        ]
        for name, values in self.knobs.items():
            parts = []
            for value, (ewma, trials) in zip(values, self._stats[name]):
                mark = "*" if value == self.incumbent[name] else " "
                parts.append(f"{mark}{value!r}: {ewma:.1f} qps x{trials}")
            lines.append(f"  {name}: " + ", ".join(parts))
        return lines

    def state_dict(self) -> dict:
        """JSON-safe snapshot for ``Database.save()``."""
        return {
            "knobs": {name: list(values) for name, values in self.knobs.items()},
            "incumbent": dict(self.incumbent),
            "stats": {
                name: [[float(e), int(t)] for e, t in stats]
                for name, stats in self._stats.items()
            },
            "decisions": self.decisions,
            "observations": self.observations,
            "stable": self._stable,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (knob-name intersection).

        Values learned for knobs that no longer exist (or values no
        longer offered) are dropped; new knobs keep their fresh state —
        a reopened database with a different config resumes what still
        applies instead of failing.
        """
        stats = state.get("stats", {})
        for name, values in self.knobs.items():
            saved_values = state.get("knobs", {}).get(name)
            saved_stats = stats.get(name)
            if saved_values is None or saved_stats is None:
                continue
            for value, value_stats in zip(saved_values, saved_stats):
                if value in values:
                    self._stats[name][values.index(value)] = [
                        float(value_stats[0]),
                        int(value_stats[1]),
                    ]
            incumbent = state.get("incumbent", {}).get(name)
            if incumbent in values:
                self.incumbent[name] = incumbent
        self.decisions = int(state.get("decisions", 0))
        self.observations = int(state.get("observations", 0))
        self._stable = int(state.get("stable", 0))

    def __repr__(self) -> str:
        return (
            f"AutoTuner(knobs={list(self.knobs)}, "
            f"observations={self.observations}, "
            f"converged={self.converged}, incumbent={self.incumbent})"
        )
