"""Multiprocess execution: per-shard workers over shared-memory columns.

The thread pool in :mod:`repro.exec.batch` overlaps simulated I/O but
cannot scale CPU-bound work past one interpreter: NumPy kernels release
the GIL, the Python-side chunk loops and probe walks do not.  This module
adds a process backend in the near-data-processing mould — push each
piece of work to the worker that *owns* its data instead of funnelling
everything through one interpreter:

* **Workers** are forked processes, one per shard (shard ``s`` lands on
  worker ``s % workers``) or per round-robin chunk group for monolithic
  methods.  Fork means nothing is pickled to set them up: workers inherit
  the whole object graph — trees, pdfs, sample caches — copy-on-write.
* **Hot read-only state is physically shared.**  Before forking, the
  executor moves the columnar filter-kernel sidecars (CFB faces / PCR
  planes / MBR columns) — and, opted in, the resident Monte-Carlo sample
  clouds — into anonymous ``MAP_SHARED`` mappings via
  :class:`~repro.storage.shm.SharedArena`, so every worker reads one
  physical copy with zero attach cost.  Data-file payload pages are live
  Python objects and stay fork-inherited COW.
* **Near-data refinement.**  Every data page is owned by exactly one
  worker (``page_id % workers``); a query's candidates are split by
  owning worker, and each worker fetches and refines only its own pages
  through a private :class:`~repro.storage.pager.DataFileView` — the
  page is read, slept on (simulated latency) and mask-reduced inside the
  process that owns it.

**Bit-identical accounting.**  Page ownership is what makes the merged
counters reproduce the serial path *exactly*, not just approximately:
the probability memo is keyed on ``(DiskAddress, rect)`` and the sample
cache on the object (one address, one page), so both partition cleanly
across workers.  Each worker processes its slice serially in submission
order and computes its batch-level fetch set before refining — the same
phase structure as :meth:`BatchExecutor._run_serial` — so per-query
``QueryStats``, per-shard ``ShardStats`` and the batch totals all merge
back equal to the serial run.  Two documented exceptions, both cost-only
(answers are always identical): a buffer pool (``pool_capacity > 0``)
makes physical/cache splits access-order-dependent, and
``share_samples=True`` prewarms the cache, shifting hit/miss ledgers.
The defaults (no pool, no prewarm) are the exact regime, and the
equivalence tests pin it.

Workers persist across :meth:`ProcessBatchExecutor.run` calls — their
memos and caches stay warm like the thread executor's — and are re-forked
automatically if the method grows or shrinks under them.  Shutdown is by
``close()`` (or context manager), with a ``weakref.finalize`` backstop so
an abandoned executor never strands processes under pytest.

**Supervision.**  Every command exchange is a supervised unit: with
``worker_timeout > 0`` the parent waits on each reply with a per-command
deadline and a liveness probe instead of blocking forever, so a dead
worker is detected immediately and a wedged one within the deadline.
On death or hang the parent kills the worker, respawns it by re-forking
from the live parent state (the shared-memory arena is still mapped, so
the replacement attaches the same kernel columns for free) and — with
``max_retries > 0`` — re-sends **only the failed fault domain**: that
worker's shard probes / query slice / page-ownership refinement group,
never the commands other workers already answered.  Retries are bounded
with linear backoff; a respawned worker starts with a cold memo, which
can only shift *later* batches' memo-hit ledgers (cost, never answers —
within the retried batch the re-run recomputes exactly what the dead
worker would have).  When the budget is exhausted (or with the default
``max_retries=0``) the pool is torn down before the
:class:`~repro.faults.WorkerError`/:class:`~repro.faults.WorkerTimeout`
propagates, so the next ``run()`` re-forks cleanly and the owning
``Database`` object survives the fault.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
import weakref
from collections.abc import Sequence
from typing import Any

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import QueryStats
from repro.exec.access import AccessMethod, FilterResult
from repro.exec.batch import BatchExecutor, BatchResult
from repro.exec.refine import RefinementEngine, refine_with_engine
from repro.faults import DegradedWarning, WorkerError, WorkerTimeout
from repro.storage.shm import SharedArena

__all__ = ["ProcessBatchExecutor", "WorkerError", "WorkerTimeout"]

_JOIN_TIMEOUT_SECONDS = 5.0

# How often the supervised receive loop interleaves liveness probes
# while waiting under a deadline; never hit with worker_timeout=0
# (the unsupervised blocking receive of the seed).
_POLL_INTERVAL_SECONDS = 0.05


# ----------------------------------------------------------------------
# worker side (runs in the forked child)
# ----------------------------------------------------------------------
def _do_filter(method: AccessMethod, entries: list) -> list:
    """Monolithic filter for ``[(qidx, query)]``; per-query io deltas.

    The forked ``method.io`` counter is private to this worker, and the
    worker runs its queries serially — so the per-query read/cache-hit
    deltas are exact, matching the serial path's attribution.
    """
    io = method.io
    out = []
    for qidx, query in entries:
        reads0, hits0 = io.reads, io.cache_hits
        start = time.perf_counter()
        filtered = method.filter_candidates(query)
        elapsed = time.perf_counter() - start
        out.append(
            (qidx, filtered, elapsed, io.reads - reads0, io.cache_hits - hits0)
        )
    return out


def _do_probe(method, entries: list) -> list:
    """Sharded probes for ``[(qidx, shard_id, query)]``, routed by parent.

    Probes run against this worker's owned shards; each shard's private
    (forked) counter yields exact per-probe deltas.
    """
    out = []
    for qidx, shard_id, query in entries:
        shard = method.shards[shard_id]
        io = shard.io
        reads0, hits0 = io.reads, io.cache_hits
        start = time.perf_counter()
        filtered = shard.filter_candidates(query)
        elapsed = time.perf_counter() - start
        out.append(
            (
                qidx,
                shard_id,
                filtered,
                elapsed,
                io.reads - reads0,
                io.cache_hits - hits0,
            )
        )
    return out


def _do_refine(
    engine: RefinementEngine,
    view,
    memo: dict | None,
    dedupe_pages: bool,
    entries: list,
) -> tuple:
    """Near-data refinement for ``[(qidx, query, candidates)]``.

    Mirrors the serial executor's phase 2 + 3 over this worker's owned
    pages: first the batch-level fetch set (pages with at least one
    unmemoized ``(address, rect)`` pair, sorted), then per-query
    refinement in submission order against the preloaded payloads.  The
    memo only grows within a batch, so the batch-start fetch set always
    covers what refinement needs — exactly the serial argument.
    """
    entries = sorted(entries, key=lambda entry: entry[0])
    pages: dict[int, list] | None = None
    fetched_total = 0
    fetch_wall = 0.0
    reads_before = view.io.reads
    if dedupe_pages:
        fetch_start = time.perf_counter()
        fetch_pages: set[int] = set()
        for _, query, candidates in entries:
            rect = query.rect
            fetch_pages.update(
                address.page_id
                for _, address in candidates
                if memo is None or (address, rect) not in memo
            )
        pages = {}
        for page_id in sorted(fetch_pages):
            pages[page_id] = view.read_page(page_id)
        fetched_total = len(fetch_pages)
        fetch_wall = time.perf_counter() - fetch_start

    replies = []
    for qidx, query, candidates in entries:
        stats = QueryStats()
        qualifying: list[int] = []
        q_reads = view.io.reads
        start = time.perf_counter()
        fetched = refine_with_engine(
            engine,
            candidates,
            query,
            view,
            stats,
            qualifying,
            pages=pages,
            memo=memo,
        )
        stats.wall_seconds = time.perf_counter() - start
        stats.physical_reads = view.io.reads - q_reads
        if not dedupe_pages:
            fetched_total += fetched
        replies.append((qidx, qualifying, stats))
    return (replies, fetched_total, fetch_wall, view.io.reads - reads_before)


def _worker_loop(
    conn,
    method: AccessMethod,
    memoize: bool,
    dedupe_pages: bool,
    io_latency_seconds: float,
) -> None:
    """Command loop of one forked worker.

    State is built post-fork from the inherited object graph: the shared
    refinement engine (``for_method`` resolves to the same per-estimator
    engine the parent uses, so the forked sample cache starts warm), a
    private data-file reader view carrying this worker's I/O ledger and
    simulated latency, and the worker-resident probability memo.
    """
    engine = RefinementEngine.for_method(method)
    view = method.data_file.reader_view(latency_seconds=io_latency_seconds)
    memo: dict | None = {} if memoize else None
    pending_chaos: tuple[str, float] | None = None
    try:
        while True:
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                break
            if kind == "close":
                break
            if kind == "chaos":
                # Chaos-harness surface (tests/faultinject.py): arm a
                # fault that fires on the *next* real command — the
                # worker dies or stalls mid-batch, exactly the failure
                # the supervisor exists for.
                pending_chaos = payload
                conn.send(("ok", True))
                continue
            if pending_chaos is not None:
                mode, seconds = pending_chaos
                pending_chaos = None
                if mode == "exit":
                    os._exit(17)
                time.sleep(seconds)  # "hang": stall, then proceed
            try:
                reply: Any
                if kind == "filter":
                    reply = _do_filter(method, payload)
                elif kind == "probe":
                    reply = _do_probe(method, payload)
                elif kind == "refine":
                    reply = _do_refine(
                        engine, view, memo, dedupe_pages, payload
                    )
                elif kind == "clear_memo":
                    if memo is not None:
                        memo.clear()
                    reply = True
                else:
                    raise ValueError(f"unknown worker command {kind!r}")
            except Exception:
                conn.send(("error", traceback.format_exc()))
            else:
                conn.send(("ok", reply))
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# parent-side pool management
# ----------------------------------------------------------------------
def _shutdown_pool(conns: list, procs: list) -> None:
    """Ask every worker to exit, then join (terminate as last resort)."""
    for conn in conns:
        try:
            conn.send(("close", None))
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - stuck-worker backstop
            proc.terminate()
            proc.join(timeout=1.0)


class ProcessBatchExecutor(BatchExecutor):
    """A :class:`BatchExecutor` whose workers are forked processes.

    Args:
        method: the structure to execute against (monolithic or sharded).
        workers: worker processes.  Shards map to workers by
            ``shard % workers``; data pages by ``page % workers``.
        memoize / dedupe_pages / engine: as in :class:`BatchExecutor`.
            Memos live *inside* the workers (partitioned by page
            ownership); ``memo_size`` therefore reports 0 here and
            :meth:`clear_memo` broadcasts to the pool.
        io_latency_seconds: simulated per-page latency applied inside
            each worker's reader view — this is the time the process pool
            overlaps, and what the multicore benchmark measures on a
            single-core host.
        share_memory: place filter-kernel columns in a
            :class:`~repro.storage.shm.SharedArena` before forking.
        share_samples: additionally prewarm the estimator's sample cache
            from the data file and move the clouds into the arena.
            Changes sample-cache hit/miss ledgers versus a cold serial
            run (never the answers), so it is opt-in.
        worker_timeout: per-command reply deadline in seconds; ``0``
            (the default) blocks forever exactly like the seed, so hung
            workers go undetected but behavior is byte-identical.
        max_retries: supervised retry budget per exchange — how many
            respawn-and-resend rounds a failed fault domain gets before
            the fault propagates.  ``0`` (the default) fails fast on the
            first fault (after tearing the pool down so the executor
            stays usable).
        retry_backoff_seconds: base of the linear backoff between retry
            rounds (round ``n`` sleeps ``n * retry_backoff_seconds``).
    """

    def __init__(
        self,
        method: AccessMethod,
        *,
        workers: int = 2,
        memoize: bool = True,
        dedupe_pages: bool = True,
        engine: RefinementEngine | None = None,
        io_latency_seconds: float = 0.0,
        share_memory: bool = True,
        share_samples: bool = False,
        worker_timeout: float = 0.0,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.05,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if worker_timeout < 0:
            raise ValueError("worker_timeout must be non-negative")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be non-negative")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the process executor requires the fork start method "
                "(unpicklable pdfs travel by inheritance, not pickling)"
            )
        super().__init__(
            method,
            memoize=memoize,
            dedupe_pages=dedupe_pages,
            engine=engine,
            parallelism=int(workers),
            io_latency_seconds=io_latency_seconds,
        )
        self.workers = int(workers)
        self.share_memory = share_memory
        self.share_samples = share_samples
        self.worker_timeout = float(worker_timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self._ctx = multiprocessing.get_context("fork")
        self._conns: list = []
        self._procs: list = []
        self._forked_state: tuple | None = None
        self._arena: SharedArena | None = None
        self._finalizer: weakref.finalize | None = None
        # Supervision ledgers: lifetime totals plus the current run's
        # deltas (surfaced in BatchStats.fault_retries/worker_respawns).
        self.retries = 0
        self.respawns = 0
        self._run_retries = 0
        self._run_respawns = 0

    # -- pool lifecycle -------------------------------------------------
    def _state_snapshot(self) -> tuple:
        """What a fork bakes in: method size and data-file extent.

        Any change means the workers' inherited copies are stale — the
        parent is the only writer, so comparing this snapshot before
        each batch is enough to know when to re-fork.
        """
        method = self.method
        data_file = method.data_file
        try:
            size = len(method)
        except TypeError:
            size = -1
        return (size, data_file.page_count, data_file.record_count)

    def _share_hot_state(self) -> SharedArena:
        """Move the numeric hot state into shared mappings, pre-fork."""
        arena = SharedArena()
        method = self.method
        structures = list(getattr(method, "shards", None) or [method])
        for structure in structures:
            kernel = getattr(structure, "kernel", None)
            if kernel is not None and hasattr(kernel, "rebind_columns"):
                kernel.rebind_columns(arena.share_array)
        if self.share_samples:
            cache = self.engine.cache
            data_file = method.data_file
            pairs = []
            for page_id in range(data_file.page_count):
                for obj in data_file.peek_page(page_id):
                    pairs.append((obj.pdf, obj.oid))
            cache.prewarm(pairs)
            cache.rebind_resident(arena.share_array)
        return arena

    def _spawn_worker(self, worker_id: int) -> None:
        """Fork one worker into slot ``worker_id`` (append or replace).

        In-place slot replacement keeps the ``weakref.finalize`` backstop
        valid: the finalizer holds the *list* objects, not their contents.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(
                child_conn,
                self.method,
                self.memoize,
                self.dedupe_pages,
                self.io_latency_seconds,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if worker_id < len(self._conns):
            self._conns[worker_id] = parent_conn
            self._procs[worker_id] = proc
        else:
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _respawn_worker(self, worker_id: int) -> None:
        """Kill a dead/wedged worker and re-fork its slot from live state.

        The parent is the only writer and never mutates mid-batch, so
        the replacement forks exactly the state the batch was planned
        against; the shared arena is still mapped, so rebound kernel
        columns come along at zero copy cost.  Only the replacement's
        memo starts cold (cost-only, later batches).
        """
        try:
            self._conns[worker_id].close()
        except OSError:
            pass
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
        if proc.is_alive():  # pragma: no cover - kill-resistant worker
            proc.kill()
            proc.join(timeout=1.0)
        self._spawn_worker(worker_id)
        self.respawns += 1
        self._run_respawns += 1

    def _ensure_pool(self) -> None:
        snapshot = self._state_snapshot()
        if self._procs and snapshot == self._forked_state:
            return
        self.close()
        if self.share_memory:
            self._arena = self._share_hot_state()
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id)
        self._forked_state = snapshot
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._conns, self._procs
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool re-forks on use)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._procs:
            _shutdown_pool(self._conns, self._procs)
        self._conns = []
        self._procs = []
        self._forked_state = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ProcessBatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear_memo(self) -> None:
        """Drop memoised probabilities in the parent and every worker."""
        super().clear_memo()
        if self._procs:
            self._exchange(
                {wid: ("clear_memo", None) for wid in range(len(self._conns))}
            )

    @property
    def worker_layout(self) -> tuple[int, ...]:
        """Worker owning each shard (empty for monolithic methods)."""
        sharded = self._sharded
        if sharded is None:
            return ()
        return tuple(
            shard_id % self.workers for shard_id in range(len(sharded.shards))
        )

    # -- parent/worker exchange ----------------------------------------
    def _recv_supervised(self, worker_id: int):
        """One reply under the per-command deadline and liveness probe.

        Returns ``(status, payload, None)`` on a reply, or
        ``(None, None, reason)`` with reason ``"died"``/``"hung"`` when
        the worker failed.  With ``worker_timeout == 0`` this is the
        seed's plain blocking receive (death still surfaces as EOF).
        """
        conn = self._conns[worker_id]
        proc = self._procs[worker_id]
        if self.worker_timeout <= 0.0:
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                return None, None, "died"
            return status, payload, None
        deadline = time.monotonic() + self.worker_timeout
        while True:
            try:
                if conn.poll(_POLL_INTERVAL_SECONDS):
                    status, payload = conn.recv()
                    return status, payload, None
            except (EOFError, OSError):
                return None, None, "died"
            if not proc.is_alive():
                # Drain a reply the worker may have flushed before dying.
                try:
                    if conn.poll(0):
                        status, payload = conn.recv()
                        return status, payload, None
                except (EOFError, OSError):
                    pass
                return None, None, "died"
            if time.monotonic() >= deadline:
                return None, None, "hung"

    def _exchange(self, messages: dict[int, tuple[str, Any]]) -> dict[int, Any]:
        """Send one command per worker, then gather every reply, supervised.

        Sends all complete before the first receive, so the addressed
        workers run concurrently.  A worker that dies or misses its
        deadline fails only its own fault domain: with retry budget left
        the worker is killed, respawned from live parent state and
        *only its* command re-sent (bounded rounds, linear backoff) —
        every other worker's reply is kept.  A worker *traceback* is
        never retried (it would recur deterministically — e.g. a corrupt
        page); it propagates as :class:`~repro.faults.WorkerError` for
        the degradation ladder to handle.  On any propagated fault the
        pool is torn down first, so the next ``run()`` re-forks cleanly
        instead of failing on dead pipes.
        """
        pending = dict(messages)
        replies: dict[int, Any] = {}
        rounds = 0
        while pending:
            failed: dict[int, str] = {}
            for worker_id, message in pending.items():
                try:
                    self._conns[worker_id].send(message)
                except (BrokenPipeError, OSError):
                    failed[worker_id] = "died"
            for worker_id in list(pending):
                if worker_id in failed:
                    continue
                status, payload, reason = self._recv_supervised(worker_id)
                if reason is not None:
                    failed[worker_id] = reason
                    continue
                if status != "ok":
                    self.close()
                    raise WorkerError(
                        f"worker {worker_id} failed:\n{payload}"
                    )
                replies[worker_id] = payload
                del pending[worker_id]
            if not failed:
                continue
            rounds += 1
            if rounds > self.max_retries:
                self.close()
                reasons = ", ".join(
                    f"worker {wid} {why}" for wid, why in sorted(failed.items())
                )
                exc_type = (
                    WorkerTimeout
                    if all(why == "hung" for why in failed.values())
                    else WorkerError
                )
                raise exc_type(
                    f"{reasons} mid-command "
                    f"(retry budget {self.max_retries} exhausted)"
                )
            if self.retry_backoff_seconds > 0.0:
                time.sleep(self.retry_backoff_seconds * rounds)
            for worker_id, why in sorted(failed.items()):
                self._respawn_worker(worker_id)
                self.retries += 1
                self._run_retries += 1
                warnings.warn(
                    f"worker {worker_id} {why}; respawned and retrying its "
                    f"fault domain (round {rounds}/{self.max_retries})",
                    DegradedWarning,
                    stacklevel=3,
                )
        return replies

    # -- execution ------------------------------------------------------
    def run(self, queries: Sequence[ProbRangeQuery]) -> BatchResult:
        """Execute the workload on the process pool, merging stats back."""
        start = time.perf_counter()
        self._run_retries = 0
        self._run_respawns = 0
        self._ensure_pool()
        sharded = self._sharded

        result = BatchResult()
        result.batch.queries = len(queries)
        result.batch.parallelism = self.workers
        result.batch.executor = "process"
        shard_stats = self._new_shard_stats()

        # Phase 1: filter in the workers.  Monolithic methods round-robin
        # whole queries; sharded methods are routed *here* (router
        # counters and decisions stay in the parent, exactly as serial)
        # and each probe runs on the worker owning its shard.
        per_query: list[tuple[ProbRangeQuery, QueryStats, QueryAnswer, list]] = []
        if sharded is None:
            filtered_by_query = self._filter_monolithic(queries)
        else:
            filtered_by_query = self._filter_sharded(
                sharded, queries, shard_stats
            )
        needed_pages: set[int] = set()
        for qidx, query in enumerate(queries):
            filtered, elapsed, delta_reads, delta_hits = filtered_by_query[qidx]
            stats = QueryStats()
            answer = QueryAnswer(stats=stats)
            stats.node_accesses = filtered.node_accesses
            stats.validated_directly = len(filtered.validated)
            stats.pruned = filtered.pruned
            stats.shard_probes = filtered.shard_probes
            stats.shards_pruned = filtered.shards_pruned
            answer.object_ids.extend(filtered.validated)
            stats.physical_reads = delta_reads
            stats.cache_hits = delta_hits
            stats.filter_seconds = elapsed
            stats.wall_seconds = elapsed
            needed_pages.update(
                address.page_id for _, address in filtered.candidates
            )
            per_query.append((query, stats, answer, filtered.candidates))

        # Phases 2+3: near-data refinement.  Each query's candidates are
        # split by owning worker (page % workers); workers preload their
        # fetch sets and refine serially, reporting qualifying oids plus
        # a per-query refinement QueryStats to merge.
        refine_entries: dict[int, list] = {}
        for qidx, (query, _, _, candidates) in enumerate(per_query):
            if not candidates:
                continue
            split: dict[int, list] = {}
            for oid, address in candidates:
                owner = address.page_id % self.workers
                split.setdefault(owner, []).append((oid, address))
            for owner, subset in split.items():
                refine_entries.setdefault(owner, []).append(
                    (qidx, query, subset)
                )
        refine_replies = self._exchange(
            {
                worker_id: ("refine", entries)
                for worker_id, entries in refine_entries.items()
            }
        )

        qualified: dict[int, set[int]] = {}
        filter_physical = sum(s.physical_reads for _, s, _, _ in per_query)
        refine_physical = 0
        for replies, fetched_total, fetch_wall, view_reads in (
            refine_replies.values()
        ):
            result.batch.data_page_fetches += fetched_total
            result.batch.fetch_seconds += fetch_wall
            refine_physical += view_reads
            for qidx, qualifying, worker_stats in replies:
                qualified.setdefault(qidx, set()).update(qualifying)
                stats = per_query[qidx][1]
                stats.data_page_reads += worker_stats.data_page_reads
                stats.prob_computations += worker_stats.prob_computations
                stats.memoized_probs += worker_stats.memoized_probs
                stats.sample_cache_hits += worker_stats.sample_cache_hits
                stats.sample_cache_misses += worker_stats.sample_cache_misses
                stats.physical_reads += worker_stats.physical_reads
                stats.fetch_seconds += worker_stats.fetch_seconds
                stats.refine_seconds += worker_stats.refine_seconds
                stats.wall_seconds += worker_stats.wall_seconds

        # Assemble answers in the serial order: validated oids first
        # (already appended), then qualifying candidates page-sorted with
        # the within-page candidate order preserved.  Page ownership
        # guarantees a page's whole candidate group refined in one
        # worker, so membership in the merged qualifying set is enough to
        # reconstruct the exact serial sequence.
        for qidx, (query, stats, answer, candidates) in enumerate(per_query):
            winners = qualified.get(qidx, set())
            if winners:
                by_page: dict[int, list[int]] = {}
                for oid, address in candidates:
                    by_page.setdefault(address.page_id, []).append(oid)
                for page_id in sorted(by_page):
                    answer.object_ids.extend(
                        oid for oid in by_page[page_id] if oid in winners
                    )
            stats.result_count = len(answer.object_ids)
            result.answers.append(answer)
            result.workload.add(stats)

        if not self.dedupe_pages:
            result.batch.fetch_seconds += sum(
                s.fetch_seconds for _, s, _, _ in per_query
            )
        result.batch.unique_data_pages = len(needed_pages)
        self._settle_process_shard_stats(result, shard_stats)
        self._finalise_process(
            result, per_query, filter_physical + refine_physical, start
        )
        return result

    def _filter_monolithic(
        self, queries: Sequence[ProbRangeQuery]
    ) -> dict[int, tuple[FilterResult, float, int, int]]:
        assignments: dict[int, list] = {}
        for qidx, query in enumerate(queries):
            assignments.setdefault(qidx % self.workers, []).append(
                (qidx, query)
            )
        replies = self._exchange(
            {
                worker_id: ("filter", entries)
                for worker_id, entries in assignments.items()
            }
        )
        out: dict[int, tuple[FilterResult, float, int, int]] = {}
        for worker_replies in replies.values():
            for qidx, filtered, elapsed, delta_reads, delta_hits in (
                worker_replies
            ):
                out[qidx] = (filtered, elapsed, delta_reads, delta_hits)
        return out

    def _filter_sharded(
        self,
        sharded,
        queries: Sequence[ProbRangeQuery],
        shard_stats,
    ) -> dict[int, tuple[FilterResult, float, int, int]]:
        routes = [sharded.route(query) for query in queries]
        assignments: dict[int, list] = {}
        for qidx, (query, route) in enumerate(zip(queries, routes)):
            for shard_id in route:
                assignments.setdefault(shard_id % self.workers, []).append(
                    (qidx, shard_id, query)
                )
        replies = self._exchange(
            {
                worker_id: ("probe", entries)
                for worker_id, entries in assignments.items()
            }
        )
        probes: dict[int, dict[int, tuple]] = {qidx: {} for qidx in range(len(queries))}
        for worker_replies in replies.values():
            for qidx, shard_id, filtered, elapsed, delta_reads, delta_hits in (
                worker_replies
            ):
                probes[qidx][shard_id] = (
                    filtered, elapsed, delta_reads, delta_hits
                )
        out: dict[int, tuple[FilterResult, float, int, int]] = {}
        for qidx, route in enumerate(routes):
            merged = sharded.merge_filter(
                route, [probes[qidx][shard_id][0] for shard_id in route]
            )
            elapsed = 0.0
            total_reads = 0
            total_hits = 0
            for shard_id in route:
                filtered, probe_elapsed, delta_reads, delta_hits = (
                    probes[qidx][shard_id]
                )
                self._tally_probe(shard_stats[shard_id], filtered, probe_elapsed)
                shard_stats[shard_id].physical_reads += delta_reads
                shard_stats[shard_id].cache_hits += delta_hits
                elapsed += probe_elapsed
                total_reads += delta_reads
                total_hits += delta_hits
            out[qidx] = (merged, elapsed, total_reads, total_hits)
        return out

    def _settle_process_shard_stats(self, result: BatchResult, shard_stats) -> None:
        """Per-shard totals from worker deltas (I/O already attributed)."""
        if shard_stats is None:
            return
        for stats in shard_stats:
            stats.routed_away = result.batch.queries - stats.probes
        result.batch.shards = len(shard_stats)
        result.batch.shard_stats = shard_stats

    def _finalise_process(
        self,
        result: BatchResult,
        per_query: list,
        physical_reads: int,
        start: float,
    ) -> None:
        """Batch totals from the merged per-query stats and worker ledgers.

        Unlike the thread path there is no shared parent counter to
        delta: every physical read happened on some worker's private
        ledger, and the sums reproduce the serial window exactly (the
        equivalence tests assert it).  Queries never write, and worker
        views have no buffer pool, so writes and refinement cache hits
        are structurally zero — as in the serial uncached regime.
        """
        batch = result.batch
        batch.logical_data_page_reads = sum(
            s.data_page_reads for _, s, _, _ in per_query
        )
        batch.shard_probes = sum(s.shard_probes for _, s, _, _ in per_query)
        batch.shards_pruned = sum(s.shards_pruned for _, s, _, _ in per_query)
        batch.prob_computations = sum(
            s.prob_computations for _, s, _, _ in per_query
        )
        batch.memo_hits = sum(s.memoized_probs for _, s, _, _ in per_query)
        batch.sample_cache_hits = sum(
            s.sample_cache_hits for _, s, _, _ in per_query
        )
        batch.sample_cache_misses = sum(
            s.sample_cache_misses for _, s, _, _ in per_query
        )
        batch.filter_seconds = sum(s.filter_seconds for _, s, _, _ in per_query)
        batch.refine_seconds = sum(s.refine_seconds for _, s, _, _ in per_query)
        batch.physical_reads = physical_reads
        batch.cache_hits = sum(s.cache_hits for _, s, _, _ in per_query)
        batch.fault_retries = self._run_retries
        batch.worker_respawns = self._run_respawns
        if self._pools:
            batch.pool_policy = self._pools[0].policy
        batch.wall_seconds = time.perf_counter() - start

    def __repr__(self) -> str:
        return (
            f"ProcessBatchExecutor(workers={self.workers}, "
            f"live={len(self._procs)}, memoize={self.memoize}, "
            f"share_memory={self.share_memory})"
        )
