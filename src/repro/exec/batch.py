"""Batched execution: amortise I/O and Monte-Carlo work across a workload.

Running a workload query-by-query repeats two kinds of work whenever the
queries overlap:

* the same **data page** is fetched once per query that has a candidate on
  it (the refinement step of Section 5.2 dedupes within one query only);
* the same ``(object, query rectangle)`` **appearance probability** is
  recomputed whenever two queries share a rectangle at different
  thresholds — the exact access pattern of the Fig. 10 experiment, where
  one set of rectangles is swept across five thresholds.

The :class:`BatchExecutor` closes both gaps.  It runs every query's filter
phase first, fetches each candidate data page once for the entire batch
(skipping pages whose every candidate is already memoised), then refines
per query through the :class:`~repro.exec.refine.RefinementEngine`
(shared sample clouds, stacked mask evaluation) with a memo keyed on
``(disk address, query_rect)`` — addresses are append-only, so a reused
object id can never be served a stale probability.  The Monte-Carlo
estimator derives its sample stream from ``(seed, object_id)``, so
memoised and engine-computed values are bit-identical to freshly
recomputed ones — batching changes cost, never answers.

With ``parallelism > 1`` the three phases overlap: the main thread runs
the filter walks, a dedicated fetch thread (the simulated disk arm) reads
candidate pages — optionally sleeping ``io_latency_seconds`` per page —
and a pool of refinement workers mask-and-reduce as soon as their pages
land.  Answers are identical in every mode; ``parallelism=1`` runs the
strictly serial path and reproduces its counters *exactly*, which is what
the accounting tests pin.  In parallel mode the per-query physical-read /
cache-hit attribution is not meaningful (threads interleave on the shared
``IOCounter``), so it is left at zero and the authoritative totals live in
:class:`BatchStats`; likewise ``prob_computations`` / ``memoized_probs`` /
sample-cache counters may exceed their serial values when concurrent
workers race to compute the same ``(object, rect)`` pair before either
lands in the memo — the values themselves are deterministic, so only the
cost accounting (never an answer) is affected.  Use ``parallelism=1``
wherever paper-exact CPU counts matter (the figure harnesses default to
it).

Per-query :class:`~repro.core.stats.QueryStats` keep their *logical*
meaning (a query that needed three data pages reports three data-page
reads even if the batch fetched them earlier); the batch-level savings
show up in the physical counters and in :class:`BatchStats`.

Against a :class:`~repro.exec.shard.ShardedAccessMethod` the executor is
shard-aware: it routes every query itself, groups queries by identical
shard-overlap sets, and (in parallel mode) runs one filter task per
``(group, shard)`` on the worker pool, so different shards filter
concurrently while refinement drains through the shared data file.
:class:`BatchStats` then carries one :class:`~repro.core.stats.ShardStats`
per shard (probes, filter node accesses, exact per-shard physical
reads / cache hits — each shard owns its counter — and the candidates it
fed refinement).  Per-phase wall-clock fields stay *per query*: each
shard probe contributes its own elapsed time exactly once to its query's
``filter_seconds``, never the whole query window once per probe.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import QueryStats, ShardStats, WorkloadStats
from repro.exec.access import AccessMethod, FilterResult
from repro.exec.refine import RefinementEngine, refine_with_engine
from repro.geometry.rect import Rect
from repro.storage.bufferpool import pool_counters, pools_of
from repro.storage.pager import DiskAddress

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "SERIAL_FALLBACK_SAMPLE_OPS",
]

# Queries per sharded filter task in parallel mode: large enough to
# amortise task dispatch over a shard's warm walk, small enough that an
# early query's probes resolve while the rest of its group still filters
# (one task per whole group would stall the fetch/refine pipeline behind
# the group's last member).
_PROBE_CHUNK = 4

# Batches whose estimated Monte-Carlo volume (queries x samples) falls
# below this run serially even when parallelism > 1: thread dispatch
# overhead exceeds the overlap it buys (the BENCH_shard wall-clock
# inversion — 758 qps parallel vs 857 serial on a 48-query batch).
# Calibrated so that workload (48 x 4000 = 192k sample-ops) falls back
# while latency-bound or genuinely heavy batches still fan out.  Only
# zero-latency batches are eligible: simulated disk latency is exactly
# the case the fetch/refine overlap exists for.
SERIAL_FALLBACK_SAMPLE_OPS = 250_000


@dataclass
class BatchStats:
    """Batch-level cost summary (what batching saved)."""

    queries: int = 0
    parallelism: int = 1
    # Which backend executed the batch ("thread" covers the serial path
    # too — one thread), and whether a parallel-configured executor chose
    # the serial path for a batch below the fallback work threshold.
    executor: str = "thread"
    serial_fallback: bool = False
    # Sharded execution (zero / empty for monolithic methods): shard
    # count, per-shard filter probes actually executed, probes the
    # router pruned, and the per-shard cost breakdown.  Per-phase
    # wall-clock fields below stay *per query*: a query probed against
    # three shards contributes each probe's own elapsed time once —
    # never the whole query window once per probe.
    shards: int = 0
    shard_probes: int = 0
    shards_pruned: int = 0
    shard_stats: list[ShardStats] = field(default_factory=list)
    unique_data_pages: int = 0
    data_page_fetches: int = 0
    logical_data_page_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    cache_hits: int = 0
    # Buffer-pool accounting across every pool the method touches (node
    # stores plus data files, all shards).  ``pool_ghost_hits`` is
    # nonzero only under the ARC policy: misses whose identity a ghost
    # list still remembered.  Under the process backend the workers'
    # forked pool copies do the filtering, so the parent-side deltas
    # reported here stay near zero.
    pool_policy: str = ""
    pool_hits: int = 0
    pool_misses: int = 0
    pool_ghost_hits: int = 0
    prob_computations: int = 0
    memo_hits: int = 0
    sample_cache_hits: int = 0
    sample_cache_misses: int = 0
    filter_seconds: float = 0.0
    fetch_seconds: float = 0.0
    refine_seconds: float = 0.0
    wall_seconds: float = 0.0
    # Resilience accounting (all zero/empty on a fault-free run, so the
    # seed's repr/summary and every equality-based test are untouched).
    # ``degraded_to`` names the ladder level that finally answered when
    # the batch fell below its configured backend ("" = no degradation);
    # ``fault_events`` lists the absorbed faults in order.
    degraded_to: str = ""
    fault_events: list[str] = field(default_factory=list)
    fault_retries: int = 0  # supervised fault-domain retry rounds
    worker_respawns: int = 0  # workers killed and re-forked mid-batch
    corrupt_pages: int = 0  # crc mismatches detected during the batch
    pages_scrubbed: int = 0  # of those, quarantined and rebuilt
    io_retries: int = 0  # transient read failures absorbed by retry

    @property
    def degraded(self) -> bool:
        """Whether any fault was absorbed while producing this batch."""
        return bool(
            self.degraded_to
            or self.fault_events
            or self.fault_retries
            or self.worker_respawns
            or self.pages_scrubbed
            or self.io_retries
        )

    @property
    def data_pages_saved(self) -> int:
        """Page fetches avoided by batch dedup and the warm memo.

        With ``dedupe_pages=False`` and a cold memo every query fetches
        its own pages, so ``data_page_fetches ==
        logical_data_page_reads``; dedup collapses repeats to one fetch
        and a warm memo can skip a page's fetch entirely.
        """
        return self.logical_data_page_reads - self.data_page_fetches

    @property
    def memo_hit_rate(self) -> float:
        total = self.prob_computations + self.memo_hits
        return self.memo_hits / total if total else 0.0

    @property
    def sample_cache_hit_rate(self) -> float:
        total = self.sample_cache_hits + self.sample_cache_misses
        return self.sample_cache_hits / total if total else 0.0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of buffer-pool accesses served from memory this batch."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def __repr__(self) -> str:
        text = (
            f"BatchStats({self.queries} queries, parallelism={self.parallelism}, "
            f"{self.data_page_fetches} fetches for {self.logical_data_page_reads} "
            f"logical page reads, {self.prob_computations} P_app + "
            f"{self.memo_hits} memo hits, "
            f"sample-cache {100 * self.sample_cache_hit_rate:.0f}%, "
            f"wall={1000 * self.wall_seconds:.1f}ms"
        )
        if self.shards:
            text += f", {self.shards} shards/{self.shard_probes} probes"
        return text + ")"

    def summary(self) -> str:
        """The whole batch as one aligned table (plus per-shard rows)."""
        from repro.core.stats import format_aligned

        rows = [
            ["queries", self.queries],
            ["parallelism", self.parallelism],
            ["unique data pages", self.unique_data_pages],
            ["data page fetches", self.data_page_fetches],
            ["logical page reads", self.logical_data_page_reads],
            ["pages saved", self.data_pages_saved],
            ["physical reads", self.physical_reads],
            ["cache hits", self.cache_hits],
            ["pool policy / hit rate",
             f"{self.pool_policy or 'none'} / {100 * self.pool_hit_rate:.1f}%"
             + (f" ({self.pool_ghost_hits} ghost hits)"
                if self.pool_ghost_hits else "")],
            ["P_app computed", self.prob_computations],
            ["P_app memo hits", self.memo_hits],
            ["sample-cache hit rate", f"{100 * self.sample_cache_hit_rate:.1f}%"],
            ["filter / fetch / refine (ms)",
             f"{1000 * self.filter_seconds:.1f} / {1000 * self.fetch_seconds:.1f}"
             f" / {1000 * self.refine_seconds:.1f}"],
            ["wall (ms)", f"{1000 * self.wall_seconds:.1f}"],
        ]
        if self.degraded:
            rows.append([
                "resilience",
                f"degraded_to={self.degraded_to or 'none'} "
                f"retries={self.fault_retries} respawns={self.worker_respawns} "
                f"scrubbed={self.pages_scrubbed}/{self.corrupt_pages} "
                f"io_retries={self.io_retries}",
            ])
        if self.shards:
            rows.insert(2, ["shards (probes / pruned)",
                            f"{self.shards} ({self.shard_probes} / {self.shards_pruned})"])
        table = format_aligned(["metric", "value"], rows)
        if self.shard_stats:
            table += "\n" + format_aligned(
                ["shard", "probes", "routed away", "nodes", "validated",
                 "candidates", "pruned", "reads", "hits", "filter ms"],
                [s.row() for s in self.shard_stats],
            )
        return table


@dataclass
class BatchResult:
    """Answers (in submission order) plus per-query and batch statistics."""

    answers: list[QueryAnswer] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    batch: BatchStats = field(default_factory=BatchStats)


class BatchExecutor:
    """Run workloads against one access method with cross-query reuse.

    Args:
        method: the structure to execute against.
        memoize: share appearance-probability results across queries keyed
            on ``(disk_address, query_rect)``.  The memo persists across
            :meth:`run` calls until :meth:`clear_memo`.
        dedupe_pages: fetch each candidate data page once per batch rather
            than once per query.
        engine: refinement engine to use; defaults to one bound to the
            method's estimator.  The engine (and its sample cache)
            persists across :meth:`run` calls.
        parallelism: refinement worker threads.  ``1`` (default) is the
            strictly serial reference path with exact per-query
            accounting; ``>= 2`` overlaps filter, page fetch and
            Monte-Carlo refinement.
        io_latency_seconds: simulated per-page disk latency applied by
            the parallel fetch thread (the overlap the thread pool buys).
            Ignored in serial mode, where latency is accounted
            analytically by the harness.
        serial_fallback_threshold: minimum estimated Monte-Carlo volume
            (``len(queries) * estimator.n_samples``) for a zero-latency
            batch to actually fan out when ``parallelism > 1``; smaller
            batches run the serial path (identical answers *and*
            counters, ``BatchStats.serial_fallback`` set).  ``0``
            disables the fallback; ``None`` uses
            :data:`SERIAL_FALLBACK_SAMPLE_OPS`.
    """

    def __init__(
        self,
        method: AccessMethod,
        *,
        memoize: bool = True,
        dedupe_pages: bool = True,
        engine: RefinementEngine | None = None,
        parallelism: int = 1,
        io_latency_seconds: float = 0.0,
        serial_fallback_threshold: int | None = None,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if io_latency_seconds < 0:
            raise ValueError("io_latency_seconds must be non-negative")
        if serial_fallback_threshold is not None and serial_fallback_threshold < 0:
            raise ValueError("serial_fallback_threshold must be non-negative")
        self.method = method
        self.memoize = memoize
        self.dedupe_pages = dedupe_pages
        self.engine = engine if engine is not None else RefinementEngine.for_method(method)
        self.parallelism = int(parallelism)
        self.io_latency_seconds = float(io_latency_seconds)
        self.serial_fallback_threshold = (
            SERIAL_FALLBACK_SAMPLE_OPS
            if serial_fallback_threshold is None
            else int(serial_fallback_threshold)
        )
        self._prob_memo: dict[tuple[DiskAddress, Rect], float] = {}
        self._pools = pools_of(method)

    def clear_memo(self) -> None:
        """Drop memoised appearance probabilities."""
        self._prob_memo.clear()

    @property
    def memo_size(self) -> int:
        return len(self._prob_memo)

    # ------------------------------------------------------------------
    # sharded-method support
    # ------------------------------------------------------------------
    @property
    def _sharded(self):
        """The method, when it is a routed shard set (else ``None``).

        Duck-typed so this module needs no import of
        :mod:`repro.exec.shard`: anything exposing ``shards`` plus the
        ``route``/``merge_filter``/``filter_with`` trio gets shard-group
        execution and per-shard accounting.
        """
        method = self.method
        if (
            getattr(method, "shards", None)
            and callable(getattr(method, "route", None))
            and callable(getattr(method, "merge_filter", None))
            and callable(getattr(method, "filter_with", None))
        ):
            return method
        return None

    def _new_shard_stats(self) -> list[ShardStats] | None:
        sharded = self._sharded
        if sharded is None:
            return None
        return [ShardStats(shard=i) for i in range(len(sharded.shards))]

    def _shard_io_baseline(self) -> list[tuple[int, int]] | None:
        sharded = self._sharded
        if sharded is None:
            return None
        return [(s.io.reads, s.io.cache_hits) for s in sharded.shards]

    def _probe_serial(
        self,
        query: ProbRangeQuery,
        shard_stats: list[ShardStats],
    ) -> FilterResult:
        """Route one query and probe its shards inline, tallying per shard.

        Delegates to the facade's single serial filter implementation
        (:meth:`ShardedAccessMethod.filter_with`), hooking the per-shard
        tallies into its probe callback.
        """
        return self.method.filter_with(
            query,
            on_probe=lambda shard_id, filtered, elapsed: self._tally_probe(
                shard_stats[shard_id], filtered, elapsed
            ),
        )

    @staticmethod
    def _tally_probe(
        stats: ShardStats, filtered: FilterResult, elapsed: float
    ) -> None:
        stats.probes += 1
        stats.node_accesses += filtered.node_accesses
        stats.validated += len(filtered.validated)
        stats.candidates += len(filtered.candidates)
        stats.pruned += filtered.pruned
        stats.filter_seconds += elapsed

    def _settle_shard_stats(
        self,
        result: BatchResult,
        shard_stats: list[ShardStats] | None,
        baseline: list[tuple[int, int]] | None,
    ) -> None:
        """Attach per-shard I/O deltas and totals to the batch summary.

        Exact in both execution modes: only a shard's own filter probes
        touch its private counter (refinement reads land on the shared
        data file), so a batch-window delta is that shard's filter I/O.
        """
        if shard_stats is None or baseline is None:
            return
        sharded = self._sharded
        for stats, (reads0, hits0), shard in zip(
            shard_stats, baseline, sharded.shards
        ):
            stats.physical_reads = shard.io.reads - reads0
            stats.cache_hits = shard.io.cache_hits - hits0
            stats.routed_away = result.batch.queries - stats.probes
        result.batch.shards = len(shard_stats)
        result.batch.shard_stats = shard_stats

    def run(self, queries: Sequence[ProbRangeQuery]) -> BatchResult:
        """Execute the whole workload, amortising page fetches and P_app."""
        if self.parallelism == 1:
            return self._run_serial(queries)
        if self._below_fallback_threshold(queries):
            # Tiny batch: thread dispatch would cost more than it
            # overlaps.  The serial path gives identical answers and
            # exact counters; report the configured width plus the flag
            # so callers can see the path taken.
            result = self._run_serial(queries)
            result.batch.parallelism = self.parallelism
            result.batch.serial_fallback = True
            return result
        return self._run_parallel(queries)

    def _below_fallback_threshold(self, queries: Sequence[ProbRangeQuery]) -> bool:
        """Whether this batch is too small to be worth fanning out.

        Only zero-latency batches are eligible — with simulated disk
        latency the fetch/refine overlap is the whole point, however
        small the batch.  Work is estimated as Monte-Carlo sample-ops:
        queries times the estimator's per-object sample count.
        """
        if self.io_latency_seconds > 0.0 or self.serial_fallback_threshold <= 0:
            return False
        n_samples = getattr(
            getattr(self.method, "estimator", None), "n_samples", 0
        )
        return len(queries) * n_samples < self.serial_fallback_threshold

    # ------------------------------------------------------------------
    # serial path: the exact-accounting reference
    # ------------------------------------------------------------------
    def _run_serial(self, queries: Sequence[ProbRangeQuery]) -> BatchResult:
        start = time.perf_counter()
        method = self.method
        io = method.io
        reads0, writes0, hits0 = io.reads, io.writes, io.cache_hits
        cache_hits0, cache_misses0 = self.engine.cache.counters()
        pool0 = pool_counters(self._pools)
        memo = self._prob_memo if self.memoize else None

        result = BatchResult()
        result.batch.queries = len(queries)
        result.batch.parallelism = 1
        shard_stats = self._new_shard_stats()
        shard_baseline = self._shard_io_baseline()

        # Phase 1: every query's filter pass (per-query node accounting;
        # the filter's physical/cache split is attributed per query).
        # Sharded methods route here and probe shard by shard, so the
        # per-shard tallies are exact; the query's own filter_seconds is
        # the single whole-filter window (once per query, not per probe).
        per_query: list[tuple[ProbRangeQuery, QueryStats, QueryAnswer, list]] = []
        needed_pages: set[int] = set()
        for query in queries:
            q_start = time.perf_counter()
            q_reads, q_hits = io.reads, io.cache_hits
            stats = QueryStats()
            answer = QueryAnswer(stats=stats)
            if shard_stats is None:
                filtered = method.filter_candidates(query)
            else:
                filtered = self._probe_serial(query, shard_stats)
            stats.node_accesses = filtered.node_accesses
            stats.validated_directly = len(filtered.validated)
            stats.pruned = filtered.pruned
            stats.shard_probes = filtered.shard_probes
            stats.shards_pruned = filtered.shards_pruned
            answer.object_ids.extend(filtered.validated)
            stats.physical_reads = io.reads - q_reads
            stats.cache_hits = io.cache_hits - q_hits
            stats.filter_seconds = time.perf_counter() - q_start
            stats.wall_seconds = stats.filter_seconds
            needed_pages.update(addr.page_id for _, addr in filtered.candidates)
            per_query.append((query, stats, answer, filtered.candidates))

        # Phase 2: fetch the union of candidate pages once for the batch —
        # except pages whose every (candidate, query) pair is already
        # memoised, which need no payload at all.  These shared fetches
        # belong to no single query, so their I/O is in BatchStats only.
        fetch_start = time.perf_counter()
        page_payloads: dict[int, list] = {}
        if self.dedupe_pages:
            fetch_pages: set[int] = set()
            for query, _, _, candidates in per_query:
                rect = query.rect
                fetch_pages.update(
                    addr.page_id
                    for _, addr in candidates
                    if memo is None or (addr, rect) not in memo
                )
            for page_id in sorted(fetch_pages):
                page_payloads[page_id] = method.data_file.read_page(page_id)
            result.batch.data_page_fetches = len(fetch_pages)
        result.batch.unique_data_pages = len(needed_pages)
        result.batch.fetch_seconds = time.perf_counter() - fetch_start

        # Phase 3: refine per query from the shared pages + probability memo.
        for query, stats, answer, candidates in per_query:
            q_start = time.perf_counter()
            q_reads, q_hits = io.reads, io.cache_hits
            fetched = refine_with_engine(
                self.engine,
                candidates,
                query,
                method.data_file,
                stats,
                answer.object_ids,
                pages=page_payloads if self.dedupe_pages else None,
                memo=memo,
            )
            if not self.dedupe_pages:
                result.batch.data_page_fetches += fetched
            stats.physical_reads += io.reads - q_reads
            stats.cache_hits += io.cache_hits - q_hits
            stats.result_count = len(answer.object_ids)
            stats.wall_seconds += time.perf_counter() - q_start
            result.answers.append(answer)
            result.workload.add(stats)

        if not self.dedupe_pages:
            result.batch.fetch_seconds += sum(
                s.fetch_seconds for _, s, _, _ in per_query
            )
        self._settle_shard_stats(result, shard_stats, shard_baseline)
        self._finalise(
            result, per_query, io, reads0, writes0, hits0,
            (cache_hits0, cache_misses0), pool0, start,
        )
        return result

    # ------------------------------------------------------------------
    # parallel path: filter / fetch / refine overlap
    # ------------------------------------------------------------------
    def _run_parallel(self, queries: Sequence[ProbRangeQuery]) -> BatchResult:
        start = time.perf_counter()
        method = self.method
        io = method.io
        reads0, writes0, hits0 = io.reads, io.writes, io.cache_hits
        cache_hits0, cache_misses0 = self.engine.cache.counters()
        pool0 = pool_counters(self._pools)
        memo = self._prob_memo if self.memoize else None
        latency = self.io_latency_seconds

        result = BatchResult()
        result.batch.queries = len(queries)
        result.batch.parallelism = self.parallelism
        shard_stats = self._new_shard_stats()
        shard_baseline = self._shard_io_baseline()

        fetch_clock: list[float] = []

        def fetch(page_id: int) -> list:
            t0 = time.perf_counter()
            payloads = method.data_file.read_page(page_id)
            if latency > 0.0:
                time.sleep(latency)
            fetch_clock.append(time.perf_counter() - t0)
            return payloads

        per_query: list[tuple[ProbRangeQuery, QueryStats, QueryAnswer, list]] = []
        needed_pages: set[int] = set()
        page_futures: dict[int, Future] = {}
        refine_futures: list[Future] = []
        fetch_count = 0

        # One fetch worker models the single simulated disk arm; the
        # refinement pool does the Monte-Carlo work.  Refine tasks block
        # on fetch futures from a *different* executor, so the pools
        # cannot deadlock on each other.
        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="batch-fetch"
        ) as io_pool, ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="batch-refine"
        ) as cpu_pool:

            def loader(page_id: int) -> list:
                if self.dedupe_pages:
                    return page_futures[page_id].result()
                # Undeduped mode still routes every read through the
                # single fetch thread so the shared IOCounter and buffer
                # pool see one writer.
                return io_pool.submit(fetch, page_id).result()

            def refine(
                query: ProbRangeQuery,
                stats: QueryStats,
                answer: QueryAnswer,
                candidates: list,
            ) -> None:
                t0 = time.perf_counter()
                refine_with_engine(
                    self.engine,
                    candidates,
                    query,
                    method.data_file,
                    stats,
                    answer.object_ids,
                    page_loader=loader,
                    memo=memo,
                    attribute_cache=False,  # batch-level deltas only
                )
                stats.result_count = len(answer.object_ids)
                stats.wall_seconds += time.perf_counter() - t0

            def schedule(
                query: ProbRangeQuery,
                stats: QueryStats,
                answer: QueryAnswer,
                filtered: FilterResult,
            ) -> None:
                """Queue one filtered query's page fetches and refinement."""
                stats.node_accesses = filtered.node_accesses
                stats.validated_directly = len(filtered.validated)
                stats.pruned = filtered.pruned
                stats.shard_probes = filtered.shard_probes
                stats.shards_pruned = filtered.shards_pruned
                answer.object_ids.extend(filtered.validated)
                candidates = filtered.candidates
                rect = query.rect
                for _, addr in candidates:
                    needed_pages.add(addr.page_id)
                    if (
                        self.dedupe_pages
                        and addr.page_id not in page_futures
                        and (memo is None or (addr, rect) not in memo)
                    ):
                        page_futures[addr.page_id] = io_pool.submit(
                            fetch, addr.page_id
                        )
                per_query.append((query, stats, answer, candidates))
                refine_futures.append(
                    cpu_pool.submit(refine, query, stats, answer, candidates)
                )

            if shard_stats is None:
                # Phase 1 on the main thread; fetch and refine tasks start
                # flowing while later queries are still being filtered.
                for query in queries:
                    q_start = time.perf_counter()
                    stats = QueryStats()
                    answer = QueryAnswer(stats=stats)
                    filtered = method.filter_candidates(query)
                    stats.filter_seconds = time.perf_counter() - q_start
                    stats.wall_seconds = stats.filter_seconds
                    schedule(query, stats, answer, filtered)
            else:
                # Sharded phase 1: route every query on the main thread
                # (cheap and deterministic), group queries by identical
                # shard-overlap sets, and run the filter probes of each
                # shard group on the worker pool — shard structures are
                # read-only during queries and their counters/pools are
                # lock-protected, so concurrent probes of one shard are
                # safe.  A group's members are chunked across tasks so
                # an early query's probes resolve without waiting for
                # the whole group: its fetch and refinement overlap the
                # remaining filter work, as in the monolithic path.
                routes = [method.route(query) for query in queries]
                groups: dict[frozenset[int], list[int]] = {}
                for index, route in enumerate(routes):
                    groups.setdefault(frozenset(route), []).append(index)

                def probe_chunk(
                    shard_id: int, members: list[int]
                ) -> dict[int, tuple[FilterResult, float]]:
                    shard = method.shards[shard_id]
                    out: dict[int, tuple[FilterResult, float]] = {}
                    for index in members:
                        t0 = time.perf_counter()
                        filtered = shard.filter_candidates(queries[index])
                        out[index] = (filtered, time.perf_counter() - t0)
                    return out

                probe_futures: list[list[tuple[int, Future]]] = [
                    [] for _ in queries
                ]
                for key, members in sorted(
                    groups.items(), key=lambda item: item[1][0]
                ):
                    chunks = [
                        members[at : at + _PROBE_CHUNK]
                        for at in range(0, len(members), _PROBE_CHUNK)
                    ]
                    for shard_id in sorted(key):
                        for chunk in chunks:
                            future = cpu_pool.submit(
                                probe_chunk, shard_id, chunk
                            )
                            for index in chunk:
                                probe_futures[index].append((shard_id, future))
                for index, query in enumerate(queries):
                    stats = QueryStats()
                    answer = QueryAnswer(stats=stats)
                    probes: dict[int, tuple[FilterResult, float]] = {}
                    for shard_id, future in probe_futures[index]:
                        probes[shard_id] = future.result()[index]
                    route = routes[index]
                    filtered = method.merge_filter(
                        route, [probes[shard_id][0] for shard_id in route]
                    )
                    for shard_id in route:
                        self._tally_probe(
                            shard_stats[shard_id], *probes[shard_id]
                        )
                    # Per-phase wall-clock once per query: each probe
                    # bills its own elapsed time exactly once here — the
                    # group task's other queries never land on this one.
                    stats.filter_seconds = sum(
                        elapsed for _, elapsed in probes.values()
                    )
                    stats.wall_seconds = stats.filter_seconds
                    schedule(query, stats, answer, filtered)
            for future in refine_futures:
                future.result()
            fetch_count = len(fetch_clock)

        for _, stats, answer, _ in per_query:
            result.answers.append(answer)
            result.workload.add(stats)

        result.batch.unique_data_pages = len(needed_pages)
        result.batch.data_page_fetches = fetch_count
        result.batch.fetch_seconds = sum(fetch_clock)
        self._settle_shard_stats(result, shard_stats, shard_baseline)
        self._finalise(
            result, per_query, io, reads0, writes0, hits0,
            (cache_hits0, cache_misses0), pool0, start,
        )
        return result

    def _finalise(
        self,
        result: BatchResult,
        per_query: list,
        io,
        reads0: int,
        writes0: int,
        hits0: int,
        cache_baseline: tuple[int, int],
        pool_baseline: tuple[int, int, int],
        start: float,
    ) -> None:
        result.batch.logical_data_page_reads = sum(
            s.data_page_reads for _, s, _, _ in per_query
        )
        result.batch.shard_probes = sum(
            s.shard_probes for _, s, _, _ in per_query
        )
        result.batch.shards_pruned = sum(
            s.shards_pruned for _, s, _, _ in per_query
        )
        result.batch.prob_computations = sum(
            s.prob_computations for _, s, _, _ in per_query
        )
        result.batch.memo_hits = sum(s.memoized_probs for _, s, _, _ in per_query)
        result.batch.filter_seconds = sum(
            s.filter_seconds for _, s, _, _ in per_query
        )
        result.batch.refine_seconds = sum(
            s.refine_seconds for _, s, _, _ in per_query
        )
        result.batch.physical_reads = io.reads - reads0
        result.batch.physical_writes = io.writes - writes0
        result.batch.cache_hits = io.cache_hits - hits0
        cache_hits1, cache_misses1 = self.engine.cache.counters()
        result.batch.sample_cache_hits = cache_hits1 - cache_baseline[0]
        result.batch.sample_cache_misses = cache_misses1 - cache_baseline[1]
        pool1 = pool_counters(self._pools)
        result.batch.pool_hits = pool1[0] - pool_baseline[0]
        result.batch.pool_misses = pool1[1] - pool_baseline[1]
        result.batch.pool_ghost_hits = pool1[2] - pool_baseline[2]
        if self._pools:
            result.batch.pool_policy = self._pools[0].policy
        result.batch.wall_seconds = time.perf_counter() - start
