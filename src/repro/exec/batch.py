"""Batched execution: amortise I/O and Monte-Carlo work across a workload.

Running a workload query-by-query repeats two kinds of work whenever the
queries overlap:

* the same **data page** is fetched once per query that has a candidate on
  it (the refinement step of Section 5.2 dedupes within one query only);
* the same ``(object, query rectangle)`` **appearance probability** is
  recomputed whenever two queries share a rectangle at different
  thresholds — the exact access pattern of the Fig. 10 experiment, where
  one set of rectangles is swept across five thresholds.

The :class:`BatchExecutor` closes both gaps.  It runs every query's filter
phase first, takes the union of candidate data pages, fetches each page
once for the entire batch, then refines per query with a memo keyed on
``(object_id, query_rect)``.  The Monte-Carlo estimator derives its sample
stream from ``(seed, object_id)``, so a memoised value is bit-identical to
a recomputed one — memoisation changes cost, never answers.

Per-query :class:`~repro.core.stats.QueryStats` keep their *logical*
meaning (a query that needed three data pages reports three data-page
reads even if the batch fetched them earlier); the batch-level savings
show up in the physical counters and in :class:`BatchStats`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import QueryStats, WorkloadStats
from repro.exec.access import AccessMethod
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject

__all__ = ["BatchExecutor", "BatchResult", "BatchStats"]


@dataclass
class BatchStats:
    """Batch-level cost summary (what batching saved)."""

    queries: int = 0
    unique_data_pages: int = 0
    data_page_fetches: int = 0
    logical_data_page_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    cache_hits: int = 0
    prob_computations: int = 0
    memo_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def data_pages_saved(self) -> int:
        """Page fetches avoided by batch-level deduplication.

        Zero when ``dedupe_pages=False`` — every query then fetches its
        own pages, so ``data_page_fetches == logical_data_page_reads``.
        """
        return self.logical_data_page_reads - self.data_page_fetches

    @property
    def memo_hit_rate(self) -> float:
        total = self.prob_computations + self.memo_hits
        return self.memo_hits / total if total else 0.0


@dataclass
class BatchResult:
    """Answers (in submission order) plus per-query and batch statistics."""

    answers: list[QueryAnswer] = field(default_factory=list)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    batch: BatchStats = field(default_factory=BatchStats)


class BatchExecutor:
    """Run workloads against one access method with cross-query reuse.

    Args:
        method: the structure to execute against.
        memoize: share appearance-probability results across queries keyed
            on ``(object_id, query_rect)``.  The memo persists across
            :meth:`run` calls until :meth:`clear_memo`.
        dedupe_pages: fetch each candidate data page once per batch rather
            than once per query.
    """

    def __init__(
        self,
        method: AccessMethod,
        *,
        memoize: bool = True,
        dedupe_pages: bool = True,
    ):
        self.method = method
        self.memoize = memoize
        self.dedupe_pages = dedupe_pages
        self._prob_memo: dict[tuple[int, Rect], float] = {}

    def clear_memo(self) -> None:
        """Drop memoised appearance probabilities."""
        self._prob_memo.clear()

    @property
    def memo_size(self) -> int:
        return len(self._prob_memo)

    def run(self, queries: Sequence[ProbRangeQuery]) -> BatchResult:
        """Execute the whole workload, amortising page fetches and P_app."""
        start = time.perf_counter()
        method = self.method
        io = method.io
        reads0, writes0, hits0 = io.reads, io.writes, io.cache_hits

        result = BatchResult()
        result.batch.queries = len(queries)

        # Phase 1: every query's filter pass (per-query node accounting;
        # the filter's physical/cache split is attributed per query).
        per_query: list[tuple[ProbRangeQuery, QueryStats, QueryAnswer, list]] = []
        needed_pages: set[int] = set()
        for query in queries:
            q_start = time.perf_counter()
            q_reads, q_hits = io.reads, io.cache_hits
            stats = QueryStats()
            answer = QueryAnswer(stats=stats)
            filtered = method.filter_candidates(query)
            stats.node_accesses = filtered.node_accesses
            stats.validated_directly = len(filtered.validated)
            stats.pruned = filtered.pruned
            answer.object_ids.extend(filtered.validated)
            stats.physical_reads = io.reads - q_reads
            stats.cache_hits = io.cache_hits - q_hits
            stats.wall_seconds = time.perf_counter() - q_start
            needed_pages.update(addr.page_id for _, addr in filtered.candidates)
            per_query.append((query, stats, answer, filtered.candidates))

        # Phase 2: fetch the union of candidate pages once for the batch.
        # These shared fetches belong to no single query, so their I/O is
        # reported in BatchStats only.
        page_payloads: dict[int, list] = {}
        if self.dedupe_pages:
            for page_id in sorted(needed_pages):
                page_payloads[page_id] = method.data_file.read_page(page_id)
            result.batch.data_page_fetches = len(needed_pages)
        result.batch.unique_data_pages = len(needed_pages)

        # Phase 3: refine per query from the shared pages + probability memo.
        for query, stats, answer, candidates in per_query:
            q_start = time.perf_counter()
            q_reads, q_hits = io.reads, io.cache_hits
            by_page: dict[int, list] = {}
            for oid, address in candidates:
                by_page.setdefault(address.page_id, []).append((oid, address))
            for page_id, group in sorted(by_page.items()):
                if self.dedupe_pages:
                    payloads = page_payloads[page_id]
                else:
                    payloads = method.data_file.read_page(page_id)
                    result.batch.data_page_fetches += 1
                stats.data_page_reads += 1
                for oid, address in group:
                    obj = payloads[address.slot]
                    if not isinstance(obj, UncertainObject):  # pragma: no cover
                        raise TypeError(
                            f"data page {page_id} slot {address.slot} is not an object"
                        )
                    p_app = self._appearance(obj, query.rect, stats)
                    if p_app >= query.threshold:
                        answer.object_ids.append(oid)
            stats.physical_reads += io.reads - q_reads
            stats.cache_hits += io.cache_hits - q_hits
            stats.result_count = len(answer.object_ids)
            stats.wall_seconds += time.perf_counter() - q_start
            result.answers.append(answer)
            result.workload.add(stats)

        result.batch.logical_data_page_reads = sum(
            s.data_page_reads for _, s, _, _ in per_query
        )
        result.batch.prob_computations = sum(
            s.prob_computations for _, s, _, _ in per_query
        )
        result.batch.memo_hits = sum(s.memoized_probs for _, s, _, _ in per_query)
        result.batch.physical_reads = io.reads - reads0
        result.batch.physical_writes = io.writes - writes0
        result.batch.cache_hits = io.cache_hits - hits0
        result.batch.wall_seconds = time.perf_counter() - start
        return result

    def _appearance(self, obj: UncertainObject, rect: Rect, stats: QueryStats) -> float:
        if not self.memoize:
            stats.prob_computations += 1
            return obj.appearance_probability(rect, self.method.estimator)
        key = (obj.oid, rect)
        cached = self._prob_memo.get(key)
        if cached is not None:
            stats.memoized_probs += 1
            return cached
        value = obj.appearance_probability(rect, self.method.estimator)
        stats.prob_computations += 1
        self._prob_memo[key] = value
        return value
