"""The unified query-execution layer.

Separates *structures* (U-tree, U-PCR, sequential scan — anything
implementing the :class:`~repro.exec.access.AccessMethod` protocol) from
*execution*:

* :func:`~repro.exec.executor.execute_query` / :class:`QueryExecutor` —
  the shared filter → refine driver every ``query()`` method delegates to;
* :class:`~repro.exec.batch.BatchExecutor` — workload execution with
  batch-deduplicated data-page fetches and memoised appearance
  probabilities;
* :class:`~repro.exec.planner.Planner` — cost-model-driven access-method
  selection per query.

Pair any of these with a :class:`repro.storage.bufferpool.BufferPool` to
separate physical from logical I/O; with no pool (or capacity 0) all
accounting reproduces the paper's uncached numbers exactly.
"""

from repro.exec.access import AccessMethod, FilterResult
from repro.exec.batch import BatchExecutor, BatchResult, BatchStats
from repro.exec.executor import (
    QueryExecutor,
    execute_query,
    execute_workload,
    measure_delete_drain,
    measure_insert_build,
)
from repro.exec.planner import PlannedQuery, Planner, PlanReport, ScanCostModel

__all__ = [
    "AccessMethod",
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "FilterResult",
    "PlanReport",
    "PlannedQuery",
    "Planner",
    "QueryExecutor",
    "ScanCostModel",
    "execute_query",
    "execute_workload",
    "measure_delete_drain",
    "measure_insert_build",
]
