"""The unified query-execution layer.

Separates *structures* (U-tree, U-PCR, sequential scan — anything
implementing the :class:`~repro.exec.access.AccessMethod` protocol) from
*execution*:

* :func:`~repro.exec.executor.execute_query` / :class:`QueryExecutor` —
  the shared filter → refine driver every ``query()`` method delegates to;
* :class:`~repro.exec.refine.RefinementEngine` — vectorized sample-reuse
  appearance-probability evaluation (per-object clouds drawn once into a
  bounded cache, whole batches answered with stacked mask reductions,
  bit-identical to the scalar estimator);
* :class:`~repro.exec.batch.BatchExecutor` — workload execution with
  batch-deduplicated data-page fetches, memoised appearance
  probabilities, and optional thread-pool overlap of its filter / fetch /
  refine phases (``parallelism``);
* :class:`~repro.exec.planner.Planner` — cost-model-driven access-method
  selection per query, self-calibrating from observed workloads;
* :class:`~repro.exec.shard.ShardedAccessMethod` — ``N`` spatially or
  hash-partitioned child structures behind one ``AccessMethod`` facade,
  with a :class:`~repro.exec.shard.ShardRouter` pruning and cost-ordering
  shard probes per query (answers stay bit-identical to the monolithic
  path; the batch executor adds shard-group parallel filtering);
* :class:`~repro.exec.resilience.BatchSupervisor` — graceful degradation
  down a ``process -> thread -> serial`` backend ladder on
  :class:`~repro.faults.FaultError`, with the fault taxonomy re-exported
  here (:class:`FaultError`, :class:`TransientIOError`,
  :class:`CorruptPageError`, :class:`WorkerError`,
  :class:`WorkerTimeout`, :class:`DegradedWarning`).

Pair any of these with a :class:`repro.storage.bufferpool.BufferPool` to
separate physical from logical I/O; with no pool (or capacity 0) all
accounting reproduces the paper's uncached numbers exactly.
"""

from repro.exec.access import AccessMethod, FilterResult
from repro.exec.batch import (
    SERIAL_FALLBACK_SAMPLE_OPS,
    BatchExecutor,
    BatchResult,
    BatchStats,
)
from repro.exec.mpexec import ProcessBatchExecutor, WorkerError, WorkerTimeout
from repro.exec.resilience import (
    BatchSupervisor,
    CorruptPageError,
    DegradedWarning,
    FaultError,
    TransientIOError,
)
from repro.exec.executor import (
    QueryExecutor,
    execute_query,
    execute_workload,
    measure_delete_drain,
    measure_insert_build,
)
from repro.exec.planner import (
    PlannedQuery,
    Planner,
    PlanReport,
    ScanCostModel,
    derive_data_records_per_page,
)
from repro.exec.refine import RefinementEngine, refine_with_engine
from repro.exec.tuner import AutoTuner, TunerDecision
from repro.exec.shard import (
    PARTITIONERS,
    ShardRouter,
    ShardedAccessMethod,
    hash_partition,
    str_tile_partition,
)

__all__ = [
    "AccessMethod",
    "AutoTuner",
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "BatchSupervisor",
    "CorruptPageError",
    "DegradedWarning",
    "FaultError",
    "FilterResult",
    "PARTITIONERS",
    "PlanReport",
    "PlannedQuery",
    "Planner",
    "ProcessBatchExecutor",
    "QueryExecutor",
    "RefinementEngine",
    "SERIAL_FALLBACK_SAMPLE_OPS",
    "ScanCostModel",
    "TransientIOError",
    "TunerDecision",
    "WorkerError",
    "WorkerTimeout",
    "ShardRouter",
    "ShardedAccessMethod",
    "derive_data_records_per_page",
    "execute_query",
    "execute_workload",
    "hash_partition",
    "measure_delete_drain",
    "measure_insert_build",
    "refine_with_engine",
    "str_tile_partition",
]
