"""The shared single-query driver and update-cost measurement helpers.

Before this layer existed, each access method duplicated the same ~25-line
query loop: start a timer, allocate stats, run its filter, hand survivors
to the refinement step, finalise counters.  :func:`execute_query` is that
loop written once against the :class:`~repro.exec.access.AccessMethod`
protocol, so structures only implement their filter phase.

Refinement runs through the :class:`~repro.exec.refine.RefinementEngine`:
by default every executor bound to a method shares that method's engine
(one per estimator), so a workload draws each object's Monte-Carlo cloud
once and every later query — from any executor — reuses it
(bit-identical values: the cache replays the estimator's seeded stream).

The executor also attributes I/O more finely than the original loops: it
snapshots the method's :class:`~repro.storage.pager.IOCounter` around the
query, so each :class:`~repro.core.stats.QueryStats` reports *physical*
page reads and buffer-pool hits alongside the logical counts.  Without a
buffer pool the physical and logical numbers coincide (the paper's
accounting).  Phase wall-clock (filter / fetch / refine) lands in the
same stats object.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.stats import QueryStats, WorkloadStats
from repro.exec.access import AccessMethod
from repro.exec.refine import RefinementEngine, refine_with_engine
from repro.storage.bufferpool import pools_of

__all__ = [
    "QueryExecutor",
    "execute_query",
    "execute_workload",
    "measure_insert_build",
    "measure_delete_drain",
]


def execute_query(
    method: AccessMethod,
    query: ProbRangeQuery,
    *,
    engine: RefinementEngine | None = None,
) -> QueryAnswer:
    """Answer one prob-range query: shared filter → engine refinement.

    With ``engine=None`` the method's shared engine serves the call
    (one sample cache per estimator, reused by every executor); pass an
    explicit engine to isolate reuse or accounting.
    """
    start = time.perf_counter()
    stats = QueryStats()
    answer = QueryAnswer(stats=stats)
    io = method.io
    reads_before = io.reads
    hits_before = io.cache_hits
    pools = pools_of(method)
    ghosts_before = sum(p.ghost_hits for p in pools)
    if engine is None:
        engine = RefinementEngine.for_method(method)

    filter_start = time.perf_counter()
    filtered = method.filter_candidates(query)
    stats.filter_seconds = time.perf_counter() - filter_start
    stats.node_accesses = filtered.node_accesses
    stats.validated_directly = len(filtered.validated)
    stats.pruned = filtered.pruned
    stats.shard_probes = filtered.shard_probes
    stats.shards_pruned = filtered.shards_pruned
    answer.object_ids.extend(filtered.validated)

    refine_with_engine(
        engine,
        filtered.candidates,
        query,
        method.data_file,
        stats,
        answer.object_ids,
    )

    stats.physical_reads = io.reads - reads_before
    stats.cache_hits = io.cache_hits - hits_before
    stats.pool_ghost_hits = sum(p.ghost_hits for p in pools) - ghosts_before
    stats.result_count = len(answer.object_ids)
    stats.wall_seconds = time.perf_counter() - start
    return answer


class QueryExecutor:
    """A bound executor: one access method, many queries.

    Holds the method plus one :class:`RefinementEngine`, so consecutive
    queries share cached sample clouds — the workload-level win the
    engine exists for.  Harness code holds "the thing that answers
    queries" without caring which structure (or engine) is underneath.
    """

    def __init__(self, method: AccessMethod, *, engine: RefinementEngine | None = None):
        self.method = method
        self.engine = engine if engine is not None else RefinementEngine.for_method(method)

    def execute(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer one query."""
        return execute_query(self.method, query, engine=self.engine)

    def run(self, queries: Iterable[ProbRangeQuery]) -> WorkloadStats:
        """Answer every query, aggregating workload statistics."""
        stats = WorkloadStats()
        for query in queries:
            stats.add(self.execute(query).stats)
        return stats


def execute_workload(
    method: AccessMethod,
    queries: Iterable[ProbRangeQuery],
    *,
    engine: RefinementEngine | None = None,
) -> WorkloadStats:
    """Run a workload through the shared executor (convenience form)."""
    return QueryExecutor(method, engine=engine).run(queries)


# ----------------------------------------------------------------------
# Update-cost measurement (the Fig. 11 harness), shared here so any
# updatable structure measures builds/drains identically.
# ----------------------------------------------------------------------

def measure_insert_build(tree, objects) -> list:
    """Insert every object, returning the per-insert ``UpdateCost`` list."""
    return [tree.insert(obj) for obj in objects]


def measure_delete_drain(tree, oids: Sequence[int], rng: np.random.Generator) -> list:
    """Delete all ``oids`` in random order, returning per-delete costs.

    Raises if any oid is missing — a drain that silently skips objects
    would under-report amortised deletion cost.
    """
    costs = []
    for idx in rng.permutation(len(oids)):
        cost = tree.delete(oids[idx])
        if cost is None:
            raise KeyError(f"object {oids[idx]} not present in the tree")
        costs.append(cost)
    return costs
