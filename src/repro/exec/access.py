"""The ``AccessMethod`` protocol: what the execution layer runs against.

Every structure in this library answers a prob-range query with the same
two-phase plan (Section 5.2 of the paper):

1. **filter** — walk pre-computed summaries, returning objects that are
   *validated* (provably qualify), *pruned* (provably fail) or left as
   *candidates* with the disk address of their detail record;
2. **refinement** — fetch each candidate's data page and evaluate the
   appearance probability by Monte-Carlo integration.

Historically each structure hand-rolled both phases inside its own
``query`` method.  The execution layer splits them: a structure only has
to implement :meth:`AccessMethod.filter_candidates` (phase 1) and expose
its data file + estimator; the shared drivers in
:mod:`repro.exec.executor` and :mod:`repro.exec.batch` own phase 2 and
all cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.storage.pager import DataFile, DiskAddress, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator

__all__ = ["AccessMethod", "FilterResult"]


@dataclass
class FilterResult:
    """Outcome of an access method's filter phase for one query.

    Attributes:
        validated: oids proven to qualify without a P_app computation.
        candidates: surviving ``(oid, address)`` pairs for refinement.
        node_accesses: logical page reads the filter performed (index
            nodes for trees, flat-file pages for the sequential scan).
        pruned: objects proven not to qualify (for a sharded method this
            includes every object of a router-pruned shard).
        shard_probes: per-shard filter passes a sharded method executed
            (0 for monolithic structures).
        shards_pruned: shards the router skipped outright.
    """

    validated: list[int] = field(default_factory=list)
    candidates: list[tuple[int, DiskAddress]] = field(default_factory=list)
    node_accesses: int = 0
    pruned: int = 0
    shard_probes: int = 0
    shards_pruned: int = 0


@runtime_checkable
class AccessMethod(Protocol):
    """Anything the executors can answer prob-range queries with.

    Implemented by :class:`repro.core.utree.UTree`,
    :class:`repro.core.upcr.UPCRTree` and
    :class:`repro.core.scan.SequentialScan`.
    """

    dim: int
    io: IOCounter
    data_file: DataFile
    estimator: AppearanceEstimator

    def filter_candidates(self, query: ProbRangeQuery) -> FilterResult:
        """Run the filter phase, leaving refinement to the executor."""
        ...

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer one query end to end (filter + refinement)."""
        ...
