"""Graceful degradation: run a batch down a ladder of backends.

The process executor supervises its own workers (respawn + fault-domain
retry, :mod:`repro.exec.mpexec`), and the storage layer scrubs corrupt
pages and retries flaky reads (:mod:`repro.storage.pager`).  What
neither can fix alone — a worker crash-loop past its retry budget, a
corrupt page detected inside a forked worker, a fault class nobody
anticipated — lands here: :class:`BatchSupervisor` re-runs the *whole
batch* on the next backend down a configured ladder, typically

    process  →  thread  →  serial

Answers are bit-identical at every level (the equivalence suite pins
it), so degradation trades throughput for availability and nothing
else.  Each descent emits a :class:`~repro.faults.DegradedWarning` and
is recorded in the surviving batch's
:class:`~repro.exec.batch.BatchStats` (``degraded_to``,
``fault_events``, plus the retry/respawn/scrub counters carried over
from the failed attempts), so ``explain()``-style reporting and the
chaos tests can see exactly what the runtime absorbed.

Only :class:`~repro.faults.FaultError` triggers a descent.  Programming
errors (``ValueError``, ``KeyError``, …) propagate untouched from the
first backend that raises them — re-running a bug on a slower backend
just repeats the bug.

The taxonomy itself lives in :mod:`repro.faults` (the storage layer
needs it below the exec package); it is re-exported here because this
module is the documented resilience surface.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

from repro.faults import (
    CorruptPageError,
    DegradedWarning,
    FaultError,
    TransientIOError,
    WorkerError,
    WorkerTimeout,
)

__all__ = [
    "BatchSupervisor",
    "CorruptPageError",
    "DegradedWarning",
    "FaultError",
    "TransientIOError",
    "WorkerError",
    "WorkerTimeout",
]


def _fault_summary(exc: BaseException) -> str:
    """One bounded line describing a fault (tracebacks can be pages)."""
    text = str(exc).strip().splitlines()
    head = text[0] if text else ""
    if len(head) > 200:
        head = head[:197] + "..."
    return f"{type(exc).__name__}: {head}"


class BatchSupervisor:
    """Run one query batch down a degradation ladder of executors.

    Args:
        ladder: ``(level_name, factory)`` pairs, most capable first.
            Factories are called lazily — a fault-free run builds only
            the first backend.  Each factory returns an object with a
            ``run(queries) -> BatchResult`` method (a
            :class:`~repro.exec.batch.BatchExecutor` or subclass).
        data_file: the method's :class:`~repro.storage.pager.DataFile`,
            when available — its integrity counters are delta'd around
            the run so scrubbed pages and absorbed transient retries
            surface in the batch stats.
    """

    def __init__(
        self,
        ladder: Sequence[tuple[str, Callable[[], object]]],
        *,
        data_file=None,
    ):
        if not ladder:
            raise ValueError("the degradation ladder needs at least one level")
        self.ladder = list(ladder)
        self.data_file = data_file

    def run(self, queries):
        """Execute ``queries``, descending the ladder on ``FaultError``.

        Returns the first surviving level's ``BatchResult``, annotated
        with everything absorbed on the way down.  Raises the last
        level's fault if even the bottom of the ladder fails.
        """
        df = self.data_file
        base = (
            (df.corrupt_pages_detected, df.pages_scrubbed, df.transient_retries)
            if df is not None
            else (0, 0, 0)
        )
        events: list[str] = []
        carried_retries = 0
        carried_respawns = 0
        for index, (level, factory) in enumerate(self.ladder):
            executor = factory()
            try:
                result = executor.run(queries)
            except FaultError as exc:
                # The failed attempt's supervision ledger still counts:
                # carry it into whichever level finally answers.
                carried_retries += getattr(executor, "_run_retries", 0)
                carried_respawns += getattr(executor, "_run_respawns", 0)
                events.append(f"{level}: {_fault_summary(exc)}")
                if index + 1 >= len(self.ladder):
                    raise
                next_level = self.ladder[index + 1][0]
                warnings.warn(
                    f"batch failed on the {level!r} backend "
                    f"({_fault_summary(exc)}); degrading to {next_level!r}",
                    DegradedWarning,
                    stacklevel=2,
                )
                continue
            batch = result.batch
            batch.fault_retries += carried_retries
            batch.worker_respawns += carried_respawns
            batch.fault_events[:0] = events
            if events:
                batch.degraded_to = level
            if df is not None:
                batch.corrupt_pages += df.corrupt_pages_detected - base[0]
                batch.pages_scrubbed += df.pages_scrubbed - base[1]
                batch.io_retries += df.transient_retries - base[2]
            return result
        raise AssertionError("unreachable: ladder exhausted without raising")
