"""The single ``REPRO_*`` environment-resolution point.

Every runtime knob this library reads from the environment goes through
this module: :func:`env_value` is the one ``os.environ`` accessor, and
:data:`KNOWN_ENV_KEYS` is the registry of every recognised key.  Nothing
else in the package (or its tests and benchmarks) touches ``os.environ``
directly, so a typo'd override — ``REPRO_FITLER_KERNEL=off`` silently
doing nothing — is caught by :func:`warn_unknown_keys`, which
:meth:`repro.api.ExecConfig.from_env` runs on every snapshot.

This module sits below everything (it imports only the standard
library), so the core structures, the storage layer, the experiment
harness and the ``repro.api`` facade can all share it without cycles.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Mapping

__all__ = [
    "KNOWN_ENV_KEYS",
    "ENV_PREFIX",
    "env_flag",
    "env_int",
    "env_value",
    "snapshot",
    "warn_unknown_keys",
]

ENV_PREFIX = "REPRO_"

# Every REPRO_* key the code base recognises, with what consumes it.
KNOWN_ENV_KEYS: dict[str, str] = {
    "REPRO_FILTER_KERNEL": "vectorized filter kernel on/off (ExecConfig.filter_kernel)",
    "REPRO_SHARD_PARALLELISM": "executor thread-pool width (ExecConfig.parallelism)",
    "REPRO_EXECUTOR": "batch backend thread|process (ExecConfig.executor)",
    "REPRO_FULL_SCALE": "paper-scale experiment parameters (ExecConfig.full_scale)",
    "REPRO_POOL_POLICY": "buffer-pool replacement lru|2q|arc (ExecConfig.pool_policy)",
    "REPRO_POOL_PROBATION": "2Q probation FIFO frames (ExecConfig.pool_probation)",
    "REPRO_PROBE_BOUND": "latency-bounded shard probing on/off (ExecConfig.probe_bound)",
    "REPRO_AUTO_TUNE": "workload-aware auto-tuner on/off (ExecConfig.auto_tune)",
    "REPRO_WAL": "write-ahead-logged durable saves on/off (ExecConfig.wal)",
    "REPRO_RECLAIM": "data-file free-slot reuse on/off (ExecConfig.reclaim)",
    "REPRO_ON_FAULT": "fault handling fail|degrade (ExecConfig.on_fault)",
    "REPRO_WORKER_TIMEOUT": "process-worker command deadline seconds (ExecConfig.worker_timeout)",
    "REPRO_MAX_RETRIES": "fault-domain retry budget (ExecConfig.max_retries)",
    "REPRO_CHECKSUM": "crc32 page checksums on/off (ExecConfig.checksum)",
    "REPRO_SERVE_HOST": "query-service bind address (ExecConfig.serve_host)",
    "REPRO_SERVE_PORT": "query-service TCP port, 0 = ephemeral (ExecConfig.serve_port)",
    "REPRO_MAX_INFLIGHT": "query-service admission bound (ExecConfig.max_inflight)",
    "REPRO_BATCH_WINDOW_MS": "cross-client batch-forming window ms (ExecConfig.batch_window_ms)",
    "REPRO_FAULT_EXHAUSTIVE": "exhaustive end-to-end crash sweep in the fault suite",
    "REPRO_SKIP_PERF_ASSERT": "skip wall-clock perf contracts (CI correctness matrix)",
    "REPRO_BENCH_SAMPLES": "Monte-Carlo budget for benchmark smoke runs",
    "REPRO_BENCH_ARTIFACT": "refinement-engine benchmark artifact path",
    "REPRO_SHARD_ARTIFACT": "shard-scaling benchmark artifact path",
    "REPRO_FILTER_ARTIFACT": "filter-kernel benchmark artifact path",
    "REPRO_MULTICORE_ARTIFACT": "multicore benchmark artifact path",
    "REPRO_AUTOTUNE_ARTIFACT": "autotune benchmark artifact path",
    "REPRO_STORAGE_ARTIFACT": "storage-engine benchmark artifact path",
    "REPRO_RESILIENCE_ARTIFACT": "resilience benchmark artifact path",
    "REPRO_SERVE_ARTIFACT": "query-service load-harness artifact path",
}

_TRUE_WORDS = ("1", "true", "yes", "on")


def env_value(key: str, default: str | None = None) -> str | None:
    """The raw value of one recognised ``REPRO_*`` key.

    Unknown keys are a programming error here (the registry exists so the
    warning in :func:`warn_unknown_keys` stays trustworthy).
    """
    if key not in KNOWN_ENV_KEYS:
        raise KeyError(
            f"{key!r} is not a registered REPRO_* key; add it to "
            "repro.env.KNOWN_ENV_KEYS"
        )
    return os.environ.get(key, default)


def env_flag(key: str, default: bool = False) -> bool:
    """A recognised key interpreted as a boolean flag."""
    raw = env_value(key)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUE_WORDS


def env_int(key: str, default: int) -> int:
    """A recognised key interpreted as an integer."""
    raw = env_value(key)
    if raw is None or not raw.strip():
        return default
    return int(raw)


def snapshot(environ: Mapping[str, str] | None = None) -> dict[str, str]:
    """All ``REPRO_*`` keys currently set (known or not)."""
    source = os.environ if environ is None else environ
    return {k: v for k, v in source.items() if k.startswith(ENV_PREFIX)}


def warn_unknown_keys(environ: Mapping[str, str] | None = None) -> list[str]:
    """Warn about set ``REPRO_*`` keys the code base does not recognise.

    Returns the offending keys (for tests).  A misspelt override that
    silently changes nothing is the worst kind of config bug, so
    :meth:`repro.api.ExecConfig.from_env` calls this on every resolve.
    """
    unknown = sorted(k for k in snapshot(environ) if k not in KNOWN_ENV_KEYS)
    if unknown:
        known = ", ".join(sorted(KNOWN_ENV_KEYS))
        warnings.warn(
            f"unrecognised REPRO_* environment keys ignored: {', '.join(unknown)} "
            f"(known keys: {known})",
            UserWarning,
            stacklevel=3,
        )
    return unknown
