"""A dense two-phase simplex linear-programming solver.

Section 4.4 of the paper fits conservative functional boxes by solving a
small linear program per dimension side and names the Simplex method as its
solver.  This module implements a self-contained tableau simplex so that
the library has no runtime dependency on an external LP package (scipy is
used only in the test-suite, as an oracle).

The solver handles the general form::

    minimise    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb_i <= x_i <= ub_i   (either bound may be infinite)

Internally the problem is normalised to standard form (non-negative
variables, equality constraints) via variable shifting/splitting and slack
variables, then solved with Dantzig pricing and a Bland's-rule fallback
that guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LPStatus", "LPResult", "solve_lp", "SimplexError"]

_EPS = 1e-9
_MAX_ITER_FACTOR = 200


class SimplexError(RuntimeError):
    """Raised when the solver cannot make progress (numerical breakdown)."""


class LPStatus:
    """Symbolic result statuses for :func:`solve_lp`."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP solve.

    Attributes:
        status: one of :class:`LPStatus` values.
        x: optimal variable assignment (original variable space), or None.
        objective: optimal objective value (original sense), or None.
        iterations: simplex pivots performed across both phases.
    """

    status: str
    x: np.ndarray | None
    objective: float | None
    iterations: int

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL


def solve_lp(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    bounds=None,
    maximize: bool = False,
) -> LPResult:
    """Solve a linear program with the two-phase simplex method.

    Args:
        c: objective coefficient vector of length n.
        a_ub, b_ub: inequality system ``a_ub @ x <= b_ub`` (may be None).
        a_eq, b_eq: equality system ``a_eq @ x == b_eq`` (may be None).
        bounds: per-variable ``(lo, hi)`` pairs; ``None`` entries mean
            unbounded on that side.  Defaults to ``(0, None)`` for every
            variable, matching the classic LP convention.
        maximize: if True, maximise instead of minimise.

    Returns:
        An :class:`LPResult`; ``x`` and ``objective`` are populated only
        when the status is optimal.
    """
    c = np.atleast_1d(np.asarray(c, dtype=np.float64))
    n = c.size
    if maximize:
        c = -c

    a_ub_m, b_ub_m = _as_system(a_ub, b_ub, n, "a_ub")
    a_eq_m, b_eq_m = _as_system(a_eq, b_eq, n, "a_eq")
    bound_pairs = _normalise_bounds(bounds, n)

    # --- normalise variables: x_i = lo_i + y_i (y >= 0), free x split ----
    # mapping: each original variable contributes one or two standard vars.
    pos_idx = np.full(n, -1, dtype=int)   # index of the positive part
    neg_idx = np.full(n, -1, dtype=int)   # index of the negative part (free vars)
    shift = np.zeros(n)
    extra_ub_rows = []                    # upper bounds become explicit rows

    n_std = 0
    for i, (lo, hi) in enumerate(bound_pairs):
        if lo is None and hi is None:
            pos_idx[i] = n_std
            neg_idx[i] = n_std + 1
            n_std += 2
        elif lo is None:
            # x <= hi only: substitute x = hi - y, y >= 0.
            pos_idx[i] = n_std
            neg_idx[i] = -2               # marker: negated variable
            shift[i] = hi
            n_std += 1
        else:
            pos_idx[i] = n_std
            shift[i] = lo
            n_std += 1
            if hi is not None:
                if hi < lo - _EPS:
                    return LPResult(LPStatus.INFEASIBLE, None, None, 0)
                extra_ub_rows.append((i, hi - lo))

    def to_std_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(n_std)
        for i in range(n):
            coeff = row[i]
            if coeff == 0.0:
                continue
            if neg_idx[i] == -2:
                out[pos_idx[i]] -= coeff
            else:
                out[pos_idx[i]] += coeff
                if neg_idx[i] >= 0:
                    out[neg_idx[i]] -= coeff
        return out

    def shift_offset(row: np.ndarray) -> float:
        return float(row @ shift)

    rows_ub = []
    rhs_ub = []
    for k in range(a_ub_m.shape[0]):
        rows_ub.append(to_std_row(a_ub_m[k]))
        rhs_ub.append(b_ub_m[k] - shift_offset(a_ub_m[k]))
    for i, cap in extra_ub_rows:
        unit = np.zeros(n)
        unit[i] = 1.0
        std = to_std_row(unit)
        rows_ub.append(std)
        rhs_ub.append(cap)

    rows_eq = []
    rhs_eq = []
    for k in range(a_eq_m.shape[0]):
        rows_eq.append(to_std_row(a_eq_m[k]))
        rhs_eq.append(b_eq_m[k] - shift_offset(a_eq_m[k]))

    c_std = to_std_row(c)
    obj_shift = float(c @ shift)

    status, y, iterations = _solve_standard(
        c_std,
        np.array(rows_ub).reshape(len(rows_ub), n_std),
        np.array(rhs_ub, dtype=np.float64),
        np.array(rows_eq).reshape(len(rows_eq), n_std),
        np.array(rhs_eq, dtype=np.float64),
    )
    if status != LPStatus.OPTIMAL:
        return LPResult(status, None, None, iterations)

    x = np.empty(n)
    for i in range(n):
        if neg_idx[i] == -2:
            x[i] = shift[i] - y[pos_idx[i]]
        elif neg_idx[i] >= 0:
            x[i] = y[pos_idx[i]] - y[neg_idx[i]]
        else:
            x[i] = shift[i] + y[pos_idx[i]]

    objective = float(c_std @ y) + obj_shift
    if maximize:
        objective = -objective
    return LPResult(LPStatus.OPTIMAL, x, objective, iterations)


def _as_system(a, b, n: int, name: str) -> tuple[np.ndarray, np.ndarray]:
    if a is None or b is None or (hasattr(a, "__len__") and len(a) == 0):
        return np.zeros((0, n)), np.zeros(0)
    a_m = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b_m = np.atleast_1d(np.asarray(b, dtype=np.float64))
    if a_m.shape != (b_m.size, n):
        raise ValueError(f"{name} has shape {a_m.shape}, expected ({b_m.size}, {n})")
    return a_m, b_m


def _normalise_bounds(bounds, n: int) -> list[tuple[float | None, float | None]]:
    if bounds is None:
        return [(0.0, None)] * n
    pairs = list(bounds)
    if len(pairs) != n:
        raise ValueError(f"expected {n} bound pairs, got {len(pairs)}")
    out = []
    for lo, hi in pairs:
        lo_f = None if lo is None or lo == -np.inf else float(lo)
        hi_f = None if hi is None or hi == np.inf else float(hi)
        if lo_f is not None and hi_f is not None and lo_f > hi_f:
            raise ValueError(f"bound ({lo_f}, {hi_f}) is empty")
        out.append((lo_f, hi_f))
    return out


def _solve_standard(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
) -> tuple[str, np.ndarray | None, int]:
    """Solve min c.y, a_ub y <= b_ub, a_eq y == b_eq, y >= 0."""
    n = c.size
    n_ub = a_ub.shape[0]
    n_eq = a_eq.shape[0]
    m = n_ub + n_eq

    # Build equality system with slacks: [A_ub | I] y_s = b_ub ; A_eq y = b_eq.
    a = np.zeros((m, n + n_ub))
    b = np.concatenate([b_ub, b_eq])
    if n_ub:
        a[:n_ub, :n] = a_ub
        a[:n_ub, n:] = np.eye(n_ub)
    if n_eq:
        a[n_ub:, :n] = a_eq

    # Flip rows so b >= 0.
    for r in range(m):
        if b[r] < 0:
            a[r] *= -1.0
            b[r] *= -1.0

    n_total = n + n_ub
    # Rows whose slack has coefficient +1 can use it as the initial basis.
    basis = np.full(m, -1, dtype=int)
    needs_artificial = []
    for r in range(m):
        if r < n_ub and a[r, n + r] == 1.0:
            basis[r] = n + r
        else:
            needs_artificial.append(r)

    iterations = 0
    if needs_artificial:
        # Phase 1: add artificials for uncovered rows, minimise their sum.
        n_art = len(needs_artificial)
        a1 = np.zeros((m, n_total + n_art))
        a1[:, :n_total] = a
        for k, r in enumerate(needs_artificial):
            a1[r, n_total + k] = 1.0
            basis[r] = n_total + k
        c1 = np.zeros(n_total + n_art)
        c1[n_total:] = 1.0
        status, it = _simplex_core(a1, b, c1, basis)
        iterations += it
        if status != LPStatus.OPTIMAL:
            return LPStatus.INFEASIBLE, None, iterations
        phase1_obj = float(c1[basis] @ b)
        if phase1_obj > 1e-7:
            return LPStatus.INFEASIBLE, None, iterations
        # Drive any artificial variables out of the basis; rows whose
        # artificial cannot leave are redundant (all-zero) and are dropped.
        redundant = []
        for r in range(m):
            if basis[r] >= n_total:
                pivot_col = -1
                for j in range(n_total):
                    if abs(a1[r, j]) > _EPS:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(a1, b, r, pivot_col)
                    basis[r] = pivot_col
                else:
                    redundant.append(r)
        if redundant:
            keep = [r for r in range(m) if r not in set(redundant)]
            a1 = a1[keep]
            b = b[keep]
            basis = basis[keep]
            m = len(keep)
        a = a1[:, :n_total]

    c_ext = np.zeros(n_total)
    c_ext[:n] = c
    status, it = _simplex_core(a, b, c_ext, basis)
    iterations += it
    if status != LPStatus.OPTIMAL:
        return status, None, iterations

    y = np.zeros(n_total)
    for r in range(m):
        if 0 <= basis[r] < n_total:
            y[basis[r]] = b[r]
    return LPStatus.OPTIMAL, y[:n], iterations


def _pivot(a: np.ndarray, b: np.ndarray, row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot on (row, col)."""
    piv = a[row, col]
    a[row] /= piv
    b[row] /= piv
    for r in range(a.shape[0]):
        if r != row and abs(a[r, col]) > 0.0:
            factor = a[r, col]
            a[r] -= factor * a[row]
            b[r] -= factor * b[row]


def _simplex_core(a: np.ndarray, b: np.ndarray, c: np.ndarray, basis: np.ndarray) -> tuple[str, int]:
    """Run primal simplex on a system already in basic feasible form.

    ``a``, ``b`` and ``basis`` are modified in place; on return with
    OPTIMAL, ``basis[r]`` names the basic variable of row ``r`` whose value
    is ``b[r]``.
    """
    m, n_total = a.shape
    max_iter = _MAX_ITER_FACTOR * max(m + n_total, 16)
    bland_after = max_iter // 2
    iterations = 0

    while True:
        iterations += 1
        if iterations > max_iter:
            raise SimplexError("simplex did not terminate (cycling or ill-conditioning)")

        # Reduced costs: c_j - c_B . B^-1 A_j, with tableau already reduced.
        duals = c[basis]
        reduced = c - duals @ a

        if iterations > bland_after:
            # Bland's rule: smallest-index entering variable.
            entering = -1
            for j in range(n_total):
                if reduced[j] < -_EPS:
                    entering = j
                    break
        else:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -_EPS:
                entering = -1

        if entering < 0:
            return LPStatus.OPTIMAL, iterations

        if m == 0:
            # No constraints at all: an improving direction is unbounded.
            return LPStatus.UNBOUNDED, iterations

        col = a[:, entering]
        ratios = np.full(m, np.inf)
        positive = col > _EPS
        ratios[positive] = b[positive] / col[positive]
        leaving = int(np.argmin(ratios))
        if not np.isfinite(ratios[leaving]):
            return LPStatus.UNBOUNDED, iterations
        if iterations > bland_after:
            # Tie-break by smallest basis index (Bland).
            best = ratios[leaving]
            for r in range(m):
                if positive[r] and abs(ratios[r] - best) <= _EPS * (1 + abs(best)):
                    if basis[r] < basis[leaving]:
                        leaving = r

        _pivot(a, b, leaving, entering)
        basis[leaving] = entering
