"""Self-contained linear programming (two-phase simplex)."""

from repro.lp.simplex import LPResult, LPStatus, SimplexError, solve_lp

__all__ = ["LPResult", "LPStatus", "SimplexError", "solve_lp"]
