"""Synthetic spatial datasets standing in for the paper's TIGER data.

The paper's 2-D experiments use two real point sets from the US Census
TIGER archive: **LB** (53k points, Long Beach county) and **CA** (62k
points, California), normalised to ``[0, 10000]^2``.  Those files are not
shipped here, so we generate *seeded* synthetic stand-ins that preserve
the properties the experiments actually exercise: strong non-uniform
clustering (urban blocks), linear features (roads/coastlines) and the
normalised domain.  See DESIGN.md §4 for the substitution argument.

``to_uncertain_objects`` then applies the paper's uncertainty model: a
ball region of radius 250 (2.5 % of an axis) around each point, with a
Uniform pdf (LB) or a Constrained-Gaussian with ``sigma = 125`` (CA).
"""

from __future__ import annotations

import numpy as np

from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import ConstrainedGaussianDensity, Density, UniformDensity
from repro.uncertainty.regions import BallRegion

__all__ = [
    "DOMAIN_LOW",
    "DOMAIN_HIGH",
    "clustered_points",
    "long_beach_like",
    "california_like",
    "to_uncertain_objects",
]

DOMAIN_LOW = 0.0
DOMAIN_HIGH = 10000.0


def clustered_points(
    n: int,
    dim: int = 2,
    n_clusters: int = 40,
    cluster_std: float = 300.0,
    line_fraction: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """Clustered points with linear features in ``[0, 10000]^dim``.

    A Gaussian mixture provides urban-style blobs; ``line_fraction`` of
    the points are scattered along random segments between cluster
    centres, mimicking road networks.  Fully determined by ``seed``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= line_fraction <= 1.0:
        raise ValueError("line_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    centres = rng.uniform(DOMAIN_LOW, DOMAIN_HIGH, size=(n_clusters, dim))
    weights = rng.dirichlet(np.full(n_clusters, 1.2))

    n_line = int(n * line_fraction)
    n_blob = n - n_line

    assignment = rng.choice(n_clusters, size=n_blob, p=weights)
    stds = cluster_std * rng.uniform(0.4, 1.6, size=n_clusters)
    blob = centres[assignment] + rng.normal(size=(n_blob, dim)) * stds[assignment][:, None]

    if n_line > 0:
        a = centres[rng.integers(0, n_clusters, size=n_line)]
        b = centres[rng.integers(0, n_clusters, size=n_line)]
        t = rng.random((n_line, 1))
        jitter = rng.normal(scale=cluster_std * 0.15, size=(n_line, dim))
        line = a + t * (b - a) + jitter
        points = np.vstack([blob, line])
    else:
        points = blob

    return np.clip(points, DOMAIN_LOW, DOMAIN_HIGH)


def long_beach_like(n: int = 53_000, seed: int = 11) -> np.ndarray:
    """The LB stand-in: a dense county — many tight clusters, grid-like roads."""
    return clustered_points(
        n, dim=2, n_clusters=60, cluster_std=220.0, line_fraction=0.35, seed=seed
    )


def california_like(n: int = 62_000, seed: int = 23) -> np.ndarray:
    """The CA stand-in: a whole state — fewer, wider clusters, long corridors."""
    return clustered_points(
        n, dim=2, n_clusters=25, cluster_std=450.0, line_fraction=0.45, seed=seed
    )


def to_uncertain_objects(
    points: np.ndarray,
    radius: float = 250.0,
    pdf: str = "uniform",
    sigma: float | None = None,
    first_oid: int = 0,
) -> list[UncertainObject]:
    """Convert points to uncertain objects per the paper's Section 6 recipe.

    Args:
        points: ``(n, d)`` array of reported locations.
        radius: uncertainty-region radius (paper: 250 in 2-D, 125 in 3-D).
        pdf: ``"uniform"`` or ``"congau"`` (Constrained-Gaussian, Eq. 16).
        sigma: Con-Gau standard deviation; defaults to ``radius / 2``
            (the paper sets 125 for radius 250).
        first_oid: id of the first object (ids are consecutive).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if pdf not in ("uniform", "congau"):
        raise ValueError(f"unknown pdf family {pdf!r}")
    if sigma is None:
        sigma = radius / 2.0

    objects = []
    for i, point in enumerate(pts):
        region = BallRegion(point, radius)
        density: Density
        if pdf == "uniform":
            density = UniformDensity(region, marginal_seed=first_oid + i)
        else:
            density = ConstrainedGaussianDensity(
                region, sigma=sigma, marginal_seed=first_oid + i
            )
        objects.append(UncertainObject(first_oid + i, density))
    return objects
