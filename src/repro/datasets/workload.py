"""Query workload generation (paper Section 6).

A workload is a set of prob-range queries sharing the same parameters: the
search region is a square/cube with side length ``qs`` whose location
follows the distribution of the underlying data (the paper samples query
centres from the dataset), and all queries share one probability threshold
``pq``.  The paper uses 100 queries per workload.
"""

from __future__ import annotations

import numpy as np

from repro.core.query import ProbRangeQuery
from repro.geometry.rect import Rect

__all__ = ["make_workload", "workload_grid"]


def make_workload(
    points: np.ndarray,
    n_queries: int,
    qs: float,
    pq: float,
    seed: int = 0,
) -> list[ProbRangeQuery]:
    """Build a workload of ``n_queries`` prob-range queries.

    Args:
        points: ``(n, d)`` data points; query centres are sampled from
            them so the query distribution follows the data distribution.
        n_queries: queries per workload (paper: 100).
        qs: side length of the (hyper-)square search region.
        pq: probability threshold shared by the workload.
        seed: RNG seed for centre selection.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if n_queries < 1:
        raise ValueError("n_queries must be positive")
    if qs <= 0:
        raise ValueError("qs must be positive")
    rng = np.random.default_rng(seed)
    centres = pts[rng.integers(0, pts.shape[0], size=n_queries)]
    half = qs / 2.0
    return [
        ProbRangeQuery(Rect.from_center(centre, half), pq) for centre in centres
    ]


def workload_grid(
    points: np.ndarray,
    n_queries: int,
    qs_values: list[float],
    pq_values: list[float],
    seed: int = 0,
) -> dict[tuple[float, float], list[ProbRangeQuery]]:
    """Workloads for every (qs, pq) combination, keyed by the pair.

    All workloads with the same ``qs`` share query centres (only the
    threshold differs), mirroring how the paper sweeps one parameter while
    fixing the other.
    """
    grids: dict[tuple[float, float], list[ProbRangeQuery]] = {}
    for i, qs in enumerate(qs_values):
        base = make_workload(points, n_queries, qs, pq_values[0], seed=seed + i)
        for pq in pq_values:
            grids[(qs, pq)] = [ProbRangeQuery(q.rect, pq) for q in base]
    return grids
