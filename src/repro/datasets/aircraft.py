"""The 3-D Aircraft dataset (paper Section 6).

The paper builds its 3-D workload as follows: 2000 points sampled from LB
act as "airports"; each aircraft picks a random source/destination airport
pair, its (x, y) position is a random point on the connecting segment, and
its altitude is uniform in the (normalised) range [0, 10000].  Uncertainty
regions are spheres of radius 125 with Uniform pdfs.  We follow the same
recipe over the synthetic LB stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DOMAIN_HIGH, DOMAIN_LOW, long_beach_like, to_uncertain_objects
from repro.uncertainty.objects import UncertainObject

__all__ = ["aircraft_points", "aircraft_objects"]


def aircraft_points(
    n: int = 100_000,
    n_airports: int = 2000,
    seed: int = 47,
    airport_source: np.ndarray | None = None,
) -> np.ndarray:
    """Reported (x, y, altitude) locations of ``n`` aircraft."""
    if n < 1:
        raise ValueError("n must be positive")
    if n_airports < 2:
        raise ValueError("need at least two airports")
    rng = np.random.default_rng(seed)
    if airport_source is None:
        airport_source = long_beach_like(max(n_airports * 5, 10_000), seed=seed + 1)
    airports = airport_source[rng.choice(len(airport_source), size=n_airports, replace=False)]

    src = airports[rng.integers(0, n_airports, size=n)]
    dst = airports[rng.integers(0, n_airports, size=n)]
    t = rng.random((n, 1))
    xy = src + t * (dst - src)
    altitude = rng.uniform(DOMAIN_LOW, DOMAIN_HIGH, size=(n, 1))
    return np.hstack([xy, altitude])


def aircraft_objects(
    n: int = 100_000,
    radius: float = 125.0,
    seed: int = 47,
    first_oid: int = 0,
) -> list[UncertainObject]:
    """Aircraft as uncertain objects: spherical regions, Uniform pdfs."""
    points = aircraft_points(n, seed=seed)
    return to_uncertain_objects(points, radius=radius, pdf="uniform", first_oid=first_oid)
