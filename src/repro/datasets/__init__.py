"""Dataset generators and query workloads (paper Section 6)."""

from repro.datasets.aircraft import aircraft_objects, aircraft_points
from repro.datasets.synthetic import (
    california_like,
    clustered_points,
    long_beach_like,
    to_uncertain_objects,
)
from repro.datasets.workload import make_workload, workload_grid

__all__ = [
    "aircraft_objects",
    "aircraft_points",
    "california_like",
    "clustered_points",
    "long_beach_like",
    "make_workload",
    "to_uncertain_objects",
    "workload_grid",
]
