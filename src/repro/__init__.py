"""repro — a full reproduction of the U-tree (Tao et al., VLDB 2005).

Indexing multi-dimensional uncertain data with arbitrary probability
density functions: probabilistically constrained regions (PCRs),
conservative functional boxes (CFBs) fitted by linear programming, the
dynamic U-tree index, the U-PCR comparison structure, a sequential-scan
baseline, and the full experimental harness of the paper's Section 6.

Quickstart (the ``repro.api`` front door)::

    import numpy as np
    from repro import (
        BallRegion, Database, RangeSpec, Rect, UncertainObject,
        UniformDensity,
    )

    objects = [
        UncertainObject(
            i,
            UniformDensity(
                BallRegion(np.random.default_rng(i).uniform(0, 10000, 2), 250.0)
            ),
        )
        for i in range(100)
    ]
    db = Database.create(objects)
    result = db.query(RangeSpec(Rect([2000, 2000], [4000, 4000]), threshold=0.8))
    print(result.object_ids, result.stats.summary())

The structures, executors and storage primitives underneath remain
importable for research-grade wiring (catalog ablations, custom cost
models); ``Database``/``ExecConfig`` is the supported client surface.
"""

from repro.api import (
    Database,
    ExecConfig,
    Explanation,
    NearestSpec,
    QuerySpec,
    RangeSpec,
    Result,
    RunResult,
)
from repro.core.catalog import UCatalog
from repro.core.costmodel import CostEstimate, UTreeCostModel
from repro.core.cfb import LinearBoxFunction, fit_cfbs, fit_inner_cfb, fit_outer_cfb
from repro.core.nn import (
    NNCandidate,
    NNResult,
    expected_nearest_neighbors,
    probabilistic_nearest_neighbors,
)
from repro.core.pcr import PCRSet, compute_pcrs
from repro.core.pruning import CFBRules, PCRRules, Verdict
from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.scan import SequentialScan
from repro.core.stats import QueryStats, ShardStats, WorkloadStats
from repro.core.upcr import UPCRTree
from repro.core.utree import UpdateCost, UTree
from repro.exec.access import AccessMethod, FilterResult
from repro.exec.batch import BatchExecutor, BatchResult, BatchStats
from repro.exec.executor import QueryExecutor, execute_query, execute_workload
from repro.exec.planner import Planner, PlanReport, PlannedQuery, ScanCostModel
from repro.exec.refine import RefinementEngine, refine_with_engine
from repro.exec.shard import (
    ShardRouter,
    ShardedAccessMethod,
    hash_partition,
    str_tile_partition,
)
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.serve import BusyError, QueryServer, ServeClient, ServeError, ServedRun
from repro.storage.bufferpool import BufferPool
from repro.storage.pager import CompositeIOCounter, DataFile, DiskAddress, IOCounter
from repro.storage.serialize import load_utree, save_utree
from repro.uncertainty.montecarlo import (
    AppearanceEstimator,
    ObjectSamples,
    SampleCache,
    estimate_appearance_probability,
)
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    Density,
    HistogramDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    poisson_histogram,
    tabulate_density,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion, UncertaintyRegion

__version__ = "1.0.0"

__all__ = [
    "AccessMethod",
    "AppearanceEstimator",
    "BallRegion",
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "BoxRegion",
    "BufferPool",
    "BusyError",
    "CFBRules",
    "CompositeIOCounter",
    "ConstrainedGaussianDensity",
    "CostEstimate",
    "DataFile",
    "Database",
    "Density",
    "DiskAddress",
    "ExecConfig",
    "Explanation",
    "FilterResult",
    "HistogramDensity",
    "IOCounter",
    "LinearBoxFunction",
    "MixtureDensity",
    "NNCandidate",
    "NNResult",
    "NearestSpec",
    "ObjectSamples",
    "PCRRules",
    "PCRSet",
    "PlanReport",
    "PlannedQuery",
    "Planner",
    "ProbRangeQuery",
    "QueryAnswer",
    "QueryExecutor",
    "QueryServer",
    "QuerySpec",
    "QueryStats",
    "RStarTree",
    "RangeSpec",
    "RefinementEngine",
    "Result",
    "RunResult",
    "ScanCostModel",
    "RadialExponentialDensity",
    "Rect",
    "SampleCache",
    "SequentialScan",
    "ServeClient",
    "ServeError",
    "ServedRun",
    "ShardRouter",
    "ShardStats",
    "ShardedAccessMethod",
    "UCatalog",
    "UPCRTree",
    "UTree",
    "UTreeCostModel",
    "UncertainObject",
    "UncertaintyRegion",
    "UniformDensity",
    "UpdateCost",
    "Verdict",
    "WorkloadStats",
    "compute_pcrs",
    "estimate_appearance_probability",
    "execute_query",
    "execute_workload",
    "expected_nearest_neighbors",
    "fit_cfbs",
    "fit_inner_cfb",
    "fit_outer_cfb",
    "hash_partition",
    "load_utree",
    "poisson_histogram",
    "probabilistic_nearest_neighbors",
    "refine_with_engine",
    "save_utree",
    "str_tile_partition",
    "tabulate_density",
    "zipf_histogram",
]
