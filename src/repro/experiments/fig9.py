"""Figure 9 — query cost versus search-region size (pq = 0.6).

For each dataset (LB, CA, Aircraft) and each qs in {500 ... 2500}, the
paper reports per query: node accesses (I/O), the number of appearance-
probability computations annotated with the percentage of qualifying
objects validated directly (CPU), and total cost.  Expected shapes:

* the U-tree accesses far fewer nodes than U-PCR at every qs (fanout);
* both structures' costs grow with qs; prob computations are comparable,
  with U-PCR at best slightly ahead (tighter PCRs vs CFBs);
* the U-tree wins total cost everywhere.
"""

from __future__ import annotations

from repro.datasets.workload import make_workload
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import (
    DATASETS,
    build_sharded,
    build_upcr,
    build_utree,
    dataset_points,
)
from repro.experiments.harness import (
    format_table,
    run_workload,
    run_workload_batched,
    total_cost_seconds,
)

__all__ = ["run", "main", "QS_VALUES", "DEFAULT_PQ"]

QS_VALUES = (500.0, 1000.0, 1500.0, 2000.0, 2500.0)
DEFAULT_PQ = 0.6


def run(
    scale: Scale | None = None,
    datasets: tuple[str, ...] = DATASETS,
    qs_values: tuple[float, ...] = QS_VALUES,
    pq: float = DEFAULT_PQ,
    batched: bool = False,
    parallelism: int = 1,
    shards: int = 1,
    partitioner: str = "str",
    filter_kernel: str = "on",
) -> dict:
    """Sweep qs per dataset; returns the three panel series for each.

    ``batched=True`` runs each workload through the
    :class:`~repro.exec.batch.BatchExecutor` (cross-query page dedup and
    P_app memoisation) instead of query-at-a-time execution; logical I/O
    panels are unchanged, wall-clock and physical reads drop.
    ``parallelism >= 2`` (batched mode only) additionally overlaps the
    filter / fetch / refine phases on a thread pool.  Either way the
    refinement engine reuses each object's Monte-Carlo cloud across the
    workload, so the CPU panel charges masking work, not redundant
    sampling.

    ``shards >= 2`` partitions each dataset across that many child
    structures behind the shard router (``partitioner`` picks the
    :data:`~repro.exec.shard.PARTITIONERS` scheme) so the figure can be
    swept against sharded execution — answers are identical at any
    shard count; node-access panels then reflect routed probes.

    ``filter_kernel`` sweeps the vectorized filter-phase kernel:
    ``"on"`` (default) classifies leaf batches with stacked mask
    reductions, ``"off"`` runs the paper-exact scalar rules.  Verdicts,
    node accesses and prob-computation counts are identical either way —
    only ``total_cost_seconds`` moves, so two runs report
    scalar-vs-kernel wall-clock side by side.
    """
    scale = scale if scale is not None else active_scale()
    if batched:
        def runner(tree, workload):
            return run_workload_batched(tree, workload, parallelism=parallelism)
    else:
        runner = run_workload
    out: dict = {}
    for name in datasets:
        points = dataset_points(name, scale)
        if shards > 1:
            utree = build_sharded(
                name, scale, shards=shards, method="utree",
                partitioner=partitioner, filter_kernel=filter_kernel,
            )
            upcr = build_sharded(
                name, scale, shards=shards, method="upcr",
                partitioner=partitioner, filter_kernel=filter_kernel,
            )
        else:
            utree = build_utree(name, scale, filter_kernel=filter_kernel)
            upcr = build_upcr(name, scale, filter_kernel=filter_kernel)
        series: dict = {"qs": list(qs_values), "filter_kernel": filter_kernel}
        for label, tree in (("utree", utree), ("upcr", upcr)):
            ios, probs, validated, totals = [], [], [], []
            for i, qs in enumerate(qs_values):
                workload = make_workload(
                    points, scale.queries_per_workload, qs, pq, seed=300 + i
                )
                stats = runner(tree, workload)
                ios.append(stats.avg_node_accesses)
                probs.append(stats.avg_prob_computations)
                validated.append(stats.validated_percentage)
                totals.append(total_cost_seconds(stats, scale))
            series[label] = {
                "node_accesses": ios,
                "prob_computations": probs,
                "validated_pct": validated,
                "total_cost_seconds": totals,
            }
        out[name] = series
    return out


def main() -> None:
    results = run()
    for name, series in results.items():
        print(f"Figure 9 ({name}): cost vs query size, pq = {DEFAULT_PQ}")
        rows = []
        for i, qs in enumerate(series["qs"]):
            rows.append(
                [
                    int(qs),
                    series["utree"]["node_accesses"][i],
                    series["upcr"]["node_accesses"][i],
                    series["utree"]["prob_computations"][i],
                    series["upcr"]["prob_computations"][i],
                    f"{series['utree']['validated_pct'][i]:.0f}%",
                    f"{series['upcr']['validated_pct'][i]:.0f}%",
                    series["utree"]["total_cost_seconds"][i],
                    series["upcr"]["total_cost_seconds"][i],
                ]
            )
        print(
            format_table(
                [
                    "qs",
                    "IO(U-tree)",
                    "IO(U-PCR)",
                    "#Papp(U-tree)",
                    "#Papp(U-PCR)",
                    "val%(U-tree)",
                    "val%(U-PCR)",
                    "total(U-tree)",
                    "total(U-PCR)",
                ],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
