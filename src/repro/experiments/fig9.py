"""Figure 9 — query cost versus search-region size (pq = 0.6).

For each dataset (LB, CA, Aircraft) and each qs in {500 ... 2500}, the
paper reports per query: node accesses (I/O), the number of appearance-
probability computations annotated with the percentage of qualifying
objects validated directly (CPU), and total cost.  Expected shapes:

* the U-tree accesses far fewer nodes than U-PCR at every qs (fanout);
* both structures' costs grow with qs; prob computations are comparable,
  with U-PCR at best slightly ahead (tighter PCRs vs CFBs);
* the U-tree wins total cost everywhere.
"""

from __future__ import annotations

from repro.datasets.workload import make_workload
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import DATASETS, build_database, dataset_points
from repro.experiments.harness import (
    config_from_knobs,
    format_table,
    run_spec_workload,
    total_cost_seconds,
)

__all__ = ["run", "main", "QS_VALUES", "DEFAULT_PQ"]

QS_VALUES = (500.0, 1000.0, 1500.0, 2000.0, 2500.0)
DEFAULT_PQ = 0.6


def run(
    scale: Scale | None = None,
    datasets: tuple[str, ...] = DATASETS,
    qs_values: tuple[float, ...] = QS_VALUES,
    pq: float = DEFAULT_PQ,
    config=None,
    **legacy_knobs,
) -> dict:
    """Sweep qs per dataset; returns the three panel series for each.

    Execution is wired entirely by ``config`` (an
    :class:`repro.api.ExecConfig`); the harness queries one
    :class:`repro.api.Database` holding both structures per dataset.
    The default — ``ExecConfig(batched=False)`` — reproduces the paper's
    query-at-a-time accounting.  The interesting sweeps:

    * ``ExecConfig(batched=True, parallelism=N)`` runs each workload
      through the batched executor (cross-query page dedup, P_app
      memoisation; ``N >= 2`` overlaps filter / fetch / refine on a
      thread pool) — logical I/O panels are unchanged, wall-clock and
      physical reads drop;
    * ``ExecConfig(shards=N, partitioner=...)`` partitions each dataset
      behind the shard router — answers are identical at any shard
      count; node-access panels then reflect routed probes;
    * ``ExecConfig(filter_kernel="on"/"off")`` sweeps the vectorized
      filter kernel against the paper-exact scalar rules — verdicts and
      counts are identical, only ``total_cost_seconds`` moves.

    The pre-facade ``batched=``/``parallelism=``/``shards=``/
    ``partitioner=``/``filter_kernel=`` keywords still work as
    deprecation shims folding into ``config``.
    """
    scale = scale if scale is not None else active_scale()
    config = config_from_knobs(config, **legacy_knobs)
    out: dict = {}
    for name in datasets:
        points = dataset_points(name, scale)
        db = build_database(name, scale, methods=("utree", "upcr"), config=config)
        # The database is memoised across run() calls; dropping the P_app
        # memos here keeps repeated sweeps' cost counters reproducible
        # (pre-facade behaviour: a fresh executor per run call).
        db.clear_memos()
        series: dict = {
            "qs": list(qs_values),
            "config": db.config.summary(),
            "filter_kernel": "on" if db.config.kernel_enabled else "off",
        }
        for label in ("utree", "upcr"):
            ios, probs, validated, totals = [], [], [], []
            for i, qs in enumerate(qs_values):
                workload = make_workload(
                    points, scale.queries_per_workload, qs, pq, seed=300 + i
                )
                stats = run_spec_workload(db, workload, method=label)
                ios.append(stats.avg_node_accesses)
                probs.append(stats.avg_prob_computations)
                validated.append(stats.validated_percentage)
                totals.append(total_cost_seconds(stats, scale))
            series[label] = {
                "node_accesses": ios,
                "prob_computations": probs,
                "validated_pct": validated,
                "total_cost_seconds": totals,
            }
        out[name] = series
    return out


def main() -> None:
    results = run()
    for name, series in results.items():
        print(f"Figure 9 ({name}): cost vs query size, pq = {DEFAULT_PQ}")
        rows = []
        for i, qs in enumerate(series["qs"]):
            rows.append(
                [
                    int(qs),
                    series["utree"]["node_accesses"][i],
                    series["upcr"]["node_accesses"][i],
                    series["utree"]["prob_computations"][i],
                    series["upcr"]["prob_computations"][i],
                    f"{series['utree']['validated_pct'][i]:.0f}%",
                    f"{series['upcr']['validated_pct'][i]:.0f}%",
                    series["utree"]["total_cost_seconds"][i],
                    series["upcr"]["total_cost_seconds"][i],
                ]
            )
        print(
            format_table(
                [
                    "qs",
                    "IO(U-tree)",
                    "IO(U-PCR)",
                    "#Papp(U-tree)",
                    "#Papp(U-PCR)",
                    "val%(U-tree)",
                    "val%(U-PCR)",
                    "total(U-tree)",
                    "total(U-PCR)",
                ],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
