"""Run every experiment of Section 6 in sequence.

Usage::

    python -m repro.experiments.run_all            # reduced scale
    REPRO_FULL_SCALE=1 python -m repro.experiments.run_all

Dataset and index builds are cached across experiments within the run, so
this is considerably cheaper than running the six modules separately.
"""

from __future__ import annotations

import time

from repro.experiments import fig7, fig8, fig9, fig10, fig11, motivation, table1
from repro.experiments.config import active_scale

__all__ = ["main"]

_EXPERIMENTS = [
    ("Motivation", motivation.main),
    ("Figure 7", fig7.main),
    ("Figure 8", fig8.main),
    ("Table 1", table1.main),
    ("Figure 9", fig9.main),
    ("Figure 10", fig10.main),
    ("Figure 11", fig11.main),
]


def main() -> None:
    from repro.env import snapshot, warn_unknown_keys

    scale = active_scale()
    warn_unknown_keys()
    print(f"== U-tree reproduction: all experiments at scale '{scale.name}' ==")
    overrides = snapshot()
    if overrides:
        # Report what is *set*, not what every figure applies — each
        # main() runs under its own defaults plus these env overrides.
        text = ", ".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        print(f"== REPRO_* environment overrides: {text} ==")
    print()
    total_start = time.perf_counter()
    for label, runner in _EXPERIMENTS:
        start = time.perf_counter()
        runner()
        print(f"[{label} completed in {time.perf_counter() - start:.1f}s]\n")
    print(f"== all experiments done in {time.perf_counter() - total_start:.1f}s ==")


if __name__ == "__main__":
    main()
