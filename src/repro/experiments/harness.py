"""Shared experiment runner utilities: workloads, cost model, tables.

The paper reports three cost views per workload (Figs. 9-10): average node
accesses (I/O), average number of appearance-probability computations with
the directly-validated percentage (CPU), and total elapsed seconds.  Total
cost here is ``page_accesses * io_latency + measured CPU seconds`` —
the simulated-disk equivalent of the paper's wall-clock measurements.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.query import ProbRangeQuery
from repro.core.stats import WorkloadStats
from repro.exec.batch import BatchExecutor
from repro.exec.executor import execute_workload
from repro.exec.refine import RefinementEngine
from repro.experiments.config import Scale

__all__ = ["run_workload", "run_workload_batched", "total_cost_seconds", "format_table"]


def run_workload(
    tree,
    queries: Sequence[ProbRangeQuery],
    *,
    engine: RefinementEngine | None = None,
) -> WorkloadStats:
    """Run every query against ``tree`` through the shared executor.

    ``tree`` is any :class:`repro.exec.access.AccessMethod`; structures
    without a filter phase (legacy/test doubles exposing only ``query``)
    fall back to their own driver.  The executor refines through a
    :class:`RefinementEngine` held for the whole workload (pass your own
    to share sample clouds across workloads); all reported statistics
    keep the paper's per-pair meaning.
    """
    if hasattr(tree, "filter_candidates"):
        return execute_workload(tree, queries, engine=engine)
    stats = WorkloadStats()
    for query in queries:
        stats.add(tree.query(query).stats)
    return stats


def run_workload_batched(
    tree,
    queries: Sequence[ProbRangeQuery],
    *,
    parallelism: int = 1,
) -> WorkloadStats:
    """Run the workload through the batched executor (cross-query reuse).

    ``parallelism >= 2`` overlaps the filter / page-fetch / refine phases
    on a thread pool; ``1`` is the exact-accounting serial path.
    """
    return BatchExecutor(tree, parallelism=parallelism).run(queries).workload


def total_cost_seconds(stats: WorkloadStats, scale: Scale) -> float:
    """Average per-query total cost: simulated I/O latency plus CPU time."""
    return stats.avg_total_io * scale.io_latency_seconds + stats.avg_wall_seconds


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table used by all experiment CLIs."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
