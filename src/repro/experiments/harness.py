"""Shared experiment runner utilities: workloads, cost model, tables.

The paper reports three cost views per workload (Figs. 9-10): average node
accesses (I/O), average number of appearance-probability computations with
the directly-validated percentage (CPU), and total elapsed seconds.  Total
cost here is ``page_accesses * io_latency + measured CPU seconds`` —
the simulated-disk equivalent of the paper's wall-clock measurements.

Since the ``repro.api`` facade landed, the figure harnesses execute
through a :class:`repro.api.Database` (:func:`run_spec_workload`); the
pre-facade sweep knobs survive as deprecation shims
(:func:`config_from_knobs`, :func:`run_workload_batched`).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from repro.core.query import ProbRangeQuery
from repro.core.stats import WorkloadStats, format_aligned
from repro.exec.refine import RefinementEngine
from repro.experiments.config import Scale

__all__ = [
    "as_specs",
    "config_from_knobs",
    "format_table",
    "run_spec_workload",
    "run_workload",
    "run_workload_batched",
    "total_cost_seconds",
]

# The old per-figure sweep knobs and the ExecConfig field each maps to.
_LEGACY_KNOBS = {
    "batched": "batched",
    "parallelism": "parallelism",
    "shards": "shards",
    "partitioner": "partitioner",
    "filter_kernel": "filter_kernel",
}


def as_specs(queries: Sequence[ProbRangeQuery]):
    """Engine-level queries as the facade's declarative range specs."""
    from repro.api import RangeSpec

    return [RangeSpec(q.rect, q.threshold) for q in queries]


def run_spec_workload(db, queries: Sequence[ProbRangeQuery], *, method: str | None = None) -> WorkloadStats:
    """Run a workload through a :class:`repro.api.Database`.

    The facade executes under its own config (``batched``,
    ``parallelism`` and the rest all live there); ``method`` pins one of
    the database's access methods, as the figure sweeps need.
    """
    return db.run(as_specs(queries), method=method).workload


def config_from_knobs(config=None, *, stacklevel: int = 3, **knobs):
    """Fold the pre-facade sweep knobs into an :class:`ExecConfig`.

    The figure harnesses' old ``batched=``/``parallelism=``/``shards=``/
    ``partitioner=``/``filter_kernel=`` parameters are deprecated; this
    shim warns once per call site and rewrites them onto the config so
    existing scripts keep working.
    """
    from repro.api import ExecConfig

    unknown = [name for name in knobs if name not in _LEGACY_KNOBS]
    if unknown:
        raise TypeError(f"unknown harness knobs: {sorted(unknown)}")
    passed = {
        _LEGACY_KNOBS[name]: value for name, value in knobs.items() if value is not None
    }
    config = config if config is not None else ExecConfig(batched=False)
    if passed:
        warnings.warn(
            f"the {sorted(passed)} harness knobs are deprecated; pass "
            f"config=ExecConfig({', '.join(sorted(passed))}=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        # The old signatures accepted parallelism in unbatched runs and
        # silently ignored it ("parallelism (batched mode)"); keep that
        # contract instead of tripping ExecConfig's validation.
        if not passed.get("batched", config.batched):
            passed.pop("parallelism", None)
        config = config.with_options(**passed)
    return config


def run_workload(
    tree,
    queries: Sequence[ProbRangeQuery],
    *,
    engine: RefinementEngine | None = None,
) -> WorkloadStats:
    """Run every query against ``tree`` through the shared executor.

    ``tree`` is any :class:`repro.exec.access.AccessMethod`; structures
    without a filter phase (legacy/test doubles exposing only ``query``)
    fall back to their own driver.  The executor refines through a
    :class:`RefinementEngine` held for the whole workload (pass your own
    to share sample clouds across workloads); all reported statistics
    keep the paper's per-pair meaning.
    """
    from repro.exec.executor import execute_workload

    if hasattr(tree, "filter_candidates"):
        return execute_workload(tree, queries, engine=engine)
    stats = WorkloadStats()
    for query in queries:
        stats.add(tree.query(query).stats)
    return stats


def run_workload_batched(
    tree,
    queries: Sequence[ProbRangeQuery],
    *,
    parallelism: int = 1,
) -> WorkloadStats:
    """Deprecated: run the workload through the batched executor.

    Superseded by the facade — ``Database.run`` with
    ``ExecConfig(batched=True, parallelism=N)`` is the same execution
    path with the config resolved in one place.
    """
    warnings.warn(
        "run_workload_batched is deprecated; use repro.api.Database.run "
        "with ExecConfig(batched=True, parallelism=N)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.exec.batch import BatchExecutor

    return BatchExecutor(tree, parallelism=parallelism).run(queries).workload


def total_cost_seconds(stats: WorkloadStats, scale: Scale) -> float:
    """Average per-query total cost: simulated I/O latency plus CPU time."""
    return stats.avg_total_io * scale.io_latency_seconds + stats.avg_wall_seconds


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table used by all experiment CLIs."""
    return format_aligned(headers, rows)
