"""The Section 1 motivation, quantified.

The paper's introduction argues that conventional range search over the
*reported* locations of uncertain objects is "inadequate, because many
objects may have entered or left the search region since they contacted
the server last time" — i.e. its answers carry no quality guarantee.

This experiment measures that claim: objects drift away from their
reported location (within the uncertainty radius), a conventional
R*-tree answers range queries over the reports, and we score it against
the actual object positions.  The probabilistic answer (U-tree, threshold
``pq``) is scored on its own terms: every returned object really does
have appearance probability ≥ pq, and precision against the actual
positions improves as the threshold rises — the quality knob conventional
search simply does not have.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import long_beach_like, to_uncertain_objects
from repro.datasets.workload import make_workload
from repro.experiments.config import Scale, active_scale
from repro.experiments.harness import format_table
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree

__all__ = ["run", "main"]

_RADIUS = 250.0
_QS = 1500.0


def run(
    scale: Scale | None = None,
    thresholds: tuple[float, ...] = (0.3, 0.5, 0.8),
    seed: int = 5,
) -> dict:
    """Score conventional vs probabilistic range search.

    Returns per-method precision/recall against the objects' *actual*
    (drifted) positions, averaged over a workload.
    """
    scale = scale if scale is not None else active_scale()
    n = max(400, scale.lb_objects // 4)
    points = long_beach_like(n, seed=seed)
    rng = np.random.default_rng(seed + 1)

    # Actual positions: drifted uniformly within the uncertainty circle.
    angles = rng.uniform(0, 2 * np.pi, n)
    radii = _RADIUS * np.sqrt(rng.random(n))
    actual = points + np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)

    from repro.api import Database, ExecConfig, RangeSpec

    objects = to_uncertain_objects(points, radius=_RADIUS, pdf="uniform")
    # The probabilistic side runs through the facade; the R*-tree is the
    # conventional baseline the paper argues against, so it stays bare.
    db = Database.create(
        objects,
        ExecConfig(batched=False, mc_samples=scale.mc_samples, seed=7),
        methods=("utree",),
    )
    rtree = RStarTree(2)
    for i, obj in enumerate(objects):
        rtree.insert(Rect.from_point(points[i]), obj.oid)

    queries = make_workload(points, scale.queries_per_workload, _QS, thresholds[0], seed=seed + 2)

    def score(returned: set[int], rect: Rect) -> tuple[float, float]:
        truly_inside = {i for i in range(n) if rect.contains_point(actual[i])}
        if not returned:
            precision = 1.0
        else:
            precision = len(returned & truly_inside) / len(returned)
        recall = len(returned & truly_inside) / len(truly_inside) if truly_inside else 1.0
        return precision, recall

    rows = []
    # Conventional search over reports.
    precisions, recalls = [], []
    for query in queries:
        found, __ = rtree.range_search(query.rect)
        p, r = score(set(found), query.rect)
        precisions.append(p)
        recalls.append(r)
    rows.append(
        {
            "method": "R*-tree on reports",
            "threshold": None,
            "precision": float(np.mean(precisions)),
            "recall": float(np.mean(recalls)),
        }
    )

    # Probabilistic search at each threshold.
    for pq in thresholds:
        precisions, recalls = [], []
        for query in queries:
            answer = db.query(RangeSpec(query.rect, pq))
            p, r = score(set(answer.object_ids), query.rect)
            precisions.append(p)
            recalls.append(r)
        rows.append(
            {
                "method": "U-tree prob-range",
                "threshold": pq,
                "precision": float(np.mean(precisions)),
                "recall": float(np.mean(recalls)),
            }
        )
    return {"objects": n, "queries": len(queries), "rows": rows}


def main() -> None:
    result = run()
    print(
        "Section 1 motivation: answer quality against ACTUAL (drifted) positions\n"
        f"({result['objects']} objects, {result['queries']} queries, qs={_QS:g})"
    )
    table = [
        [
            row["method"],
            "-" if row["threshold"] is None else f"{row['threshold']:.1f}",
            f"{100 * row['precision']:.1f}%",
            f"{100 * row['recall']:.1f}%",
        ]
        for row in result["rows"]
    ]
    print(format_table(["method", "pq", "precision", "recall"], table))
    print(
        "\nConventional search has one fixed operating point; the probabilistic\n"
        "threshold trades recall for precision with a guarantee per answer."
    )


if __name__ == "__main__":
    main()
