"""Experiment scale configuration (see DESIGN.md §5).

The paper's full scale (53k-100k objects, 100-query workloads, 10^6
Monte-Carlo samples per refinement) takes hours in pure Python, so every
experiment accepts a :class:`Scale`.  The default runs the identical code
paths at a size that finishes in minutes and preserves every qualitative
shape; setting the environment variable ``REPRO_FULL_SCALE=1`` selects the
paper's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.env import env_flag

__all__ = ["Scale", "DEFAULT_SCALE", "FULL_SCALE", "BENCH_SCALE", "active_scale", "scale_for"]


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime.

    Attributes:
        name: label recorded in experiment output.
        lb_objects / ca_objects / aircraft_objects: dataset sizes.
        queries_per_workload: paper uses 100.
        mc_samples: Monte-Carlo sample count ``n1`` per P_app evaluation
            (paper: 10^6, justified by its Fig. 7).
        io_latency_seconds: simulated cost of one page access, used to
            combine I/O and CPU into the "total cost" panels.
    """

    name: str
    lb_objects: int
    ca_objects: int
    aircraft_objects: int
    queries_per_workload: int
    mc_samples: int
    io_latency_seconds: float = 0.01

    def smaller(self, factor: int) -> "Scale":
        """A proportionally reduced copy (used by the bench harness)."""
        return replace(
            self,
            name=f"{self.name}/{factor}",
            lb_objects=max(200, self.lb_objects // factor),
            ca_objects=max(200, self.ca_objects // factor),
            aircraft_objects=max(200, self.aircraft_objects // factor),
            queries_per_workload=max(4, self.queries_per_workload // factor),
        )


DEFAULT_SCALE = Scale(
    name="default",
    lb_objects=2000,
    ca_objects=2200,
    aircraft_objects=2400,
    queries_per_workload=24,
    mc_samples=8000,
)

FULL_SCALE = Scale(
    name="full",
    lb_objects=53_000,
    ca_objects=62_000,
    aircraft_objects=100_000,
    queries_per_workload=100,
    mc_samples=1_000_000,
)

BENCH_SCALE = Scale(
    name="bench",
    lb_objects=700,
    ca_objects=750,
    aircraft_objects=800,
    queries_per_workload=8,
    mc_samples=4000,
)


def scale_for(config) -> Scale:
    """The scale an :class:`repro.api.ExecConfig` selects."""
    return FULL_SCALE if getattr(config, "full_scale", False) else DEFAULT_SCALE


def active_scale() -> Scale:
    """The scale selected by the environment (default unless full-scale).

    Resolved through :mod:`repro.env` — the same switch
    :meth:`repro.api.ExecConfig.from_env` exposes as ``full_scale``.
    """
    return FULL_SCALE if env_flag("REPRO_FULL_SCALE") else DEFAULT_SCALE
