"""Cached dataset and index construction for the experiment harness.

Experiments share datasets and built indexes heavily (Fig. 9 and Fig. 10
query the same trees, Table 1 measures them, Fig. 8 builds U-PCR variants
over the same points), so everything here is memoised per (dataset, scale,
structure parameters).  The cache holds live objects; the simulated I/O
counters are per-tree, so sharing is safe across experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.datasets.aircraft import aircraft_points
from repro.datasets.synthetic import california_like, long_beach_like, to_uncertain_objects
from repro.experiments.config import Scale
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "DATASETS",
    "dataset_points",
    "dataset_objects",
    "build_utree",
    "build_upcr",
    "build_sharded",
    "clear_caches",
]

DATASETS = ("LB", "CA", "Aircraft")

_ESTIMATOR_SEED = 7

_points_cache: dict[tuple, np.ndarray] = {}
_objects_cache: dict[tuple, list[UncertainObject]] = {}
_tree_cache: dict[tuple, object] = {}


def clear_caches() -> None:
    """Drop all memoised datasets and trees (used between test sessions)."""
    _points_cache.clear()
    _objects_cache.clear()
    _tree_cache.clear()


def dataset_points(name: str, scale: Scale) -> np.ndarray:
    """Reported locations of one of the paper's three datasets."""
    key = (name, scale.lb_objects, scale.ca_objects, scale.aircraft_objects)
    if key not in _points_cache:
        if name == "LB":
            pts = long_beach_like(scale.lb_objects)
        elif name == "CA":
            pts = california_like(scale.ca_objects)
        elif name == "Aircraft":
            pts = aircraft_points(scale.aircraft_objects)
        else:
            raise ValueError(f"unknown dataset {name!r}; pick one of {DATASETS}")
        _points_cache[key] = pts
    return _points_cache[key]


def dataset_objects(name: str, scale: Scale) -> list[UncertainObject]:
    """Uncertain objects per the paper's Section 6 recipe.

    LB: Uniform pdfs over radius-250 circles.  CA: Constrained-Gaussian
    (sigma = 125) over radius-250 circles.  Aircraft: Uniform pdfs over
    radius-125 spheres.
    """
    key = (name, scale.lb_objects, scale.ca_objects, scale.aircraft_objects)
    if key not in _objects_cache:
        points = dataset_points(name, scale)
        if name == "LB":
            objs = to_uncertain_objects(points, radius=250.0, pdf="uniform")
        elif name == "CA":
            objs = to_uncertain_objects(points, radius=250.0, pdf="congau", sigma=125.0)
        else:
            objs = to_uncertain_objects(points, radius=125.0, pdf="uniform")
        _objects_cache[key] = objs
    return _objects_cache[key]


def _estimator(scale: Scale) -> AppearanceEstimator:
    return AppearanceEstimator(n_samples=scale.mc_samples, seed=_ESTIMATOR_SEED)


def build_utree(
    name: str,
    scale: Scale,
    catalog: UCatalog | None = None,
    **tree_kwargs,
) -> UTree:
    """A memoised U-tree over the named dataset."""
    cat = catalog if catalog is not None else UCatalog.paper_utree_default()
    key = ("utree", name, scale.name, cat, tuple(sorted(tree_kwargs.items())))
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        dim = objects[0].dim
        tree = UTree(dim, cat, estimator=_estimator(scale), **tree_kwargs)
        for obj in objects:
            tree.insert(obj)
        _tree_cache[key] = tree
    return _tree_cache[key]  # type: ignore[return-value]


def build_sharded(
    name: str,
    scale: Scale,
    *,
    shards: int,
    method: str = "utree",
    partitioner: str = "str",
    **build_kwargs,
):
    """A memoised sharded structure over the named dataset.

    The harness' ``shards=N`` sweep knob: partitions the dataset across
    ``shards`` child structures of the given ``method`` behind one
    router-fronted facade (see :mod:`repro.exec.shard`).
    """
    from repro.exec.shard import ShardedAccessMethod

    key = (
        "sharded", method, name, scale.name, shards, partitioner,
        tuple(sorted(build_kwargs.items())),
    )
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        _tree_cache[key] = ShardedAccessMethod.build(
            objects,
            shards=shards,
            method=method,
            partitioner=partitioner,
            estimator=_estimator(scale),
            **build_kwargs,
        )
    return _tree_cache[key]


def build_upcr(
    name: str,
    scale: Scale,
    catalog: UCatalog | None = None,
    **tree_kwargs,
) -> UPCRTree:
    """A memoised U-PCR tree over the named dataset."""
    if catalog is None:
        dim = 3 if name == "Aircraft" else 2
        catalog = UCatalog.paper_upcr_default(dim)
    key = ("upcr", name, scale.name, catalog, tuple(sorted(tree_kwargs.items())))
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        dim = objects[0].dim
        tree = UPCRTree(dim, catalog, estimator=_estimator(scale), **tree_kwargs)
        for obj in objects:
            tree.insert(obj)
        _tree_cache[key] = tree
    return _tree_cache[key]  # type: ignore[return-value]
