"""Cached dataset and index construction for the experiment harness.

Experiments share datasets and built indexes heavily (Fig. 9 and Fig. 10
query the same trees, Table 1 measures them, Fig. 8 builds U-PCR variants
over the same points), so everything here is memoised per (dataset, scale,
structure parameters).  The cache holds live objects; the simulated I/O
counters are per-tree, so sharing is safe across experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.datasets.aircraft import aircraft_points
from repro.datasets.synthetic import california_like, long_beach_like, to_uncertain_objects
from repro.experiments.config import Scale
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "DATASETS",
    "dataset_points",
    "dataset_objects",
    "build_database",
    "build_utree",
    "build_upcr",
    "build_sharded",
    "clear_caches",
]

DATASETS = ("LB", "CA", "Aircraft")

_ESTIMATOR_SEED = 7

_points_cache: dict[tuple, np.ndarray] = {}
_objects_cache: dict[tuple, list[UncertainObject]] = {}
_tree_cache: dict[tuple, object] = {}


def clear_caches() -> None:
    """Drop all memoised datasets and trees (used between test sessions)."""
    _points_cache.clear()
    _objects_cache.clear()
    _tree_cache.clear()


def dataset_points(name: str, scale: Scale) -> np.ndarray:
    """Reported locations of one of the paper's three datasets."""
    key = (name, scale.lb_objects, scale.ca_objects, scale.aircraft_objects)
    if key not in _points_cache:
        if name == "LB":
            pts = long_beach_like(scale.lb_objects)
        elif name == "CA":
            pts = california_like(scale.ca_objects)
        elif name == "Aircraft":
            pts = aircraft_points(scale.aircraft_objects)
        else:
            raise ValueError(f"unknown dataset {name!r}; pick one of {DATASETS}")
        _points_cache[key] = pts
    return _points_cache[key]


def dataset_objects(name: str, scale: Scale) -> list[UncertainObject]:
    """Uncertain objects per the paper's Section 6 recipe.

    LB: Uniform pdfs over radius-250 circles.  CA: Constrained-Gaussian
    (sigma = 125) over radius-250 circles.  Aircraft: Uniform pdfs over
    radius-125 spheres.
    """
    key = (name, scale.lb_objects, scale.ca_objects, scale.aircraft_objects)
    if key not in _objects_cache:
        points = dataset_points(name, scale)
        if name == "LB":
            objs = to_uncertain_objects(points, radius=250.0, pdf="uniform")
        elif name == "CA":
            objs = to_uncertain_objects(points, radius=250.0, pdf="congau", sigma=125.0)
        else:
            objs = to_uncertain_objects(points, radius=125.0, pdf="uniform")
        _objects_cache[key] = objs
    return _objects_cache[key]


def _estimator(scale: Scale) -> AppearanceEstimator:
    return AppearanceEstimator(n_samples=scale.mc_samples, seed=_ESTIMATOR_SEED)


def build_utree(
    name: str,
    scale: Scale,
    catalog: UCatalog | None = None,
    **tree_kwargs,
) -> UTree:
    """A memoised U-tree over the named dataset."""
    cat = catalog if catalog is not None else UCatalog.paper_utree_default()
    key = ("utree", name, scale.name, cat, tuple(sorted(tree_kwargs.items())))
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        dim = objects[0].dim
        tree = UTree(dim, cat, estimator=_estimator(scale), **tree_kwargs)
        for obj in objects:
            tree.insert(obj)
        _tree_cache[key] = tree
    return _tree_cache[key]  # type: ignore[return-value]


def build_sharded(
    name: str,
    scale: Scale,
    *,
    shards: int,
    method: str = "utree",
    partitioner: str = "str",
    **build_kwargs,
):
    """A memoised sharded structure over the named dataset.

    The harness' ``shards=N`` sweep knob: partitions the dataset across
    ``shards`` child structures of the given ``method`` behind one
    router-fronted facade (see :mod:`repro.exec.shard`).
    """
    from repro.exec.shard import ShardedAccessMethod

    key = (
        "sharded", method, name, scale.name, shards, partitioner,
        tuple(sorted(build_kwargs.items())),
    )
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        _tree_cache[key] = ShardedAccessMethod.build(
            objects,
            shards=shards,
            method=method,
            partitioner=partitioner,
            estimator=_estimator(scale),
            **build_kwargs,
        )
    return _tree_cache[key]


def build_database(
    name: str,
    scale: Scale,
    *,
    methods: tuple[str, ...] = ("utree", "upcr"),
    catalog: UCatalog | None = None,
    config=None,
):
    """A memoised :class:`repro.api.Database` over the named dataset.

    The facade every figure harness queries through.  Structures come
    from the memoised per-structure builders above, so a fig-9 sweep, a
    fig-10 sweep and Table 1 all share one build per (dataset, scale,
    config) — exactly the sharing the old hand-wired harness had.  The
    config's ``mc_samples``/``seed`` are pinned to the scale's estimator
    parameters (the structures are built with that estimator).
    """
    from repro.api import Database, ExecConfig

    config = config if config is not None else ExecConfig(batched=False)
    config = config.with_options(
        mc_samples=scale.mc_samples, seed=_ESTIMATOR_SEED
    )
    key = ("database", name, scale.name, tuple(methods), catalog, config)
    if key not in _tree_cache:
        if config.pool_capacity and not config.sharded:
            # A monolithic buffer pool must be wired at construction, so
            # this shape bypasses the per-structure memo and builds
            # through the facade directly (still cached per config).
            _tree_cache[key] = Database.create(
                dataset_objects(name, scale), config,
                methods=tuple(methods), catalog=catalog,
            )
            return _tree_cache[key]
        # Pass only non-default structure knobs so the per-structure memo
        # keys line up with plain build_utree()/build_upcr() calls and
        # the trees are shared, not rebuilt.
        structure_kwargs = {}
        if config.page_size != 4096:
            structure_kwargs["page_size"] = config.page_size
        if config.filter_kernel is not None:
            structure_kwargs["filter_kernel"] = config.filter_kernel
        builders = {"utree": build_utree, "upcr": build_upcr, "scan": build_scan}
        built = {}
        for method in methods:
            if method not in builders:
                raise ValueError(
                    f"unknown method {method!r}; pick utree, upcr or scan"
                )
            if config.sharded:
                sharded_kwargs = dict(structure_kwargs)
                if catalog is not None:
                    sharded_kwargs["catalog"] = catalog
                if config.pool_capacity:
                    sharded_kwargs["pool_capacity"] = config.pool_capacity
                if not config.prune:
                    sharded_kwargs["prune"] = config.prune
                built[method] = build_sharded(
                    name,
                    scale,
                    shards=config.shards,
                    method=method,
                    partitioner=config.partitioner,
                    **sharded_kwargs,
                )
            else:
                built[method] = builders[method](
                    name, scale, catalog=catalog, **structure_kwargs
                )
        _tree_cache[key] = Database.from_methods(built, config)
    return _tree_cache[key]


def build_scan(
    name: str,
    scale: Scale,
    catalog: UCatalog | None = None,
    **scan_kwargs,
):
    """A memoised sequential-scan baseline over the named dataset."""
    from repro.core.scan import SequentialScan

    cat = catalog if catalog is not None else UCatalog.paper_utree_default()
    key = ("scan", name, scale.name, cat, tuple(sorted(scan_kwargs.items())))
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        scan = SequentialScan(
            objects[0].dim, cat, estimator=_estimator(scale), **scan_kwargs
        )
        for obj in objects:
            scan.insert(obj)
        _tree_cache[key] = scan
    return _tree_cache[key]


def build_upcr(
    name: str,
    scale: Scale,
    catalog: UCatalog | None = None,
    **tree_kwargs,
) -> UPCRTree:
    """A memoised U-PCR tree over the named dataset."""
    if catalog is None:
        dim = 3 if name == "Aircraft" else 2
        catalog = UCatalog.paper_upcr_default(dim)
    key = ("upcr", name, scale.name, catalog, tuple(sorted(tree_kwargs.items())))
    if key not in _tree_cache:
        objects = dataset_objects(name, scale)
        dim = objects[0].dim
        tree = UPCRTree(dim, catalog, estimator=_estimator(scale), **tree_kwargs)
        for obj in objects:
            tree.insert(obj)
        _tree_cache[key] = tree
    return _tree_cache[key]  # type: ignore[return-value]
