"""Table 1 — index size comparison: U-PCR versus U-tree.

Each U-tree entry stores at most two CFBs (16 values in 2-D, 24 in 3-D)
against U-PCR's m PCRs per entry (36 / 60 values at the tuned m = 9 / 10),
so the U-tree's fanout is several times larger and its total size several
times smaller.  Paper numbers (bytes): LB 11.9M vs 5.0M, CA 14.0M vs 5.9M,
Aircraft 40.1M vs 14.2M — ratios of 2.4-2.8x.  At reduced scale the
absolute sizes shrink with the object count but the ratio is preserved,
since it is governed by the entry layouts.
"""

from __future__ import annotations

from repro.experiments.config import Scale, active_scale
from repro.experiments.data import DATASETS, build_database
from repro.experiments.harness import format_table

__all__ = ["run", "main"]

PAPER_BYTES = {
    "LB": {"upcr": 11.9e6, "utree": 5.0e6},
    "CA": {"upcr": 14.0e6, "utree": 5.9e6},
    "Aircraft": {"upcr": 40.1e6, "utree": 14.2e6},
}


def run(scale: Scale | None = None, datasets: tuple[str, ...] = DATASETS) -> dict:
    """Build both structures per dataset and report byte sizes."""
    scale = scale if scale is not None else active_scale()
    out: dict = {}
    for name in datasets:
        db = build_database(name, scale, methods=("utree", "upcr"))
        upcr = db.access_method("upcr")
        utree = db.access_method("utree")
        out[name] = {
            "upcr_bytes": upcr.size_bytes,
            "utree_bytes": utree.size_bytes,
            "ratio": upcr.size_bytes / utree.size_bytes,
            "paper_ratio": PAPER_BYTES[name]["upcr"] / PAPER_BYTES[name]["utree"],
        }
    return out


def main() -> None:
    results = run()
    rows = [
        [
            name,
            row["upcr_bytes"],
            row["utree_bytes"],
            f"{row['ratio']:.2f}x",
            f"{row['paper_ratio']:.2f}x",
        ]
        for name, row in results.items()
    ]
    print("Table 1: index size (bytes); paper ratios shown for comparison")
    print(format_table(["dataset", "U-PCR", "U-tree", "ratio", "paper ratio"], rows))


if __name__ == "__main__":
    main()
