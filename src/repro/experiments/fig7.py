"""Figure 7 — cost of numerically evaluating appearance probabilities.

The paper measures the relative error and per-evaluation time of the
Monte-Carlo estimator (Eq. 3) as the sample count ``n1`` grows, in 2-D and
3-D, and concludes that ``n1 = 10^6`` is needed for ~1 % error (3-D being
worse because a sphere's volume is "larger" relative to a query).  We
reproduce the study: one uncertain object per dimensionality, a workload
of qs = 500 queries with varying overlap against its region, and errors
measured against a high-sample reference estimate.

Expected shape: error falls roughly as ``1 / sqrt(n1)``; 3-D errors exceed
2-D at equal ``n1``; time grows linearly with ``n1``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import ExecConfig
from repro.experiments.config import Scale, active_scale
from repro.experiments.harness import format_table
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

__all__ = ["run", "main"]

_QS = 500.0


def _study_object(dim: int) -> UniformDensity:
    """The probe object: a centred ball region with a Uniform pdf.

    The paper notes accuracy depends only on the region's area/volume, not
    the pdf, so Uniform suffices.
    """
    centre = np.full(dim, 5000.0)
    # Same radius in both dimensionalities: the paper's point is that at
    # equal region scale, 3-D needs more samples for the same error.
    return UniformDensity(BallRegion(centre, 250.0), marginal_seed=dim)


def _study_queries(density: UniformDensity, n_queries: int, seed: int = 3) -> list[Rect]:
    """qs = 500 query boxes with varying partial overlap of the region."""
    rng = np.random.default_rng(seed)
    region = density.region
    centre = region.mbr().center
    radius = (region.mbr().extent / 2.0).max()
    queries = []
    for _ in range(n_queries):
        # Offset the query so the region straddles its boundary.
        offset = rng.uniform(-1.0, 1.0, size=centre.size) * (radius + _QS / 4.0)
        queries.append(Rect.from_center(centre + offset, _QS / 2.0))
    return queries


def sample_counts(scale: Scale) -> list[int]:
    """The n1 sweep (paper: 10^4 ... 10^8)."""
    if scale.mc_samples >= 1_000_000:
        return [10_000, 100_000, 1_000_000, 10_000_000]
    return [1_000, 10_000, 100_000]


def run(scale: Scale | None = None, n_queries: int = 12) -> dict:
    """Run the study; returns per-dimension error/time series.

    Each ``n1`` is timed twice: the classic per-pair estimator (fresh
    draw per evaluation — the paper's cost) and the refinement engine's
    sample-reuse path (built through ``ExecConfig.refinement_engine``),
    where the whole query batch shares one cached cloud
    (``seconds_per_eval_reused``).  Both
    produce bit-identical probabilities; the gap between the columns is
    exactly the redundant sampling work the engine removes.
    """
    scale = scale if scale is not None else active_scale()
    counts = sample_counts(scale)
    reference_n = counts[-1] * 16
    results: dict = {"n1": counts, "dims": {}}

    for dim in (2, 3):
        density = _study_object(dim)
        probe = UncertainObject(0, density)
        queries = _study_queries(density, n_queries)
        reference = AppearanceEstimator(n_samples=reference_n, seed=999)
        truth = [reference.estimate(density, q, object_id=0) for q in queries]

        errors = []
        times = []
        reuse_times = []
        for n1 in counts:
            estimator = AppearanceEstimator(n_samples=n1, seed=1234)
            per_query = []
            for q, ref in zip(queries, truth):
                est = estimator.estimate(density, q, object_id=0)
                if ref > 1e-9:
                    per_query.append(abs(est - ref) / ref)
            errors.append(float(np.mean(per_query)))
            times.append(estimator.elapsed_seconds / max(1, estimator.evaluations))

            engine = ExecConfig(mc_samples=n1, seed=1234).refinement_engine(
                cache_capacity=4
            )
            reuse_start = time.perf_counter()
            engine.estimate_batch([(probe, q) for q in queries])
            reuse_times.append(
                (time.perf_counter() - reuse_start) / max(1, len(queries))
            )
        results["dims"][dim] = {
            "workload_error": errors,
            "seconds_per_eval": times,
            "seconds_per_eval_reused": reuse_times,
        }
    return results


def main() -> None:
    results = run()
    rows = []
    for dim, series in results["dims"].items():
        for n1, err, sec, reuse_sec in zip(
            results["n1"],
            series["workload_error"],
            series["seconds_per_eval"],
            series["seconds_per_eval_reused"],
        ):
            rows.append(
                [
                    f"{dim}D",
                    n1,
                    f"{100 * err:.3f}%",
                    f"{1000 * sec:.3f}",
                    f"{1000 * reuse_sec:.3f}",
                ]
            )
    print("Figure 7: Monte-Carlo cost/accuracy (workload error, msec per evaluation)")
    print(
        format_table(
            ["dim", "n1", "workload error", "msec/eval", "msec/eval (reused)"], rows
        )
    )


if __name__ == "__main__":
    main()
