"""Experiment harness reproducing every table and figure of Section 6.

Run any experiment as a module, e.g. ``python -m repro.experiments.fig9``;
set ``REPRO_FULL_SCALE=1`` for paper-scale parameters (see DESIGN.md §5).
"""

from repro.experiments.config import BENCH_SCALE, DEFAULT_SCALE, FULL_SCALE, Scale, active_scale
from repro.experiments.harness import format_table, run_workload, total_cost_seconds

__all__ = [
    "BENCH_SCALE",
    "DEFAULT_SCALE",
    "FULL_SCALE",
    "Scale",
    "active_scale",
    "format_table",
    "run_workload",
    "total_cost_seconds",
]
