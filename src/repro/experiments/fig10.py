"""Figure 10 — query cost versus probability threshold (qs = 1500).

The complement of Fig. 9: qs is fixed at the median value 1500 and the
threshold sweeps 0.3 ... 0.9.  Expected shapes: U-tree keeps its I/O
advantage at every pq; the number of P_app computations peaks at middling
thresholds (hard to prune *and* hard to validate) and shrinks towards the
extremes; validated percentages stay high for 2-D datasets and dip for
Aircraft at low pq, as in the paper.
"""

from __future__ import annotations

from repro.datasets.workload import make_workload
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import DATASETS, build_database, dataset_points
from repro.experiments.harness import (
    config_from_knobs,
    format_table,
    run_spec_workload,
    total_cost_seconds,
)

__all__ = ["run", "main", "PQ_VALUES", "DEFAULT_QS"]

PQ_VALUES = (0.3, 0.45, 0.6, 0.75, 0.9)
DEFAULT_QS = 1500.0


def run(
    scale: Scale | None = None,
    datasets: tuple[str, ...] = DATASETS,
    pq_values: tuple[float, ...] = PQ_VALUES,
    qs: float = DEFAULT_QS,
    config=None,
    **legacy_knobs,
) -> dict:
    """Sweep pq per dataset; returns the three panel series for each.

    Execution runs through one :class:`repro.api.Database` per dataset
    under ``config`` (see :func:`repro.experiments.fig9.run` for the
    sweepable knobs).  This experiment reuses one set of query
    rectangles across all five thresholds, so
    ``ExecConfig(batched=True)`` — the facade holds one batched executor
    per method, and its ``(object, rect)``-keyed P_app memo spans the
    sweep — removes most repeated Monte-Carlo work.  Logical I/O panels
    are unchanged; the prob-computations panel then reports *actual*
    computations — memo hits are excluded (and depend on sweep order,
    since the first threshold that needs a value computes it).  The
    default ``ExecConfig(batched=False)`` reproduces the paper's
    per-query CPU *counts* (node accesses, prob computations, validated
    percentages); note that measured wall-clock is engine-accelerated in
    every mode — the shared sample cache persists across the sweep, so
    the first threshold pays the cloud draws and later ones reuse them.

    The pre-facade keyword knobs still work as deprecation shims.
    """
    scale = scale if scale is not None else active_scale()
    config = config_from_knobs(config, **legacy_knobs)
    out: dict = {}
    for name in datasets:
        points = dataset_points(name, scale)
        db = build_database(name, scale, methods=("utree", "upcr"), config=config)
        # Fresh memos per run() call (the memo still spans this run's
        # threshold sweep — the access pattern it was built for — but a
        # repeated run must report the same cost counters).
        db.clear_memos()
        # Same query regions across thresholds, as in the paper.
        base = make_workload(points, scale.queries_per_workload, qs, pq_values[0], seed=900)
        series: dict = {
            "pq": list(pq_values),
            "config": db.config.summary(),
            "filter_kernel": "on" if db.config.kernel_enabled else "off",
        }
        for label in ("utree", "upcr"):
            ios, probs, validated, totals = [], [], [], []
            for pq in pq_values:
                workload = [type(q)(q.rect, pq) for q in base]
                stats = run_spec_workload(db, workload, method=label)
                ios.append(stats.avg_node_accesses)
                probs.append(stats.avg_prob_computations)
                validated.append(stats.validated_percentage)
                totals.append(total_cost_seconds(stats, scale))
            series[label] = {
                "node_accesses": ios,
                "prob_computations": probs,
                "validated_pct": validated,
                "total_cost_seconds": totals,
            }
        out[name] = series
    return out


def main() -> None:
    results = run()
    for name, series in results.items():
        print(f"Figure 10 ({name}): cost vs probability threshold, qs = {DEFAULT_QS:g}")
        rows = []
        for i, pq in enumerate(series["pq"]):
            rows.append(
                [
                    pq,
                    series["utree"]["node_accesses"][i],
                    series["upcr"]["node_accesses"][i],
                    series["utree"]["prob_computations"][i],
                    series["upcr"]["prob_computations"][i],
                    f"{series['utree']['validated_pct'][i]:.0f}%",
                    f"{series['upcr']['validated_pct'][i]:.0f}%",
                    series["utree"]["total_cost_seconds"][i],
                    series["upcr"]["total_cost_seconds"][i],
                ]
            )
        print(
            format_table(
                [
                    "pq",
                    "IO(U-tree)",
                    "IO(U-PCR)",
                    "#Papp(U-tree)",
                    "#Papp(U-PCR)",
                    "val%(U-tree)",
                    "val%(U-PCR)",
                    "total(U-tree)",
                    "total(U-PCR)",
                ],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
