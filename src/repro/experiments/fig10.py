"""Figure 10 — query cost versus probability threshold (qs = 1500).

The complement of Fig. 9: qs is fixed at the median value 1500 and the
threshold sweeps 0.3 ... 0.9.  Expected shapes: U-tree keeps its I/O
advantage at every pq; the number of P_app computations peaks at middling
thresholds (hard to prune *and* hard to validate) and shrinks towards the
extremes; validated percentages stay high for 2-D datasets and dip for
Aircraft at low pq, as in the paper.
"""

from __future__ import annotations

from repro.datasets.workload import make_workload
from repro.exec.batch import BatchExecutor
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import (
    DATASETS,
    build_sharded,
    build_upcr,
    build_utree,
    dataset_points,
)
from repro.experiments.harness import format_table, run_workload, total_cost_seconds

__all__ = ["run", "main", "PQ_VALUES", "DEFAULT_QS"]

PQ_VALUES = (0.3, 0.45, 0.6, 0.75, 0.9)
DEFAULT_QS = 1500.0


def run(
    scale: Scale | None = None,
    datasets: tuple[str, ...] = DATASETS,
    pq_values: tuple[float, ...] = PQ_VALUES,
    qs: float = DEFAULT_QS,
    batched: bool = False,
    parallelism: int = 1,
    shards: int = 1,
    partitioner: str = "str",
    filter_kernel: str = "on",
) -> dict:
    """Sweep pq per dataset; returns the three panel series for each.

    This experiment reuses one set of query rectangles across all five
    thresholds, so ``batched=True`` (one BatchExecutor per tree with its
    ``(object, rect)``-keyed P_app memo) removes most repeated
    Monte-Carlo work.  Logical I/O panels are unchanged; the
    prob-computations panel then reports *actual* computations — memo
    hits are excluded (and depend on sweep order, since the first
    threshold that needs a value computes it).  Use the default
    ``batched=False`` to reproduce the paper's per-query CPU *counts*
    (node accesses, prob computations, validated percentages); note that
    measured wall-clock is engine-accelerated in every mode — the shared
    sample cache persists across the sweep, so the first threshold pays
    the cloud draws and later ones reuse them.  ``parallelism`` (batched
    mode) overlaps the executor's phases on a thread pool; answers are
    identical at any setting.  ``shards >= 2`` sweeps the threshold
    panels against sharded execution, and ``filter_kernel`` sweeps the
    vectorized filter kernel against the scalar rules (see
    :func:`repro.experiments.fig9.run` for both knobs — counts are
    identical, only wall-clock moves).
    """
    scale = scale if scale is not None else active_scale()
    out: dict = {}
    for name in datasets:
        points = dataset_points(name, scale)
        if shards > 1:
            utree = build_sharded(
                name, scale, shards=shards, method="utree",
                partitioner=partitioner, filter_kernel=filter_kernel,
            )
            upcr = build_sharded(
                name, scale, shards=shards, method="upcr",
                partitioner=partitioner, filter_kernel=filter_kernel,
            )
        else:
            utree = build_utree(name, scale, filter_kernel=filter_kernel)
            upcr = build_upcr(name, scale, filter_kernel=filter_kernel)
        # Same query regions across thresholds, as in the paper.
        base = make_workload(points, scale.queries_per_workload, qs, pq_values[0], seed=900)
        series: dict = {"pq": list(pq_values), "filter_kernel": filter_kernel}
        for label, tree in (("utree", utree), ("upcr", upcr)):
            # One executor per tree so the P_app memo spans the threshold
            # sweep (the rectangles are identical at every pq).
            executor = (
                BatchExecutor(tree, parallelism=parallelism) if batched else None
            )
            ios, probs, validated, totals = [], [], [], []
            for pq in pq_values:
                workload = [type(q)(q.rect, pq) for q in base]
                if executor is not None:
                    stats = executor.run(workload).workload
                else:
                    stats = run_workload(tree, workload)
                ios.append(stats.avg_node_accesses)
                probs.append(stats.avg_prob_computations)
                validated.append(stats.validated_percentage)
                totals.append(total_cost_seconds(stats, scale))
            series[label] = {
                "node_accesses": ios,
                "prob_computations": probs,
                "validated_pct": validated,
                "total_cost_seconds": totals,
            }
        out[name] = series
    return out


def main() -> None:
    results = run()
    for name, series in results.items():
        print(f"Figure 10 ({name}): cost vs probability threshold, qs = {DEFAULT_QS:g}")
        rows = []
        for i, pq in enumerate(series["pq"]):
            rows.append(
                [
                    pq,
                    series["utree"]["node_accesses"][i],
                    series["upcr"]["node_accesses"][i],
                    series["utree"]["prob_computations"][i],
                    series["upcr"]["prob_computations"][i],
                    f"{series['utree']['validated_pct'][i]:.0f}%",
                    f"{series['upcr']['validated_pct'][i]:.0f}%",
                    series["utree"]["total_cost_seconds"][i],
                    series["upcr"]["total_cost_seconds"][i],
                ]
            )
        print(
            format_table(
                [
                    "pq",
                    "IO(U-tree)",
                    "IO(U-PCR)",
                    "#Papp(U-tree)",
                    "#Papp(U-PCR)",
                    "val%(U-tree)",
                    "val%(U-PCR)",
                    "total(U-tree)",
                    "total(U-PCR)",
                ],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
