"""Figure 11 — update overhead of the U-tree.

The paper reports (a) the average cost of one insertion during index
construction, broken into I/O and CPU — where CPU covers the simplex runs
that fit the CFBs plus PCR derivation — and (b) the amortised cost of
deleting every object.  Expected shapes: insertion CPU dominated by the
one-time CFB/PCR computation with a small I/O component; deletion
dominated by I/O (locating the leaf plus condensing), CPU negligible.

This experiment builds fresh trees (no cache) because it *is* the build.
"""

from __future__ import annotations

import numpy as np

from repro.exec.executor import measure_delete_drain, measure_insert_build
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import DATASETS, dataset_objects
from repro.experiments.harness import config_from_knobs, format_table

__all__ = ["run", "main"]


def run(
    scale: Scale | None = None,
    datasets: tuple[str, ...] = DATASETS,
    config=None,
    **legacy_knobs,
) -> dict:
    """Measure per-dataset insertion and deletion cost of the U-tree.

    Builds a fresh single-U-tree :class:`repro.api.Database` per dataset
    (no cache — this experiment *is* the build) and measures through the
    facade's ``insert``/``delete``.  ``ExecConfig(filter_kernel=...)``
    sweeps the vectorized filter kernel's *update-side* cost: with
    ``"on"`` every insert also appends the object's CFB columns to the
    columnar sidecar (and every delete releases its row), so the figure
    can report how much the kernel's bookkeeping adds to the paper's
    per-update numbers (I/O is untouched — the sidecar is
    memory-resident).  The old ``filter_kernel=`` keyword folds in as a
    deprecation shim.
    """
    from repro.api import Database

    scale = scale if scale is not None else active_scale()
    config = config_from_knobs(config, **legacy_knobs)
    out: dict = {}
    for name in datasets:
        objects = dataset_objects(name, scale)
        dim = objects[0].dim
        db = Database.create([], config, methods=("utree",), dim=dim)

        insert_costs = measure_insert_build(db, objects)
        insert_io = [cost.io_total for cost in insert_costs]
        insert_cpu = [cost.cpu_seconds for cost in insert_costs]

        delete_costs = measure_delete_drain(
            db, [obj.oid for obj in objects], np.random.default_rng(5)
        )
        delete_io = [cost.io_total for cost in delete_costs]

        out[name] = {
            "filter_kernel": "on" if db.config.kernel_enabled else "off",
            "insert_avg_io": float(np.mean(insert_io)),
            "insert_avg_cpu_seconds": float(np.mean(insert_cpu)),
            "insert_avg_io_seconds": float(np.mean(insert_io)) * scale.io_latency_seconds,
            "delete_avg_io": float(np.mean(delete_io)),
            "delete_avg_io_seconds": float(np.mean(delete_io)) * scale.io_latency_seconds,
            "objects": len(objects),
        }
    return out


def main() -> None:
    results = run()
    rows = []
    for name, row in results.items():
        rows.append(
            [
                name,
                row["objects"],
                row["insert_avg_io"],
                row["insert_avg_io_seconds"],
                row["insert_avg_cpu_seconds"],
                row["delete_avg_io"],
                row["delete_avg_io_seconds"],
            ]
        )
    print("Figure 11: U-tree update overhead (per-operation averages)")
    print(
        format_table(
            [
                "dataset",
                "objects",
                "ins IO",
                "ins IO (s)",
                "ins CPU (s)",
                "del IO",
                "del IO (s)",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
