"""Figure 8 — tuning the U-catalog size for U-PCR.

The paper builds U-PCR trees with m = 3 ... 12 over each dataset and runs
80 workloads (qs = 500, pq = 0.11 ... 0.9), finding a U-shaped cost curve:
more catalog values prune/validate more objects (less CPU) but shrink the
node fanout (more I/O).  The optimum lands at m = 9 (2-D) / 10 (3-D).

The same sweep with ``tree="utree"`` serves as the catalog-size ablation
for the U-tree, whose entry size — and hence I/O — is independent of m, so
its curve should be monotone (more catalog values never hurt I/O).
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.datasets.workload import make_workload
from repro.experiments.config import Scale, active_scale
from repro.experiments.data import build_database, dataset_points
from repro.experiments.harness import (
    config_from_knobs,
    format_table,
    run_spec_workload,
    total_cost_seconds,
)

__all__ = ["run", "main"]

_QS = 500.0


def threshold_values(scale: Scale) -> list[float]:
    """The pq sweep (paper: 0.11, 0.12, ..., 0.9 — 80 workloads)."""
    if scale.queries_per_workload >= 100:
        return [round(p, 2) for p in np.arange(0.11, 0.901, 0.01)]
    return [0.15, 0.3, 0.45, 0.6, 0.75, 0.9]


def catalog_sizes(scale: Scale) -> list[int]:
    """The m sweep (paper: 3 ... 12)."""
    if scale.queries_per_workload >= 100:
        return list(range(3, 13))
    return [3, 5, 7, 9, 12]


def run(
    scale: Scale | None = None,
    dataset: str = "LB",
    tree: str = "upcr",
    m_values: list[int] | None = None,
    config=None,
    **legacy_knobs,
) -> dict:
    """Average query cost per catalog size; returns the cost series."""
    scale = scale if scale is not None else active_scale()
    if tree not in ("upcr", "utree"):
        raise ValueError(f"tree must be 'upcr' or 'utree', got {tree!r}")
    config = config_from_knobs(config, **legacy_knobs)
    m_values = m_values if m_values is not None else catalog_sizes(scale)
    points = dataset_points(dataset, scale)
    thresholds = threshold_values(scale)
    workloads = [
        make_workload(points, scale.queries_per_workload, _QS, pq, seed=101)
        for pq in thresholds
    ]

    costs = []
    details = []
    for m in m_values:
        catalog = UCatalog.evenly_spaced(m)
        db = build_database(
            dataset, scale, methods=(tree,), catalog=catalog, config=config
        )
        index = db.access_method(tree)
        per_workload = []
        io_total = 0.0
        cpu_total = 0.0
        for workload in workloads:
            stats = run_spec_workload(db, workload, method=tree)
            per_workload.append(total_cost_seconds(stats, scale))
            io_total += stats.avg_total_io
            cpu_total += stats.avg_prob_computations
        costs.append(float(np.mean(per_workload)))
        details.append(
            {
                "m": m,
                "avg_cost_seconds": costs[-1],
                "avg_io": io_total / len(workloads),
                "avg_prob_computations": cpu_total / len(workloads),
                "index_bytes": index.size_bytes,
            }
        )
    return {"dataset": dataset, "tree": tree, "m": m_values, "cost_seconds": costs, "details": details}


def main() -> None:
    scale = active_scale()
    for dataset in ("LB", "CA", "Aircraft"):
        result = run(scale, dataset=dataset)
        print(f"Figure 8: U-PCR catalog tuning on {dataset} (qs={_QS:g})")
        rows = [
            [d["m"], d["avg_cost_seconds"], d["avg_io"], d["avg_prob_computations"], d["index_bytes"]]
            for d in result["details"]
        ]
        print(format_table(["m", "cost (s)", "avg IO", "avg #P_app", "index bytes"], rows))
        print()


if __name__ == "__main__":
    main()
