"""The structured fault taxonomy of the resilient execution runtime.

Before this module the engine had exactly one failure mode: a bare
``RuntimeError`` (or a worker traceback string) that killed the whole
batch and often left the executor unusable.  Production operation needs
failures that are *classifiable* — the degradation ladder in
:mod:`repro.exec.resilience` retries transient faults, falls back across
backends on worker faults, and refuses to touch corrupt data — so every
fault the runtime can recover from gets its own exception type here.

This module sits at the very bottom of the package (standard library
only), next to :mod:`repro.env`: the storage layer raises
:class:`CorruptPageError`/:class:`TransientIOError`, the process
executor raises :class:`WorkerError`/:class:`WorkerTimeout`, and the
resilience layer catches them all as :class:`FaultError` without import
cycles.

All types subclass ``RuntimeError`` so pre-existing callers that caught
``RuntimeError`` (the seed's only contract) keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "CorruptPageError",
    "DegradedWarning",
    "FaultError",
    "TransientIOError",
    "WorkerError",
    "WorkerTimeout",
]


class FaultError(RuntimeError):
    """Base of every recoverable runtime fault.

    The degradation ladder (:class:`repro.exec.resilience.BatchSupervisor`)
    catches exactly this type: anything else — a ``ValueError`` from bad
    arguments, a ``KeyError`` from a missing method — is a programming
    error and propagates untouched, because retrying it on a different
    backend would only repeat it.
    """


class TransientIOError(FaultError):
    """A simulated disk read kept failing past the bounded retry budget.

    Attributes:
        page_id: the page whose read failed.
        attempts: total read attempts charged (initial + retries).
    """

    def __init__(self, message: str, *, page_id: int = -1, attempts: int = 0):
        super().__init__(message)
        self.page_id = page_id
        self.attempts = attempts


class CorruptPageError(FaultError):
    """A page's crc32 failed verification (``DataFile`` checksum mode).

    Attributes:
        page_id: the page whose stored and recomputed checksums differ.
    """

    def __init__(self, message: str, *, page_id: int = -1):
        super().__init__(message)
        self.page_id = page_id


class WorkerError(FaultError):
    """A worker process raised; carries its formatted traceback.

    Historically defined in :mod:`repro.exec.mpexec` as a plain
    ``RuntimeError`` subclass; it now lives in the shared taxonomy (and
    is still re-exported from its old home) so the supervisor can treat
    worker death like any other recoverable fault.
    """


class WorkerTimeout(WorkerError):
    """A worker missed its per-command deadline (hung, not dead).

    Raised after the supervisor killed and (budget permitting) respawned
    the wedged worker; distinguishable from :class:`WorkerError` so
    operators can tell a crash loop from a livelock.
    """


class DegradedWarning(RuntimeWarning):
    """The runtime absorbed a fault and continued in a degraded mode.

    Emitted once per degradation event: a scrubbed corrupt page, a
    respawned worker whose fault domain was retried, or a batch that
    fell down the process → thread → serial ladder.  Answers are
    bit-identical in every degraded mode; the warning exists so silent
    capacity loss is visible to operators and assertable in tests.
    """
