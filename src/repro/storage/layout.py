"""Entry byte layouts and node fanout for every index variant.

The paper's Table 1 and I/O results are driven entirely by how many
entries fit in one 4096-byte page.  This module is the single source of
truth for entry sizes:

* **U-tree** (Section 5.1) — a leaf entry stores two CFBs (``8d`` floats,
  the "16 (24) values in 2D (3D)" of Section 6.3), the MBR of the
  uncertainty region (``2d`` floats) and a disk address; an intermediate
  entry stores the two rectangles ``MBR⊥`` and ``MBR`` (``4d`` floats) and
  a child pointer.
* **U-PCR** — entries store ``m`` PCR rectangles (``2dm`` floats, the
  "36 (60) values" at the tuned m = 9 / 10), plus MBR and address at leaf
  level or a child pointer at intermediate levels.
* **R\\*-tree** (precise baseline) — plain MBR + pointer entries.

Sizes assume 8-byte floats and 4-byte pointers/addresses, matching the
hardware the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FLOAT_SIZE",
    "PAGE_CHECKSUM_BYTES",
    "POINTER_SIZE",
    "WAL_HEADER_BYTES",
    "NodeLayout",
    "data_records_per_page",
    "detail_record_bytes",
    "filter_kernel_row_bytes",
    "record_span_pages",
    "rstar_layout",
    "upcr_layout",
    "usable_page_bytes",
    "utree_layout",
    "wal_entry_bytes",
]

FLOAT_SIZE = 8
POINTER_SIZE = 4

# One write-ahead-log entry is [u32 payload_length][u32 crc32][payload].
WAL_HEADER_BYTES = 8

# With page checksums on, each data page leads with its own crc32 —
# four bytes the first-fit packer can no longer hand to records.  With
# checksums off the header does not exist and capacity is the full page,
# which keeps the paper's byte accounting untouched.
PAGE_CHECKSUM_BYTES = 4


@dataclass(frozen=True)
class NodeLayout:
    """Byte-level layout of one tree family's nodes.

    Attributes:
        leaf_entry_bytes: size of one leaf entry.
        inner_entry_bytes: size of one intermediate entry.
        page_size: node page size in bytes.
    """

    leaf_entry_bytes: int
    inner_entry_bytes: int
    page_size: int

    def __post_init__(self) -> None:
        if self.leaf_entry_bytes <= 0 or self.inner_entry_bytes <= 0:
            raise ValueError("entry sizes must be positive")
        if self.page_size <= 0:
            raise ValueError("page size must be positive")

    @property
    def leaf_capacity(self) -> int:
        """Maximum number of entries in a leaf node (>= 2)."""
        return max(2, self.page_size // self.leaf_entry_bytes)

    @property
    def inner_capacity(self) -> int:
        """Maximum number of entries in an intermediate node (>= 2)."""
        return max(2, self.page_size // self.inner_entry_bytes)

    def min_fill(self, capacity: int, fraction: float = 0.4) -> int:
        """R*-tree minimum occupancy (40 % of capacity, at least 1)."""
        return max(1, int(capacity * fraction))


def utree_layout(dim: int, page_size: int = 4096) -> NodeLayout:
    """Layout of a U-tree (entry sizes are independent of catalog size m)."""
    _check_dim(dim)
    leaf = 8 * dim * FLOAT_SIZE + 2 * dim * FLOAT_SIZE + POINTER_SIZE
    inner = 4 * dim * FLOAT_SIZE + POINTER_SIZE
    return NodeLayout(leaf, inner, page_size)


def upcr_layout(dim: int, catalog_size: int, page_size: int = 4096) -> NodeLayout:
    """Layout of a U-PCR tree storing ``catalog_size`` PCRs per entry."""
    _check_dim(dim)
    if catalog_size < 1:
        raise ValueError("catalog_size must be at least 1")
    pcr_bytes = 2 * dim * catalog_size * FLOAT_SIZE
    leaf = pcr_bytes + 2 * dim * FLOAT_SIZE + POINTER_SIZE
    inner = pcr_bytes + POINTER_SIZE
    return NodeLayout(leaf, inner, page_size)


def rstar_layout(dim: int, page_size: int = 4096) -> NodeLayout:
    """Layout of a classic R*-tree over precise rectangles."""
    _check_dim(dim)
    entry = 2 * dim * FLOAT_SIZE + POINTER_SIZE
    return NodeLayout(entry, entry, page_size)


def detail_record_bytes(dim: int) -> int:
    """On-disk size of one object detail record.

    Region centre/extents (``2d`` floats), pdf descriptor (4 floats) and
    the object id — the same accounting as
    ``UncertainObject.detail_size_bytes`` (kept in sync by a unit test;
    the uncertainty layer sits below storage and cannot import this).
    """
    _check_dim(dim)
    return 2 * dim * FLOAT_SIZE + 4 * FLOAT_SIZE + POINTER_SIZE


def filter_kernel_row_bytes(dim: int, catalog_size: int | None = None) -> int:
    """Bytes one object contributes to the columnar filter-kernel sidecar.

    The CFB sidecar (``catalog_size=None``) holds the MBR (``2d`` floats)
    plus eight face-coefficient columns (``8d`` floats); the PCR sidecar
    holds the MBR plus ``2dm`` plane columns.  The sidecar is an in-memory
    acceleration structure, not an on-page entry — this accounting sizes
    its footprint (``FilterKernel.size_bytes``) in the same byte
    conventions as the node layouts above.
    """
    _check_dim(dim)
    if catalog_size is None:
        return 10 * dim * FLOAT_SIZE
    if catalog_size < 1:
        raise ValueError("catalog_size must be at least 1")
    return (2 * dim + 2 * dim * catalog_size) * FLOAT_SIZE


def data_records_per_page(dim: int, page_size: int = 4096) -> int:
    """How many detail records a first-fit data page holds (>= 1).

    The planner's refinement-cost models divide expected candidates by
    this to predict data-page reads; deriving it from the record layout
    replaces the old hand-tuned constant.
    """
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return max(1, page_size // detail_record_bytes(dim))


def wal_entry_bytes(payload_bytes: int) -> int:
    """On-disk size of one WAL entry carrying ``payload_bytes`` of JSON.

    The write-ahead log (:mod:`repro.storage.wal`) is length-prefixed and
    checksummed: an eight-byte header per entry.  Keeping the formula
    here (with the page/record layouts) makes the durability overhead of
    a workload derivable in the same byte conventions as the paper's I/O
    accounting — and trivially zero with the WAL off.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    return WAL_HEADER_BYTES + payload_bytes


def usable_page_bytes(page_size: int = 4096, *, checksum: bool = False) -> int:
    """Record capacity of one data page under the given integrity mode.

    The crc32 header (:data:`PAGE_CHECKSUM_BYTES`) comes off the top
    when ``checksum`` is on; off, the full page is usable and every
    pre-existing capacity computation is unchanged.
    """
    if page_size <= 0:
        raise ValueError("page size must be positive")
    usable = page_size - (PAGE_CHECKSUM_BYTES if checksum else 0)
    if usable <= 0:
        raise ValueError(
            f"page_size {page_size} cannot hold the {PAGE_CHECKSUM_BYTES}-byte "
            "checksum header"
        )
    return usable


def record_span_pages(size_bytes: int, page_size: int = 4096) -> int:
    """How many data pages a ``size_bytes`` record occupies (>= 1).

    Records at most one page long pack first-fit into shared pages; a
    larger record spills across ``ceil(size / page_size)`` dedicated
    pages, each charged one write on append (and one read on fetch).
    ``DataFile`` uses this so byte and I/O accounting agree for records
    of any size.
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return max(1, -(-size_bytes // page_size))


def _check_dim(dim: int) -> None:
    if dim < 1:
        raise ValueError("dimensionality must be at least 1")
