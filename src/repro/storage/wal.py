"""Write-ahead log: crash durability for live ``Database`` mutations.

The facade's ``insert``/``delete``/``rebalance`` mutate in-memory
structures; without a log a crash loses everything since the last
``save()``.  This module implements the log-is-the-database half of the
storage engine (the Taurus/CXL single-writer log-shipping idiom): every
mutation is appended here — checksummed, length-prefixed, fsync'd — *and
only then* applied in memory, so an acknowledged operation survives any
crash and an unacknowledged one was never observable.

Entry format (all integers little-endian)::

    [u32 payload_length][u32 crc32(payload)][payload utf-8 JSON]

Replay reads entries until the file ends or an entry is torn — a short
header, a short payload, or a checksum mismatch.  A torn tail is the
normal signature of a crash mid-append: the operation it belonged to was
never acknowledged, so replay discards it (and truncates the file back
to the last whole entry, keeping future appends contiguous).  Byte
accounting lives in :func:`repro.storage.layout.wal_entry_bytes` so the
durability overhead is derivable in the same conventions as the page
layouts.

The file handle is pluggable (``file_factory``) so the fault-injection
harness (``tests/faultinject.py``) can kill the write stream at every
byte offset and prove recovery from each torn-write point.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, BinaryIO, Callable

from repro.storage.layout import WAL_HEADER_BYTES, wal_entry_bytes

__all__ = ["WalError", "WriteAheadLog"]

_HEADER = struct.Struct("<II")
assert _HEADER.size == WAL_HEADER_BYTES


class WalError(RuntimeError):
    """Raised for WAL protocol violations (not for torn tails)."""


def _default_file_factory(path: str) -> BinaryIO:
    return open(path, "ab")


class WriteAheadLog:
    """An append-only, checksummed operation log with fsync'd commits.

    ``commit`` is the only write API: it appends one record and returns
    only after the bytes are flushed *and* fsync'd, so a caller that
    applies the mutation afterwards can acknowledge it as durable.
    ``replay`` is the only read API: it yields every whole record and
    truncates a torn tail.  ``truncate`` empties the log — the
    checkpoint step after a successful snapshot.

    ``file_factory(path)`` must return an append-mode binary handle; the
    default opens the real file.  The fault-injection harness swaps in a
    wrapper that dies after a byte budget.
    """

    def __init__(
        self,
        path,
        *,
        file_factory: Callable[[str], BinaryIO] | None = None,
    ):
        self.path = os.fspath(path)
        self._file_factory = (
            file_factory if file_factory is not None else _default_file_factory
        )
        self._fh: BinaryIO | None = None
        # Session counters (this handle's traffic, not the file's history).
        self.entries_logged = 0
        self.bytes_logged = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self) -> BinaryIO:
        if self._fh is None:
            self._fh = self._file_factory(self.path)
        return self._fh

    def commit(self, record: dict[str, Any]) -> int:
        """Append one record durably; returns the bytes written.

        The record is JSON-encoded, length-prefixed and checksummed,
        then flushed and fsync'd.  If any step raises, the caller must
        treat the operation as not performed — exactly the torn-write
        states the replay path recovers from.
        """
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        entry = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        fh = self._handle()
        fh.write(entry)
        fh.flush()
        os.fsync(fh.fileno())
        self.entries_logged += 1
        self.bytes_logged += len(entry)
        assert len(entry) == wal_entry_bytes(len(payload))
        return len(entry)

    # ------------------------------------------------------------------
    # reading / recovery
    # ------------------------------------------------------------------
    def replay(self) -> list[dict[str, Any]]:
        """Every whole record in the log, oldest first.

        Stops at the first torn entry (short header, short payload or
        checksum mismatch) and truncates the file back to the last whole
        entry, so the next ``commit`` appends after valid data.  A
        missing file replays to nothing.
        """
        self.close()  # replay reads the real file, never a wrapped handle
        if not os.path.exists(self.path):
            return []
        entries: list[dict[str, Any]] = []
        good_offset = 0
        with open(self.path, "rb") as fh:
            data = fh.read()
        offset = 0
        while offset + WAL_HEADER_BYTES <= len(data):
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + WAL_HEADER_BYTES
            end = start + length
            if end > len(data):
                break  # torn payload
            payload = data[offset + WAL_HEADER_BYTES : end]
            if zlib.crc32(payload) != crc:
                break  # torn/corrupt entry
            try:
                entries.append(json.loads(payload.decode("utf-8")))
            except ValueError:
                break  # checksummed garbage should be impossible; be safe
            offset = end
            good_offset = offset
        if good_offset < len(data):
            with open(self.path, "r+b") as fh:
                fh.truncate(good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        return entries

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Empty the log (the checkpoint step after a successful save)."""
        self.close()
        with open(self.path, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def reopen(self, file_factory: Callable[[str], BinaryIO]) -> None:
        """Swap the file factory (the fault-injection hook)."""
        self.close()
        self._file_factory = file_factory

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log file (0 when absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, size={self.size_bytes}, "
            f"logged={self.entries_logged})"
        )
