"""Persistence for built U-trees.

A production index survives process restarts.  This module serialises a
U-tree to a single ``.npz`` archive holding, per object: the id, the
uncertainty-region/pdf *descriptor* (a JSON document naming one of the
library's pdf families and its parameters), the fitted CFB coefficients
and the region MBR.  Loading reconstructs the objects, re-packs the tree
deterministically with the STR bulk loader, and re-attaches the fitted
summaries — so a loaded tree answers every query identically to the one
that was saved (the page layout may differ from the original insert
order, which only affects I/O counts, not answers).

Only the built-in pdf families round-trip (uniform, constrained Gaussian,
histogram — including Zipf/Poisson/tabulated, which *are* histograms —
radial exponential, and mixtures thereof).  Custom :class:`Density`
subclasses raise a clear error; tabulate them first.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

import numpy as np

from repro.core.cfb import LinearBoxFunction
from repro.core.pruning import CFBRules
from repro.core.utree import UTree, UTreeLeafRecord
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    Density,
    HistogramDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
)
from repro.uncertainty.regions import BallRegion, BoxRegion, UncertaintyRegion

__all__ = [
    "SerializationError",
    "atomic_savez",
    "atomic_write_text",
    "density_descriptor",
    "density_from_descriptor",
    "pack_json",
    "unpack_json",
    "save_utree",
    "load_utree",
]


class SerializationError(ValueError):
    """Raised for objects that cannot be round-tripped."""


# ----------------------------------------------------------------------
# archive primitives: atomic writes, pickle-free JSON entries
# ----------------------------------------------------------------------

def atomic_savez(path, **entries) -> str:
    """``np.savez_compressed`` with crash-safe replace semantics.

    A direct ``np.savez_compressed(path, ...)`` truncates the target
    first, so a crash mid-save destroys the previous good archive.  This
    writes to a temporary file in the *same directory* (so the final
    rename cannot cross filesystems), fsyncs it, and ``os.replace``\\ s it
    into place — the archive at ``path`` is always either the old
    complete version or the new complete version.  Returns the final
    path (with the ``.npz`` suffix numpy would have added).
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **entries)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path, text: str) -> None:
    """Write a small text file with the same replace semantics as
    :func:`atomic_savez` (temp sibling, fsync, ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".txt.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def pack_json(document: Any) -> np.ndarray:
    """A JSON document as a ``uint8`` array (a pickle-free npz entry).

    Object-dtype arrays force ``np.load(..., allow_pickle=True)``, which
    executes arbitrary code from untrusted archives.  Structured
    metadata is stored as UTF-8 JSON bytes instead, so every load site
    runs with pickling disabled.
    """
    encoded = json.dumps(document, sort_keys=True).encode("utf-8")
    return np.frombuffer(encoded, dtype=np.uint8)


def unpack_json(entry: np.ndarray) -> Any:
    """Inverse of :func:`pack_json`."""
    return json.loads(np.asarray(entry, dtype=np.uint8).tobytes().decode("utf-8"))


# ----------------------------------------------------------------------
# region / density descriptors
# ----------------------------------------------------------------------

def _region_descriptor(region: UncertaintyRegion) -> dict[str, Any]:
    if isinstance(region, BallRegion):
        return {"kind": "ball", "center": region.center.tolist(), "radius": region.radius}
    if isinstance(region, BoxRegion):
        return {"kind": "box", "lo": region.rect.lo.tolist(), "hi": region.rect.hi.tolist()}
    raise SerializationError(f"unsupported region type {type(region).__name__}")


def _region_from_descriptor(doc: dict[str, Any]) -> UncertaintyRegion:
    kind = doc.get("kind")
    if kind == "ball":
        return BallRegion(doc["center"], doc["radius"])
    if kind == "box":
        return BoxRegion(Rect(doc["lo"], doc["hi"]))
    raise SerializationError(f"unknown region kind {kind!r}")


def density_descriptor(density: Density) -> dict[str, Any]:
    """A JSON-serialisable document reconstructing ``density``."""
    common = {
        "region": _region_descriptor(density.region),
        "marginal_seed": density._marginal_seed,
        "marginal_samples": density._marginal_samples,
    }
    if isinstance(density, UniformDensity):
        return {"kind": "uniform", **common}
    if isinstance(density, ConstrainedGaussianDensity):
        return {
            "kind": "congau",
            "sigma": density.sigma,
            "mean": density.mean.tolist(),
            **common,
        }
    if isinstance(density, HistogramDensity):
        return {"kind": "histogram", "weights": density.weights.tolist(), **common}
    if isinstance(density, RadialExponentialDensity):
        return {
            "kind": "radial-exponential",
            "scale": density.scale,
            "mode": density.mode.tolist(),
            **common,
        }
    if isinstance(density, MixtureDensity):
        return {
            "kind": "mixture",
            "weights": density.weights.tolist(),
            "components": [density_descriptor(c) for c in density.components],
            **common,
        }
    raise SerializationError(
        f"cannot serialise pdf type {type(density).__name__}; "
        "tabulate custom densities with tabulate_density() first"
    )


def density_from_descriptor(doc: dict[str, Any]) -> Density:
    """Inverse of :func:`density_descriptor`."""
    kind = doc.get("kind")
    if kind not in ("uniform", "congau", "histogram", "radial-exponential", "mixture"):
        raise SerializationError(f"unknown density kind {kind!r}")
    kwargs = {
        "marginal_seed": doc.get("marginal_seed", 0),
        "marginal_samples": doc.get("marginal_samples", 16384),
    }
    region = _region_from_descriptor(doc["region"])
    if kind == "uniform":
        return UniformDensity(region, **kwargs)
    if kind == "congau":
        return ConstrainedGaussianDensity(
            region, sigma=doc["sigma"], mean=doc["mean"], **kwargs
        )
    if kind == "histogram":
        if not isinstance(region, BoxRegion):
            raise SerializationError("histogram densities need a box region")
        return HistogramDensity(region, np.asarray(doc["weights"]), **kwargs)
    if kind == "radial-exponential":
        return RadialExponentialDensity(
            region, scale=doc["scale"], mode=doc["mode"], **kwargs
        )
    if kind == "mixture":
        components = []
        for comp_doc in doc["components"]:
            comp = density_from_descriptor(comp_doc)
            comp.region = region  # mixtures require one shared region object
            components.append(comp)
        return MixtureDensity(components, weights=doc["weights"], **kwargs)
    raise SerializationError(f"unknown density kind {kind!r}")


# ----------------------------------------------------------------------
# tree save / load
# ----------------------------------------------------------------------

# v2: descriptors are a single UTF-8 JSON bytes entry (no object arrays,
# so loads never enable pickling) and saves are atomic-replace.
_FORMAT_VERSION = 2


def save_utree(tree: UTree, path, *, extra: dict[str, Any] | None = None) -> None:
    """Write a built U-tree to ``path`` (a ``.npz`` archive, atomically).

    ``extra`` adds caller-owned entries to the archive (the
    :class:`repro.api.Database` facade stores its config there); keys
    must not collide with the format's own.  The archive is written to a
    temporary sibling and renamed into place, so a crash mid-save leaves
    any previous archive untouched.
    """
    records: list[UTreeLeafRecord] = [e.data for e in tree.engine.leaf_entries()]
    records.sort(key=lambda r: r.oid)
    n = len(records)
    d = tree.dim

    oids = np.array([r.oid for r in records], dtype=np.int64)
    mbrs = np.zeros((n, 2, d))
    outer = np.zeros((n, 2, 2, d))  # [obj, intercept|slope, lo|hi, axis]
    inner = np.zeros((n, 2, 2, d))
    descriptors = []
    for i, record in enumerate(records):
        mbrs[i, 0] = record.mbr.lo
        mbrs[i, 1] = record.mbr.hi
        outer[i, 0] = record.outer.intercept
        outer[i, 1] = record.outer.slope
        inner[i, 0] = record.inner.intercept
        inner[i, 1] = record.inner.slope
        obj = _object_for(tree, record)
        descriptors.append(density_descriptor(obj.pdf))

    extra = dict(extra) if extra else {}
    reserved = {
        "format_version", "dim", "page_size", "catalog", "oids", "mbrs",
        "outer", "inner", "descriptors", "filter_kernel",
    }
    clashes = reserved & extra.keys()
    if clashes:
        raise ValueError(f"extra archive keys clash with the format: {sorted(clashes)}")
    atomic_savez(
        path,
        **extra,
        format_version=np.int64(_FORMAT_VERSION),
        dim=np.int64(d),
        page_size=np.int64(tree.engine.layout.page_size),
        catalog=tree.catalog.values,
        oids=oids,
        mbrs=mbrs,
        outer=outer,
        inner=inner,
        descriptors=pack_json(descriptors),
        # The mbrs/outer/inner stacks above ARE the columnar filter-kernel
        # sidecar; this flag additionally round-trips whether the saved
        # tree ran with the kernel enabled.
        filter_kernel=np.int64(0 if tree.kernel is None else 1),
    )


def _object_for(tree: UTree, record: UTreeLeafRecord) -> UncertainObject:
    obj = tree.data_file.peek(record.address)
    if not isinstance(obj, UncertainObject):  # pragma: no cover - internal
        raise SerializationError("data file does not hold UncertainObject payloads")
    return obj


def load_utree(path, estimator=None, *, filter_kernel=None, pool=None) -> UTree:
    """Reconstruct a U-tree saved with :func:`save_utree`.

    The fitted CFBs are restored verbatim (no re-fitting); the node
    layout is rebuilt deterministically by STR packing.

    ``filter_kernel`` overrides the loaded tree's kernel mode.  When left
    ``None`` (and no ``REPRO_FILTER_KERNEL`` environment override is
    set — resolved through :mod:`repro.env`), the archive's own flag
    decides — a kernel-enabled tree survives the round-trip as one.  The
    sidecar itself is rebuilt in bulk from the archive's columnar
    MBR/CFB stacks (:meth:`CFBFilterKernel.extend`), not object by
    object.  ``pool`` attaches a buffer pool to the rebuilt tree.
    """
    from repro.core.catalog import UCatalog
    from repro.core.filterkernel import FILTER_KERNEL_ENV
    from repro.env import env_value
    from repro.index.bulkload import bulk_load

    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported archive version {version}; version 1 archives "
                "stored pickled descriptor arrays — re-save them with the "
                "current library to get the hardened JSON format"
            )
        dim = int(archive["dim"])
        page_size = int(archive["page_size"])
        catalog = UCatalog(archive["catalog"])
        oids = archive["oids"]
        mbrs = archive["mbrs"]
        outer = archive["outer"]
        inner = archive["inner"]
        descriptors = unpack_json(archive["descriptors"])
        if (
            filter_kernel is None
            and env_value(FILTER_KERNEL_ENV) is None
            and "filter_kernel" in archive
        ):
            filter_kernel = bool(int(archive["filter_kernel"]))

    kwargs = {} if estimator is None else {"estimator": estimator}
    tree = UTree(
        dim, catalog, page_size=page_size, filter_kernel=filter_kernel,
        pool=pool, **kwargs
    )
    rows = None
    if tree.kernel is not None:
        rows = tree.kernel.extend(
            mbrs[:, 0], mbrs[:, 1], outer[:, 0], outer[:, 1], inner[:, 0], inner[:, 1]
        )
    items = []
    for i, oid in enumerate(oids):
        pdf = density_from_descriptor(descriptors[i])
        obj = UncertainObject(int(oid), pdf)
        outer_fn = LinearBoxFunction(outer[i, 0].copy(), outer[i, 1].copy())
        inner_fn = LinearBoxFunction(inner[i, 0].copy(), inner[i, 1].copy())
        address = tree.data_file.append(obj, obj.detail_size_bytes())
        record = UTreeLeafRecord(
            oid=int(oid),
            mbr=Rect(mbrs[i, 0], mbrs[i, 1]),
            outer=outer_fn,
            inner=inner_fn,
            address=address,
            rules=CFBRules(catalog, outer_fn, inner_fn),
            row=-1 if rows is None else int(rows[i]),
        )
        profile = outer_fn.profile(catalog)
        items.append((profile, record))
        tree._profiles[int(oid)] = profile
    bulk_load(tree.engine, items)
    return tree
