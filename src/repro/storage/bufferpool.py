"""An LRU buffer pool between the access methods and the simulated disk.

The paper charges every page access to the (simulated) disk, which is the
right accounting for its single-query experiments.  A serving system runs
*workloads*, and workloads have locality: consecutive queries revisit the
same index nodes and data pages.  The :class:`BufferPool` models the
memory layer that exploits that locality — a fixed-capacity LRU cache of
``(file, page)`` frames with hit/miss accounting.

Accounting contract (relied on by the experiment harness and tests):

* a **logical** read is any page request made by an access method;
* a **physical** read is a logical read that missed the pool (or any read
  when no pool is attached / capacity is 0) — only these are charged to
  :class:`repro.storage.pager.IOCounter.reads`;
* with ``capacity=0`` the pool never retains a frame, so every logical
  read is physical and all counters reproduce the uncached (paper) numbers
  exactly.

**Scan resistance.**  A flat sequential scan touches every summary page
exactly once per query; admitting those frames into the main LRU evicts
the genuinely hot working set without ever producing a hit ("the scan
floods the cache").  Readers that know they are scanning pass
``sequential=True``: those misses are admitted into a small 2Q-style
*probation* FIFO instead of the main LRU.  A probationary frame promotes
to the main LRU on its next access (from any reader), so pages that
repeated scans actually revisit still earn residency — but a one-pass
scan can displace at most the probation queue, never the main frames.
The probation queue holds ``max(1, capacity // 8)`` frames *in addition*
to ``capacity`` main frames (zero when ``capacity == 0``, preserving the
uncached contract).

Pages in this simulator are live Python objects, so the pool caches only
*identities*; hits skip the I/O charge, nothing else.  Writes are
write-through: they always cost a physical write, and the written frame is
retained (a just-written page is in memory).  All operations take an
internal lock, so one pool may be shared by the parallel batch executor's
fetch and filter threads.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict

__all__ = ["BufferPool", "charge_page_read"]


def charge_page_read(
    io,
    pool: "BufferPool | None",
    file_id: int,
    page_id: int,
    *,
    sequential: bool = False,
) -> bool:
    """Charge one logical page read to ``io``, routing through ``pool``.

    The single place that encodes the accounting contract: a pool hit
    costs a cache hit, anything else a physical read.  ``sequential``
    marks scan-shaped accesses for the pool's non-polluting admission
    path.  Returns True on a pool hit.
    """
    if pool is not None and pool.access(file_id, page_id, sequential=sequential):
        io.record_cache_hit()
        return True
    io.record_read()
    return False


class BufferPool:
    """A shared scan-resistant LRU cache of ``(file_id, page_id)`` frames.

    One pool may back several page files (an index's node store plus its
    data file, or several trees in a batch harness); each backing file
    registers itself to obtain a distinct ``file_id`` namespace.

    Args:
        capacity: maximum number of main frames held.  ``0`` disables
            caching (every access is a miss and nothing is retained),
            reproducing uncached I/O accounting exactly.
        probation_capacity: size of the sequential-admission FIFO.
            Defaults to ``max(1, capacity // 8)`` (``0`` when the pool is
            disabled).
    """

    def __init__(self, capacity: int, *, probation_capacity: int | None = None):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        if probation_capacity is None:
            probation_capacity = max(1, self.capacity // 8) if self.capacity else 0
        if probation_capacity < 0:
            raise ValueError("probation_capacity must be non-negative")
        self.probation_capacity = int(probation_capacity) if self.capacity else 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._frames: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._probation: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._next_file_id = 0
        self._lock = threading.RLock()

    @classmethod
    def partition(cls, capacity: int, shards: int) -> "list[BufferPool]":
        """Slice one frame budget into ``shards`` independent pools.

        A sharded access method gives each shard its own pool so one
        shard's working set cannot evict another's — the memory-layer
        analogue of the shard's private PageStore.  The total budget is
        preserved: slice capacities are as even as possible and sum to
        ``capacity`` exactly.  Remainder frames are *interleaved
        round-robin* across the slice list (slice 0 always takes the
        first bonus frame) rather than front-loaded onto a consecutive
        prefix, so when consumers are grouped — e.g. shard 0's node
        store next to shard 0's neighbours — the bonus capacity spreads
        across the groups instead of piling onto the first one.  A
        ``capacity`` of 0 yields all-disabled pools, keeping the
        uncached accounting contract shard by shard.

        A *nonzero* budget smaller than ``shards`` cannot give every
        slice a frame: the short slices — including the trailing one —
        come out capacity 0 (fully disabled, silently uncached), which
        is almost never what a caller sizing a cache wants, so this case
        raises a ``UserWarning`` naming the disabled slice count.  Order
        the consumers so the most valuable file takes slice 0, which is
        always funded when any slice is.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        capacity = int(capacity)
        # Bresenham-style spread, anchored so slice 0 gets ceil(c/s):
        # slice i receives the budget between the (shards-i-1)-th and
        # (shards-i)-th evenly spaced cut points.
        caps = [
            (capacity * (shards - i)) // shards
            - (capacity * (shards - i - 1)) // shards
            for i in range(shards)
        ]
        if capacity and caps[-1] == 0:
            warnings.warn(
                f"buffer-pool budget {capacity} spans only "
                f"{sum(1 for c in caps if c)} of {shards} slices; "
                f"{sum(1 for c in caps if not c)} trailing/interleaved "
                "slices are capacity 0 (uncached)",
                UserWarning,
                stacklevel=2,
            )
        return [cls(c) for c in caps]

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_file(self) -> int:
        """Reserve a fresh file-id namespace for one backing page file."""
        with self._lock:
            file_id = self._next_file_id
            self._next_file_id += 1
            return file_id

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def access(self, file_id: int, page_id: int, *, sequential: bool = False) -> bool:
        """Request one page; returns True on a hit, False on a miss.

        A miss loads the frame into the main LRU (evicting its
        least-recently-used frame if full).  A ``sequential`` miss is
        allowed a main slot only while main has *spare* capacity — a
        scan may use idle memory (so repeated scans over an
        under-committed pool still hit, as under plain LRU) but never
        evicts a resident frame; once main is full, sequential misses go
        to the probation FIFO.  A hit refreshes recency; a probationary
        hit additionally promotes the frame into the main LRU.
        """
        key = (file_id, page_id)
        with self._lock:
            if key in self._frames:
                self._frames.move_to_end(key)
                self.hits += 1
                return True
            if key in self._probation:
                # Re-referenced within its probation window: the frame has
                # proven reuse, so it earns a main-LRU slot.
                del self._probation[key]
                self.hits += 1
                self._load(key)
                return True
            self.misses += 1
            if sequential and len(self._frames) >= self.capacity:
                self._load_probation(key)
            else:
                self._load(key)
            return False

    def admit(self, file_id: int, page_id: int) -> None:
        """Retain a frame without charging a hit or miss.

        Used by write paths: a page just written is resident in memory, so
        the next read of it should hit.
        """
        key = (file_id, page_id)
        with self._lock:
            if key in self._frames:
                self._frames.move_to_end(key)
            else:
                self._probation.pop(key, None)
                self._load(key)

    def invalidate(self, file_id: int, page_id: int) -> None:
        """Drop a frame (page freed/deallocated); no-op when absent."""
        with self._lock:
            self._frames.pop((file_id, page_id), None)
            self._probation.pop((file_id, page_id), None)

    def clear(self) -> None:
        """Drop every frame (counters are kept)."""
        with self._lock:
            self._frames.clear()
            self._probation.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (frames are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _load(self, key: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        self._frames[key] = None
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1

    def _load_probation(self, key: tuple[int, int]) -> None:
        if self.probation_capacity == 0:
            return
        self._probation[key] = None
        if len(self._probation) > self.probation_capacity:
            self._probation.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames) + len(self._probation)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._frames or key in self._probation

    @property
    def accesses(self) -> int:
        """Total logical accesses routed through the pool."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory (0.0 when unused)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def resident_pages(self) -> list[tuple[int, int]]:
        """Main-LRU frames currently held, least- to most-recently used."""
        return list(self._frames)

    def probation_pages(self) -> list[tuple[int, int]]:
        """Probationary frames, oldest first."""
        return list(self._probation)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, resident={len(self._frames)}, "
            f"probation={len(self._probation)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
