"""A policy-selectable buffer pool between the access methods and the disk.

The paper charges every page access to the (simulated) disk, which is the
right accounting for its single-query experiments.  A serving system runs
*workloads*, and workloads have locality: consecutive queries revisit the
same index nodes and data pages.  The :class:`BufferPool` models the
memory layer that exploits that locality — a fixed-capacity cache of
``(file, page)`` frames with hit/miss accounting and a selectable
replacement policy.

Accounting contract (relied on by the experiment harness and tests):

* a **logical** read is any page request made by an access method;
* a **physical** read is a logical read that missed the pool (or any read
  when no pool is attached / capacity is 0) — only these are charged to
  :class:`repro.storage.pager.IOCounter.reads`;
* with ``capacity=0`` the pool never retains a frame, so every logical
  read is physical and all counters reproduce the uncached (paper) numbers
  exactly — **under every policy**.

Three policies:

``"lru"``
    Plain LRU over ``capacity`` frames.  The ``sequential`` hint is
    ignored; a flat scan floods the cache.  The baseline the other two
    are measured against.

``"2q"`` (default)
    Scan-resistant 2Q-style admission.  A flat sequential scan touches
    every summary page exactly once per query; admitting those frames
    into the main LRU evicts the genuinely hot working set without ever
    producing a hit ("the scan floods the cache").  Readers that know
    they are scanning pass ``sequential=True``: those misses are
    admitted into a small *probation* FIFO instead of the main LRU.  A
    probationary frame promotes to the main LRU on its next access
    (from any reader), so pages that repeated scans actually revisit
    still earn residency — but a one-pass scan can displace at most the
    probation queue, never the main frames.  The probation queue holds
    ``probation_capacity`` frames (default ``max(1, capacity // 8)``)
    *in addition* to ``capacity`` main frames (zero when
    ``capacity == 0``, preserving the uncached contract).

    The known weakness: a scan *longer* than the probation queue cycles
    the FIFO, so even a workload that repeats the identical scan every
    round never earns residency for it — repeated scans get ~zero hits
    once the scan length exceeds ``capacity // 8``.

``"arc"``
    Adaptive Replacement Cache (Megiddo & Modha) over the same
    ``sequential`` hint.  Four lists: ``T1`` (seen once, recency) and
    ``T2`` (seen twice+, frequency) hold the at-most-``capacity``
    resident frames; ghost lists ``B1``/``B2`` remember the *identities*
    of recently evicted T1/T2 frames (bounded so
    ``|T1|+|B1| <= capacity`` and the four lists together hold at most
    ``2*capacity`` entries).  A hit in a ghost list is a miss that LRU
    *would have served* with a different recency/frequency split, so it
    moves the adaptive target ``p`` (the size T1 aspires to): a B1 hit
    grows ``p`` by ``max(1, |B2|/|B1|)``, a B2 hit shrinks it by
    ``max(1, |B1|/|B2|)``.  Eviction (``REPLACE``) takes T1's LRU frame
    into B1 while ``|T1| > p`` (or ``== p`` on a B2 ghost hit), else
    T2's LRU frame into B2.  Because ghosts persist for up to
    ``capacity`` further misses, the *second* pass of a repeated scan
    promotes its pages to T2 and the third pass hits — exactly the
    workload 2Q's short FIFO gives up on.

    **Scan-length calibration.**  The pool tracks an EWMA of observed
    sequential run lengths (consecutive ``sequential=True`` accesses).
    Ghosts of sequential frames are tagged; when the calibrated scan
    length exceeds ``capacity`` — no target split could ever cache the
    scan — hits on those tagged ghosts do *not* inflate ``p``, so an
    over-long looping scan cannot steal target share from the hot
    random-access working set.  (The ghost hit itself is still
    counted/promoted; only the target adaptation is suppressed.)

Pages in this simulator are live Python objects, so the pool caches only
*identities*; hits skip the I/O charge, nothing else.  Writes are
write-through: they always cost a physical write, and the written frame is
retained (a just-written page is in memory).  All operations take an
internal lock, so one pool may be shared by the parallel batch executor's
fetch and filter threads.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict

__all__ = [
    "BufferPool",
    "POOL_POLICIES",
    "charge_page_read",
    "pool_counters",
    "pools_of",
]

POOL_POLICIES = ("lru", "2q", "arc")


def charge_page_read(
    io,
    pool: "BufferPool | None",
    file_id: int,
    page_id: int,
    *,
    sequential: bool = False,
) -> bool:
    """Charge one logical page read to ``io``, routing through ``pool``.

    The single place that encodes the accounting contract: a pool hit
    costs a cache hit, anything else a physical read.  ``sequential``
    marks scan-shaped accesses for the pool's non-polluting admission
    path.  Returns True on a pool hit.
    """
    if pool is not None and pool.access(file_id, page_id, sequential=sequential):
        io.record_cache_hit()
        return True
    io.record_read()
    return False


def pools_of(method) -> "list[BufferPool]":
    """Every distinct :class:`BufferPool` reachable from an access method.

    Covers the method's own node-store pool, its data file's pool, and —
    for sharded methods — each child's node and data pools.  Duplicates
    (shared pools) are returned once, by identity.  Used by the
    executors to surface pool hit/miss/ghost counters into
    ``QueryStats``/``BatchStats``.
    """
    pools: list[BufferPool] = []

    def _add(pool) -> None:
        if pool is not None and all(pool is not seen for seen in pools):
            pools.append(pool)

    def _visit(node) -> None:
        _add(getattr(node, "pool", None))
        data_file = getattr(node, "data_file", None)
        if data_file is not None:
            _add(getattr(data_file, "pool", None))

    _visit(method)
    for shard in getattr(method, "shards", None) or []:
        _visit(shard)
    return pools


def pool_counters(pools) -> tuple[int, int, int]:
    """Summed ``(hits, misses, ghost_hits)`` across ``pools``."""
    hits = misses = ghosts = 0
    for pool in pools:
        hits += pool.hits
        misses += pool.misses
        ghosts += pool.ghost_hits
    return hits, misses, ghosts


class BufferPool:
    """A shared cache of ``(file_id, page_id)`` frames.

    One pool may back several page files (an index's node store plus its
    data file, or several trees in a batch harness); each backing file
    registers itself to obtain a distinct ``file_id`` namespace.

    Args:
        capacity: maximum number of resident frames held (main frames
            for ``lru``/``2q``; ``|T1|+|T2|`` for ``arc``).  ``0``
            disables caching (every access is a miss and nothing is
            retained), reproducing uncached I/O accounting exactly.
        probation_capacity: size of the 2Q sequential-admission FIFO.
            Defaults to ``max(1, capacity // 8)`` (``0`` when the pool
            is disabled).  Ignored by the ``lru`` and ``arc`` policies.
        policy: ``"lru"``, ``"2q"`` (default) or ``"arc"``.
    """

    def __init__(
        self,
        capacity: int,
        *,
        probation_capacity: int | None = None,
        policy: str = "2q",
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in POOL_POLICIES:
            raise ValueError(
                f"unknown pool policy {policy!r}; choose one of {POOL_POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        if probation_capacity is None:
            probation_capacity = max(1, self.capacity // 8) if self.capacity else 0
        if probation_capacity < 0:
            raise ValueError("probation_capacity must be non-negative")
        if self.policy != "2q" or not self.capacity:
            probation_capacity = 0
        self.probation_capacity = int(probation_capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.ghost_hits = 0
        # lru/2q state
        self._frames: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._probation: OrderedDict[tuple[int, int], None] = OrderedDict()
        # arc state: values in _t1/_b1/_b2 are the frame's sequential tag
        self._t1: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._t2: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._b1: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._b2: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._target = 0.0  # ARC's p: the size T1 aspires to
        # scan-length calibration (all policies observe, ARC consumes)
        self._scan_run = 0
        self.scan_length_ewma = 0.0
        self._next_file_id = 0
        self._lock = threading.RLock()

    @classmethod
    def partition(
        cls,
        capacity: int,
        shards: int,
        *,
        probation_capacity: int | None = None,
        policy: str = "2q",
    ) -> "list[BufferPool]":
        """Slice one frame budget into ``shards`` independent pools.

        A sharded access method gives each shard its own pool so one
        shard's working set cannot evict another's — the memory-layer
        analogue of the shard's private PageStore.  The total budget is
        preserved: slice capacities are as even as possible and sum to
        ``capacity`` exactly.  Remainder frames are *interleaved
        round-robin* across the slice list (slice 0 always takes the
        first bonus frame) rather than front-loaded onto a consecutive
        prefix, so when consumers are grouped — e.g. shard 0's node
        store next to shard 0's neighbours — the bonus capacity spreads
        across the groups instead of piling onto the first one.  A
        ``capacity`` of 0 yields all-disabled pools, keeping the
        uncached accounting contract shard by shard.

        ``policy`` and ``probation_capacity`` pass through to every
        slice.

        A *nonzero* budget smaller than ``shards`` cannot give every
        slice a frame: the short slices — including the trailing one —
        come out capacity 0 (fully disabled, silently uncached), which
        is almost never what a caller sizing a cache wants, so this case
        raises a ``UserWarning`` naming the disabled slice count.  Order
        the consumers so the most valuable file takes slice 0, which is
        always funded when any slice is.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        capacity = int(capacity)
        # Bresenham-style spread, anchored so slice 0 gets ceil(c/s):
        # slice i receives the budget between the (shards-i-1)-th and
        # (shards-i)-th evenly spaced cut points.
        caps = [
            (capacity * (shards - i)) // shards
            - (capacity * (shards - i - 1)) // shards
            for i in range(shards)
        ]
        if capacity and caps[-1] == 0:
            warnings.warn(
                f"buffer-pool budget {capacity} spans only "
                f"{sum(1 for c in caps if c)} of {shards} slices; "
                f"{sum(1 for c in caps if not c)} trailing/interleaved "
                "slices are capacity 0 (uncached)",
                UserWarning,
                stacklevel=2,
            )
        return [
            cls(c, probation_capacity=probation_capacity, policy=policy)
            for c in caps
        ]

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_file(self) -> int:
        """Reserve a fresh file-id namespace for one backing page file."""
        with self._lock:
            file_id = self._next_file_id
            self._next_file_id += 1
            return file_id

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def access(self, file_id: int, page_id: int, *, sequential: bool = False) -> bool:
        """Request one page; returns True on a hit, False on a miss.

        Under ``lru``/``2q`` a miss loads the frame into the main LRU
        (evicting its least-recently-used frame if full).  A ``2q``
        ``sequential`` miss is allowed a main slot only while main has
        *spare* capacity — a scan may use idle memory (so repeated scans
        over an under-committed pool still hit, as under plain LRU) but
        never evicts a resident frame; once main is full, sequential
        misses go to the probation FIFO.  A hit refreshes recency; a
        probationary hit additionally promotes the frame into the main
        LRU.  Under ``arc`` the four-list protocol applies (see the
        module docstring).
        """
        key = (file_id, page_id)
        with self._lock:
            self._observe_sequential(sequential)
            if self.policy == "arc":
                return self._arc_access(key, sequential)
            if key in self._frames:
                self._frames.move_to_end(key)
                self.hits += 1
                return True
            if key in self._probation:
                # Re-referenced within its probation window: the frame has
                # proven reuse, so it earns a main-LRU slot.
                del self._probation[key]
                self.hits += 1
                self._load(key)
                return True
            self.misses += 1
            if (
                self.policy == "2q"
                and sequential
                and len(self._frames) >= self.capacity
            ):
                self._load_probation(key)
            else:
                self._load(key)
            return False

    def admit(self, file_id: int, page_id: int) -> None:
        """Retain a frame without charging a hit or miss.

        Used by write paths: a page just written is resident in memory, so
        the next read of it should hit.
        """
        key = (file_id, page_id)
        with self._lock:
            if self.policy == "arc":
                self._arc_admit(key)
                return
            if key in self._frames:
                self._frames.move_to_end(key)
            else:
                self._probation.pop(key, None)
                self._load(key)

    def invalidate(self, file_id: int, page_id: int) -> None:
        """Drop a frame (page freed/deallocated); no-op when absent."""
        key = (file_id, page_id)
        with self._lock:
            self._frames.pop(key, None)
            self._probation.pop(key, None)
            self._t1.pop(key, None)
            self._t2.pop(key, None)
            self._b1.pop(key, None)
            self._b2.pop(key, None)

    def clear(self) -> None:
        """Drop every frame and ghost (counters and calibration kept)."""
        with self._lock:
            self._frames.clear()
            self._probation.clear()
            self._t1.clear()
            self._t2.clear()
            self._b1.clear()
            self._b2.clear()
            self._target = 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction/ghost counters (frames are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.ghost_hits = 0

    # ------------------------------------------------------------------
    # lru/2q internals
    # ------------------------------------------------------------------
    def _load(self, key: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        self._frames[key] = None
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1

    def _load_probation(self, key: tuple[int, int]) -> None:
        if self.probation_capacity == 0:
            return
        self._probation[key] = None
        if len(self._probation) > self.probation_capacity:
            self._probation.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # arc internals
    # ------------------------------------------------------------------
    def _observe_sequential(self, sequential: bool) -> None:
        """Fold consecutive sequential accesses into the scan-length EWMA."""
        if sequential:
            self._scan_run += 1
            return
        if self._scan_run:
            run = float(self._scan_run)
            self._scan_run = 0
            if self.scan_length_ewma:
                self.scan_length_ewma = 0.7 * self.scan_length_ewma + 0.3 * run
            else:
                self.scan_length_ewma = run

    def _scan_uncacheable(self) -> bool:
        """True when the calibrated scan is too long for any target split."""
        observed = max(self.scan_length_ewma, float(self._scan_run))
        return observed > self.capacity

    def _arc_access(self, key: tuple[int, int], sequential: bool) -> bool:
        if self.capacity == 0:
            self.misses += 1
            return False
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = sequential
            self.hits += 1
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            self._t2[key] = sequential
            self.hits += 1
            return True
        if key in self._b1:
            # Ghost hit on the recency side: LRU-with-larger-T1 would have
            # kept this frame, so grow the target — unless the ghost came
            # from a scan no feasible target could cache anyway.
            self.ghost_hits += 1
            self.misses += 1
            ghost_sequential = self._b1.pop(key)
            if not (ghost_sequential and self._scan_uncacheable()):
                delta = max(1.0, len(self._b2) / max(1, len(self._b1) + 1))
                self._target = min(float(self.capacity), self._target + delta)
            self._arc_replace(ghost_in_b2=False)
            self._t2[key] = sequential
            return False
        if key in self._b2:
            # Ghost hit on the frequency side: shrink the target.
            self.ghost_hits += 1
            self.misses += 1
            ghost_sequential = self._b2.pop(key)
            if not (ghost_sequential and self._scan_uncacheable()):
                delta = max(1.0, len(self._b1) / max(1, len(self._b2) + 1))
                self._target = max(0.0, self._target - delta)
            self._arc_replace(ghost_in_b2=True)
            self._t2[key] = sequential
            return False
        # Cold miss.
        self.misses += 1
        self._arc_make_room()
        self._t1[key] = sequential
        return False

    def _arc_make_room(self) -> None:
        """Case IV of the ARC paper: bound the lists before a T1 insert."""
        c = self.capacity
        if len(self._t1) + len(self._b1) >= c:
            # L1 full: recycle a B1 ghost slot, or T1's LRU if no ghosts.
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                self._arc_replace(ghost_in_b2=False)
            else:
                self._t1.popitem(last=False)
                self.evictions += 1
        elif len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2) >= c:
            if (
                len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
                >= 2 * c
            ):
                self._b2.popitem(last=False)
            self._arc_replace(ghost_in_b2=False)

    def _arc_replace(self, *, ghost_in_b2: bool) -> None:
        """REPLACE: evict one resident frame into its ghost list."""
        if len(self._t1) + len(self._t2) < self.capacity:
            return
        t1_len = len(self._t1)
        if t1_len and (
            t1_len > self._target or (ghost_in_b2 and t1_len == int(self._target))
        ):
            key, seq = self._t1.popitem(last=False)
            self._b1[key] = seq
        elif self._t2:
            key, seq = self._t2.popitem(last=False)
            self._b2[key] = seq
        elif self._t1:
            key, seq = self._t1.popitem(last=False)
            self._b1[key] = seq
        else:
            return
        self.evictions += 1

    def _arc_admit(self, key: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = False
        elif key in self._t2:
            self._t2.move_to_end(key)
        else:
            self._b1.pop(key, None)
            self._b2.pop(key, None)
            self._arc_make_room()
            self._t1[key] = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self.policy == "arc":
            return len(self._t1) + len(self._t2)
        return len(self._frames) + len(self._probation)

    def __contains__(self, key: tuple[int, int]) -> bool:
        if self.policy == "arc":
            return key in self._t1 or key in self._t2
        return key in self._frames or key in self._probation

    @property
    def accesses(self) -> int:
        """Total logical accesses routed through the pool."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory (0.0 when unused)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def target_recency(self) -> float:
        """ARC's adaptive target ``p`` (0.0 under the other policies)."""
        return self._target

    def resident_pages(self) -> list[tuple[int, int]]:
        """Resident frames, least- to most-recently used.

        For ARC the recency list (T1) precedes the frequency list (T2).
        """
        if self.policy == "arc":
            return list(self._t1) + list(self._t2)
        return list(self._frames)

    def probation_pages(self) -> list[tuple[int, int]]:
        """2Q probationary frames, oldest first (empty for lru/arc)."""
        return list(self._probation)

    def ghost_pages(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """ARC's ``(B1, B2)`` ghost identities, oldest first."""
        return list(self._b1), list(self._b2)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, policy={self.policy!r}, "
            f"resident={len(self)}, hits={self.hits}, misses={self.misses}, "
            f"ghost_hits={self.ghost_hits})"
        )
