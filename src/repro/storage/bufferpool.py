"""An LRU buffer pool between the access methods and the simulated disk.

The paper charges every page access to the (simulated) disk, which is the
right accounting for its single-query experiments.  A serving system runs
*workloads*, and workloads have locality: consecutive queries revisit the
same index nodes and data pages.  The :class:`BufferPool` models the
memory layer that exploits that locality — a fixed-capacity LRU cache of
``(file, page)`` frames with hit/miss accounting.

Accounting contract (relied on by the experiment harness and tests):

* a **logical** read is any page request made by an access method;
* a **physical** read is a logical read that missed the pool (or any read
  when no pool is attached / capacity is 0) — only these are charged to
  :class:`repro.storage.pager.IOCounter.reads`;
* with ``capacity=0`` the pool never retains a frame, so every logical
  read is physical and all counters reproduce the uncached (paper) numbers
  exactly.

Pages in this simulator are live Python objects, so the pool caches only
*identities*; hits skip the I/O charge, nothing else.  Writes are
write-through: they always cost a physical write, and the written frame is
retained (a just-written page is in memory).
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BufferPool", "charge_page_read"]


def charge_page_read(io, pool: "BufferPool | None", file_id: int, page_id: int) -> bool:
    """Charge one logical page read to ``io``, routing through ``pool``.

    The single place that encodes the accounting contract: a pool hit
    costs a cache hit, anything else a physical read.  Returns True on a
    pool hit.
    """
    if pool is not None and pool.access(file_id, page_id):
        io.record_cache_hit()
        return True
    io.record_read()
    return False


class BufferPool:
    """A shared LRU cache of ``(file_id, page_id)`` frames.

    One pool may back several page files (an index's node store plus its
    data file, or several trees in a batch harness); each backing file
    registers itself to obtain a distinct ``file_id`` namespace.

    Args:
        capacity: maximum number of frames held.  ``0`` disables caching
            (every access is a miss and nothing is retained), reproducing
            uncached I/O accounting exactly.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._frames: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._next_file_id = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_file(self) -> int:
        """Reserve a fresh file-id namespace for one backing page file."""
        file_id = self._next_file_id
        self._next_file_id += 1
        return file_id

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def access(self, file_id: int, page_id: int) -> bool:
        """Request one page; returns True on a hit, False on a miss.

        A miss loads the frame (evicting the least-recently-used frame if
        the pool is full); a hit refreshes its recency.
        """
        key = (file_id, page_id)
        if key in self._frames:
            self._frames.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._load(key)
        return False

    def admit(self, file_id: int, page_id: int) -> None:
        """Retain a frame without charging a hit or miss.

        Used by write paths: a page just written is resident in memory, so
        the next read of it should hit.
        """
        key = (file_id, page_id)
        if key in self._frames:
            self._frames.move_to_end(key)
        else:
            self._load(key)

    def invalidate(self, file_id: int, page_id: int) -> None:
        """Drop a frame (page freed/deallocated); no-op when absent."""
        self._frames.pop((file_id, page_id), None)

    def clear(self) -> None:
        """Drop every frame (counters are kept)."""
        self._frames.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (frames are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _load(self, key: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        self._frames[key] = None
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._frames

    @property
    def accesses(self) -> int:
        """Total logical accesses routed through the pool."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory (0.0 when unused)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def resident_pages(self) -> list[tuple[int, int]]:
        """Frames currently held, least- to most-recently used."""
        return list(self._frames)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, resident={len(self._frames)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
