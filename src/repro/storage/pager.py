"""A simulated paged storage manager with I/O accounting.

The paper evaluates index structures on a real disk with 4096-byte pages
and reports *page accesses* as the I/O cost.  We reproduce that on top of
an in-memory page store: every node of a tree occupies one page, object
details (uncertainty region + pdf parameters) live in data-file pages, and
an :class:`IOCounter` tallies each logical page read/write.

Nothing here serialises real bytes — the simulator tracks *sizes* so that
fanout, tree size (Table 1) and page-access counts (Figs. 9-11) are
faithful, while payloads stay live Python objects for speed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.storage.bufferpool import BufferPool, charge_page_read
from repro.storage.layout import record_span_pages

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "CompositeIOCounter",
    "IOCounter",
    "DiskAddress",
    "DataFile",
    "DataFileView",
    "PageStore",
]

DEFAULT_PAGE_SIZE = 4096


class IOCounter:
    """Counts physical page reads/writes plus cache-served logical reads.

    The same counter instance is shared by an index and its data file so a
    query's total I/O (filter-step node accesses + refinement-step data
    pages) accumulates in one place.

    ``reads``/``writes`` count *physical* (disk) accesses — with no buffer
    pool attached every logical read is physical, which is the paper's
    accounting.  When a :class:`~repro.storage.bufferpool.BufferPool`
    serves a read from memory the page file records a ``cache hit``
    instead, so ``logical_reads = reads + cache_hits`` while ``reads``
    keeps its uncached meaning.

    Counter updates take an internal lock so the parallel batch executor's
    filter and fetch threads can share one counter without losing
    increments; snapshot reads stay lock-free (they are monotonic ints).
    """

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        """Physical reads plus writes."""
        return self.reads + self.writes

    @property
    def logical_reads(self) -> int:
        """All read requests, whether served by disk or by the pool."""
        return self.reads + self.cache_hits

    def record_read(self, pages: int = 1) -> None:
        with self._lock:
            self.reads += pages

    def record_write(self, pages: int = 1) -> None:
        with self._lock:
            self.writes += pages

    def record_cache_hit(self, pages: int = 1) -> None:
        with self._lock:
            self.cache_hits += pages

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0

    def snapshot(self) -> tuple[int, int]:
        """Current ``(reads, writes)`` pair, for delta measurements."""
        return (self.reads, self.writes)

    def delta(self, snapshot: tuple[int, int]) -> tuple[int, int]:
        """Physical reads/writes accumulated since ``snapshot``."""
        return (self.reads - snapshot[0], self.writes - snapshot[1])

    def __repr__(self) -> str:
        return (
            f"IOCounter(reads={self.reads}, writes={self.writes}, "
            f"cache_hits={self.cache_hits})"
        )


class CompositeIOCounter:
    """A read-only aggregate view over several :class:`IOCounter`\\ s.

    A sharded access method gives every shard its own counter (per-shard
    attribution stays exact even when shards filter concurrently) but the
    execution layer still wants "the method's I/O" as one number: this
    view sums the children on every property read.  It intentionally has
    no ``record_*`` methods — writes always go to a concrete child
    counter, so an aggregate read can never race a lost update.
    """

    def __init__(self, counters: "list[IOCounter]"):
        self._counters = list(counters)

    @property
    def reads(self) -> int:
        return sum(c.reads for c in self._counters)

    @property
    def writes(self) -> int:
        return sum(c.writes for c in self._counters)

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self._counters)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def logical_reads(self) -> int:
        return self.reads + self.cache_hits

    def reset(self) -> None:
        """Zero every underlying counter."""
        for counter in self._counters:
            counter.reset()

    def snapshot(self) -> tuple[int, int]:
        return (self.reads, self.writes)

    def delta(self, snapshot: tuple[int, int]) -> tuple[int, int]:
        return (self.reads - snapshot[0], self.writes - snapshot[1])

    def __repr__(self) -> str:
        return (
            f"CompositeIOCounter(counters={len(self._counters)}, "
            f"reads={self.reads}, writes={self.writes}, "
            f"cache_hits={self.cache_hits})"
        )


@dataclass(frozen=True)
class DiskAddress:
    """Location of an object's detail record: ``(page_id, slot)``.

    Leaf entries store this address; the refinement step groups candidates
    by ``page_id`` so each data page is fetched once (Section 5.2).
    """

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"@{self.page_id}:{self.slot}"


@dataclass
class _DataPage:
    payloads: list[Any] = field(default_factory=list)
    # Per-slot record sizes; a released slot holds the negated size (the
    # tombstone keeps byte accounting auditable after reuse churn).
    slot_bytes: list[int] = field(default_factory=list)
    used_bytes: int = 0


class DataFile:
    """A paged file of object detail records, append-mostly.

    Records are packed into pages first-fit in arrival order, mimicking how
    the paper stores "the details of o.ur and the parameters of o.pdf" at a
    disk address referenced from the leaf entry.  Records longer than one
    page spill across ``ceil(size / page_size)`` dedicated pages (one write
    charged per spilled page; fetching charges the same span).

    With ``reclaim`` enabled, :meth:`release` returns a deleted record's
    slot to a per-size free list and :meth:`append` reuses an exact-size
    slot before growing the file — one page write per reused page, since
    the slot's page is physically rewritten.  The default (``reclaim``
    off) keeps the seed's strictly-append behavior and I/O counts
    byte-for-byte: ``release`` is a no-op and nothing is ever reused.
    """

    def __init__(
        self,
        io: IOCounter | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        pool: BufferPool | None = None,
        reclaim: bool = False,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self.reclaim = reclaim
        self._pool_file_id = pool.register_file() if pool is not None else -1
        self._pages: list[_DataPage] = []
        self._free: dict[int, list[DiskAddress]] = {}  # size -> LIFO of slots
        self._live_records = 0
        self._live_bytes = 0
        self._free_bytes = 0
        self.reclaimed_slots = 0  # how many appends were served by the free list

    def append(self, payload: Any, size_bytes: int) -> DiskAddress:
        """Store ``payload`` (conceptually ``size_bytes`` long); return its address."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        span = record_span_pages(size_bytes, self.page_size)
        if self.reclaim and size_bytes <= self.page_size:
            stack = self._free.get(size_bytes)
            if stack:
                address = stack.pop()
                page = self._pages[address.page_id]
                page.payloads[address.slot] = payload
                page.slot_bytes[address.slot] = size_bytes
                self._free_bytes -= size_bytes
                self._live_records += 1
                self._live_bytes += size_bytes
                self.reclaimed_slots += 1
                # The slot's page is physically rewritten in place.
                self.io.record_write()
                if self.pool is not None:
                    self.pool.admit(self._pool_file_id, address.page_id)
                return address
        if span > 1:
            # Spilled record: dedicated pages, one write each, payload
            # addressed at the first page.  The pages are marked full so
            # later small records never interleave with the spill run.
            first = len(self._pages)
            for _ in range(span):
                page = _DataPage(used_bytes=self.page_size)
                self._pages.append(page)
                self.io.record_write()
                if self.pool is not None:
                    self.pool.admit(self._pool_file_id, len(self._pages) - 1)
            head = self._pages[first]
            head.payloads.append(payload)
            head.slot_bytes.append(size_bytes)
            self._live_records += 1
            self._live_bytes += size_bytes
            return DiskAddress(first, 0)
        if not self._pages or self._pages[-1].used_bytes + size_bytes > self.page_size:
            self._pages.append(_DataPage())
            self.io.record_write()
            if self.pool is not None:
                self.pool.admit(self._pool_file_id, len(self._pages) - 1)
        page = self._pages[-1]
        page.payloads.append(payload)
        page.slot_bytes.append(size_bytes)
        page.used_bytes += size_bytes
        self._live_records += 1
        self._live_bytes += size_bytes
        return DiskAddress(len(self._pages) - 1, len(page.payloads) - 1)

    def release(self, address: DiskAddress) -> bool:
        """Return a record's slot to the free list; True if reclaimed.

        No I/O is charged: freeing updates the in-memory allocator map,
        and the physical page write is charged when the slot is reused.
        A no-op (returning False) with ``reclaim`` off — the seed's
        append-only accounting stays untouched — or when the slot was
        already released.
        """
        if not self.reclaim:
            return False
        page = self._pages[address.page_id]
        size = page.slot_bytes[address.slot]
        if size <= 0:
            return False
        page.payloads[address.slot] = None
        page.slot_bytes[address.slot] = -size
        self._live_records -= 1
        self._live_bytes -= size
        if size <= self.page_size:
            self._free.setdefault(size, []).append(address)
            self._free_bytes += size
        return True

    def _slot_span(self, address: DiskAddress) -> int:
        """Pages the record at ``address`` occupies (raises if released)."""
        page = self._pages[address.page_id]
        size = page.slot_bytes[address.slot]
        if size <= 0:
            raise KeyError(f"record at {address!r} was released")
        return record_span_pages(size, self.page_size)

    def _charge_read(self, page_id: int) -> None:
        charge_page_read(self.io, self.pool, self._pool_file_id, page_id)

    def read(self, address: DiskAddress) -> Any:
        """Fetch one record, costing one page read per spanned page (unless pooled)."""
        for page_id in range(address.page_id, address.page_id + self._slot_span(address)):
            self._charge_read(page_id)
        return self._pages[address.page_id].payloads[address.slot]

    def peek(self, address: DiskAddress) -> Any:
        """Fetch one record without charging any I/O.

        For out-of-band access — serialisation, debugging — never for
        query execution, which must account every page touch.
        """
        self._slot_span(address)  # released-slot guard
        return self._pages[address.page_id].payloads[address.slot]

    def read_page(self, page_id: int) -> list[Any]:
        """Fetch a page's slot array with a single page read (unless pooled).

        Slot positions are preserved (callers index the result by
        ``DiskAddress.slot``); released slots read as ``None`` — they are
        never candidates, so refinement never dereferences them.
        """
        self._charge_read(page_id)
        return list(self._pages[page_id].payloads)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Live detail records stored across all pages."""
        return self._live_records

    @property
    def live_bytes(self) -> int:
        """Exact bytes of live records (spill-aware, excludes freed slots)."""
        return self._live_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes sitting on the free list, awaiting reuse."""
        return self._free_bytes

    @property
    def free_slots(self) -> int:
        """Released slots currently available for exact-size reuse."""
        return sum(len(stack) for stack in self._free.values())

    @property
    def records_per_page(self) -> float:
        """Observed packing density (records / page), 0.0 when empty.

        The planner calibrates its ``data_records_per_page`` constant from
        this instead of guessing — the actual first-fit occupancy, not a
        layout upper bound.
        """
        return self.record_count / self.page_count if self._pages else 0.0

    @property
    def size_bytes(self) -> int:
        """Total file size: pages are the allocation unit."""
        return self.page_count * self.page_size

    def peek_page(self, page_id: int) -> list[Any]:
        """Every *live* record on a page without charging any I/O.

        Out-of-band access only (serialisation, worker prewarm) — query
        execution must go through :meth:`read_page`.  Unlike
        :meth:`read_page` this skips released slots: its callers iterate
        records rather than indexing by slot.
        """
        page = self._pages[page_id]
        return [p for p, size in zip(page.payloads, page.slot_bytes) if size > 0]

    def reader_view(
        self, *, io: IOCounter | None = None, latency_seconds: float = 0.0
    ) -> "DataFileView":
        """A read-only view with private accounting (see :class:`DataFileView`)."""
        return DataFileView(self, io=io, latency_seconds=latency_seconds)


class DataFileView:
    """A read-only reader over a :class:`DataFile` with private accounting.

    The process executor gives each worker one of these over the (fork-
    inherited) data file: reads charge the *view's* counter — merged back
    into batch totals by the parent — and apply the worker's simulated
    per-page latency, without touching the shared file's counter or
    buffer pool.  No pool is attached by design: each worker models its
    own disk arm, and the paper-exact accounting the process backend
    reproduces is the uncached (``pool_capacity=0``) one.

    Mutating methods are deliberately absent; the parent is the only
    writer, and it re-forks the pool whenever the file grows.
    """

    def __init__(
        self,
        base: DataFile,
        *,
        io: IOCounter | None = None,
        latency_seconds: float = 0.0,
    ):
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        self.base = base
        self.io = io if io is not None else IOCounter()
        self.latency_seconds = float(latency_seconds)
        self.page_size = base.page_size

    def _charge(self) -> None:
        self.io.record_read()
        if self.latency_seconds > 0.0:
            time.sleep(self.latency_seconds)

    def read(self, address: DiskAddress) -> Any:
        """Fetch one record, costing one page read per spanned page on the view's counter."""
        for _ in range(self.base._slot_span(address)):
            self._charge()
        return self.base._pages[address.page_id].payloads[address.slot]

    def read_page(self, page_id: int) -> list[Any]:
        """Fetch every record on a page with one (view-charged) page read."""
        self._charge()
        return list(self.base._pages[page_id].payloads)

    def peek(self, address: DiskAddress) -> Any:
        """Fetch one record without charging any I/O."""
        return self.base.peek(address)

    @property
    def page_count(self) -> int:
        return self.base.page_count

    @property
    def record_count(self) -> int:
        return self.base.record_count

    @property
    def records_per_page(self) -> float:
        return self.base.records_per_page

    def __repr__(self) -> str:
        return (
            f"DataFileView(pages={self.page_count}, io={self.io!r}, "
            f"latency={self.latency_seconds})"
        )


class PageStore:
    """Allocator for index-node pages with read/write accounting.

    Trees register each node here; visiting a node during a query costs one
    page read, writing a node during an update costs one page write.
    """

    def __init__(
        self,
        io: IOCounter | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        pool: BufferPool | None = None,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self._pool_file_id = pool.register_file() if pool is not None else -1
        self._next_id = 0
        self._live: set[int] = set()

    def allocate(self) -> int:
        """Reserve a fresh page and return its id (no I/O charged)."""
        page_id = self._next_id
        self._next_id += 1
        self._live.add(page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page (no I/O charged)."""
        self._live.discard(page_id)
        if self.pool is not None:
            self.pool.invalidate(self._pool_file_id, page_id)

    def touch_read(self, page_id: int) -> None:
        """Charge one page read for visiting ``page_id`` (unless pooled)."""
        if page_id not in self._live:
            raise KeyError(f"page {page_id} is not allocated")
        charge_page_read(self.io, self.pool, self._pool_file_id, page_id)

    def touch_write(self, page_id: int) -> None:
        """Charge one page write for flushing ``page_id`` (write-through)."""
        if page_id not in self._live:
            raise KeyError(f"page {page_id} is not allocated")
        self.io.record_write()
        if self.pool is not None:
            self.pool.admit(self._pool_file_id, page_id)

    @property
    def page_count(self) -> int:
        return len(self._live)

    @property
    def size_bytes(self) -> int:
        return self.page_count * self.page_size
