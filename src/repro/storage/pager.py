"""A simulated paged storage manager with I/O accounting.

The paper evaluates index structures on a real disk with 4096-byte pages
and reports *page accesses* as the I/O cost.  We reproduce that on top of
an in-memory page store: every node of a tree occupies one page, object
details (uncertainty region + pdf parameters) live in data-file pages, and
an :class:`IOCounter` tallies each logical page read/write.

Nothing here serialises real bytes — the simulator tracks *sizes* so that
fanout, tree size (Table 1) and page-access counts (Figs. 9-11) are
faithful, while payloads stay live Python objects for speed.
"""

from __future__ import annotations

import struct
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.faults import CorruptPageError, DegradedWarning, TransientIOError
from repro.storage.bufferpool import BufferPool, charge_page_read
from repro.storage.layout import (
    PAGE_CHECKSUM_BYTES,
    record_span_pages,
    usable_page_bytes,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "CompositeIOCounter",
    "IOCounter",
    "DiskAddress",
    "DataFile",
    "DataFileView",
    "PageStore",
]

DEFAULT_PAGE_SIZE = 4096


class IOCounter:
    """Counts physical page reads/writes plus cache-served logical reads.

    The same counter instance is shared by an index and its data file so a
    query's total I/O (filter-step node accesses + refinement-step data
    pages) accumulates in one place.

    ``reads``/``writes`` count *physical* (disk) accesses — with no buffer
    pool attached every logical read is physical, which is the paper's
    accounting.  When a :class:`~repro.storage.bufferpool.BufferPool`
    serves a read from memory the page file records a ``cache hit``
    instead, so ``logical_reads = reads + cache_hits`` while ``reads``
    keeps its uncached meaning.

    Counter updates take an internal lock so the parallel batch executor's
    filter and fetch threads can share one counter without losing
    increments; snapshot reads stay lock-free (they are monotonic ints).
    """

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        """Physical reads plus writes."""
        return self.reads + self.writes

    @property
    def logical_reads(self) -> int:
        """All read requests, whether served by disk or by the pool."""
        return self.reads + self.cache_hits

    def record_read(self, pages: int = 1) -> None:
        with self._lock:
            self.reads += pages

    def record_write(self, pages: int = 1) -> None:
        with self._lock:
            self.writes += pages

    def record_cache_hit(self, pages: int = 1) -> None:
        with self._lock:
            self.cache_hits += pages

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0

    def snapshot(self) -> tuple[int, int]:
        """Current ``(reads, writes)`` pair, for delta measurements."""
        return (self.reads, self.writes)

    def delta(self, snapshot: tuple[int, int]) -> tuple[int, int]:
        """Physical reads/writes accumulated since ``snapshot``."""
        return (self.reads - snapshot[0], self.writes - snapshot[1])

    def __repr__(self) -> str:
        return (
            f"IOCounter(reads={self.reads}, writes={self.writes}, "
            f"cache_hits={self.cache_hits})"
        )


class CompositeIOCounter:
    """A read-only aggregate view over several :class:`IOCounter`\\ s.

    A sharded access method gives every shard its own counter (per-shard
    attribution stays exact even when shards filter concurrently) but the
    execution layer still wants "the method's I/O" as one number: this
    view sums the children on every property read.  It intentionally has
    no ``record_*`` methods — writes always go to a concrete child
    counter, so an aggregate read can never race a lost update.
    """

    def __init__(self, counters: "list[IOCounter]"):
        self._counters = list(counters)

    @property
    def reads(self) -> int:
        return sum(c.reads for c in self._counters)

    @property
    def writes(self) -> int:
        return sum(c.writes for c in self._counters)

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self._counters)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def logical_reads(self) -> int:
        return self.reads + self.cache_hits

    def reset(self) -> None:
        """Zero every underlying counter."""
        for counter in self._counters:
            counter.reset()

    def snapshot(self) -> tuple[int, int]:
        return (self.reads, self.writes)

    def delta(self, snapshot: tuple[int, int]) -> tuple[int, int]:
        return (self.reads - snapshot[0], self.writes - snapshot[1])

    def __repr__(self) -> str:
        return (
            f"CompositeIOCounter(counters={len(self._counters)}, "
            f"reads={self.reads}, writes={self.writes}, "
            f"cache_hits={self.cache_hits})"
        )


@dataclass(frozen=True)
class DiskAddress:
    """Location of an object's detail record: ``(page_id, slot)``.

    Leaf entries store this address; the refinement step groups candidates
    by ``page_id`` so each data page is fetched once (Section 5.2).
    """

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"@{self.page_id}:{self.slot}"


@dataclass
class _DataPage:
    payloads: list[Any] = field(default_factory=list)
    # Per-slot record sizes; a released slot holds the negated size (the
    # tombstone keeps byte accounting auditable after reuse churn).
    slot_bytes: list[int] = field(default_factory=list)
    used_bytes: int = 0
    # Checksum mode only: the page's shadow byte image — a deterministic
    # rendering of its slot layout, led by the stored crc32 of the rest.
    # ``None`` with checksums off (zero footprint, zero divergence).
    image: bytearray | None = None


class DataFile:
    """A paged file of object detail records, append-mostly.

    Records are packed into pages first-fit in arrival order, mimicking how
    the paper stores "the details of o.ur and the parameters of o.pdf" at a
    disk address referenced from the leaf entry.  Records longer than one
    page spill across ``ceil(size / page_size)`` dedicated pages (one write
    charged per spilled page; fetching charges the same span).

    With ``reclaim`` enabled, :meth:`release` returns a deleted record's
    slot to a per-size free list and :meth:`append` reuses an exact-size
    slot before growing the file — one page write per reused page, since
    the slot's page is physically rewritten.  The default (``reclaim``
    off) keeps the seed's strictly-append behavior and I/O counts
    byte-for-byte: ``release`` is a no-op and nothing is ever reused.

    **Integrity mode** (``checksum=True`` or :meth:`enable_checksum`):
    every page keeps a deterministic *shadow image* — a page-sized byte
    rendering of its slot layout whose first
    :data:`~repro.storage.layout.PAGE_CHECKSUM_BYTES` bytes store the
    crc32 of the rest — and every physical read verifies the stored crc
    before payloads are served.  A mismatch raises
    :class:`~repro.faults.CorruptPageError`, or — with ``scrub`` on —
    quarantines the page, rebuilds its image from the authoritative
    slot layout (one extra page read charged for the re-read) and
    continues with a :class:`~repro.faults.DegradedWarning`.  The crc
    header costs :data:`~repro.storage.layout.PAGE_CHECKSUM_BYTES` of
    packing capacity per page, accounted through
    :func:`~repro.storage.layout.usable_page_bytes`; with checksums off
    (the default) nothing changes, byte for byte.

    Transient disk faults are injectable through ``fault_injector`` (a
    callable invoked with the page id before every physical read; an
    ``OSError`` models a flaky read).  Failed attempts are retried up to
    ``io_retry_limit`` times — each failed attempt still charges one
    physical read — before :class:`~repro.faults.TransientIOError`
    gives up.  Fault-free, the gate is a no-op on every counter.
    """

    def __init__(
        self,
        io: IOCounter | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        pool: BufferPool | None = None,
        reclaim: bool = False,
        checksum: bool = False,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self.reclaim = reclaim
        self.checksum = False
        self._pool_file_id = pool.register_file() if pool is not None else -1
        self._pages: list[_DataPage] = []
        self._free: dict[int, list[DiskAddress]] = {}  # size -> LIFO of slots
        self._live_records = 0
        self._live_bytes = 0
        self._free_bytes = 0
        self.reclaimed_slots = 0  # how many appends were served by the free list
        # Integrity machinery (all inert by default).
        self.scrub = False  # auto-repair corrupt pages instead of raising
        self.fault_injector = None  # callable(page_id) -> None, may raise OSError
        self.io_retry_limit = 2  # transient-read retries before giving up
        self.corrupt_pages_detected = 0
        self.pages_scrubbed = 0
        self.transient_retries = 0
        if checksum:
            self.enable_checksum()

    def append(self, payload: Any, size_bytes: int) -> DiskAddress:
        """Store ``payload`` (conceptually ``size_bytes`` long); return its address."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        usable = self.usable_page_bytes
        span = record_span_pages(size_bytes, usable)
        if self.reclaim and size_bytes <= usable:
            stack = self._free.get(size_bytes)
            if stack:
                address = stack.pop()
                page = self._pages[address.page_id]
                page.payloads[address.slot] = payload
                page.slot_bytes[address.slot] = size_bytes
                self._free_bytes -= size_bytes
                self._live_records += 1
                self._live_bytes += size_bytes
                self.reclaimed_slots += 1
                # The slot's page is physically rewritten in place.
                self.io.record_write()
                self._stamp_page(address.page_id)
                if self.pool is not None:
                    self.pool.admit(self._pool_file_id, address.page_id)
                return address
        if span > 1:
            # Spilled record: dedicated pages, one write each, payload
            # addressed at the first page.  The pages are marked full so
            # later small records never interleave with the spill run.
            first = len(self._pages)
            for _ in range(span):
                page = _DataPage(used_bytes=self.page_size)
                self._pages.append(page)
                self.io.record_write()
                if self.pool is not None:
                    self.pool.admit(self._pool_file_id, len(self._pages) - 1)
            head = self._pages[first]
            head.payloads.append(payload)
            head.slot_bytes.append(size_bytes)
            self._live_records += 1
            self._live_bytes += size_bytes
            for page_id in range(first, first + span):
                self._stamp_page(page_id)
            return DiskAddress(first, 0)
        if not self._pages or self._pages[-1].used_bytes + size_bytes > usable:
            self._pages.append(_DataPage())
            self.io.record_write()
            if self.pool is not None:
                self.pool.admit(self._pool_file_id, len(self._pages) - 1)
        page = self._pages[-1]
        page.payloads.append(payload)
        page.slot_bytes.append(size_bytes)
        page.used_bytes += size_bytes
        self._live_records += 1
        self._live_bytes += size_bytes
        self._stamp_page(len(self._pages) - 1)
        return DiskAddress(len(self._pages) - 1, len(page.payloads) - 1)

    def release(self, address: DiskAddress) -> bool:
        """Return a record's slot to the free list; True if reclaimed.

        No I/O is charged: freeing updates the in-memory allocator map,
        and the physical page write is charged when the slot is reused.
        A no-op (returning False) with ``reclaim`` off — the seed's
        append-only accounting stays untouched — or when the slot was
        already released.
        """
        if not self.reclaim:
            return False
        page = self._pages[address.page_id]
        size = page.slot_bytes[address.slot]
        if size <= 0:
            return False
        page.payloads[address.slot] = None
        page.slot_bytes[address.slot] = -size
        self._live_records -= 1
        self._live_bytes -= size
        self._stamp_page(address.page_id)
        if size <= self.usable_page_bytes:
            self._free.setdefault(size, []).append(address)
            self._free_bytes += size
        return True

    @property
    def usable_page_bytes(self) -> int:
        """Record capacity per page (the crc header comes off in checksum mode)."""
        return usable_page_bytes(self.page_size, checksum=self.checksum)

    def _slot_span(self, address: DiskAddress) -> int:
        """Pages the record at ``address`` occupies (raises if released)."""
        page = self._pages[address.page_id]
        size = page.slot_bytes[address.slot]
        if size <= 0:
            raise KeyError(f"record at {address!r} was released")
        return record_span_pages(size, self.usable_page_bytes)

    # -- integrity: shadow images, verification, fault gate -------------
    def enable_checksum(self) -> None:
        """Switch the file into crc32 integrity mode (idempotent).

        Builds a shadow image for every existing page; pages appended
        later are stamped as they mutate.  Usable to harden a file that
        was built checksum-off — provided no stored record's page span
        would change under the reduced capacity (detail records are
        orders of magnitude below the threshold; the guard is for
        pathological page sizes).
        """
        if self.checksum:
            return
        full = self.page_size
        usable = usable_page_bytes(full, checksum=True)
        for page in self._pages:
            for size in page.slot_bytes:
                magnitude = abs(size)
                if record_span_pages(magnitude, full) != record_span_pages(
                    magnitude, usable
                ):
                    raise ValueError(
                        f"cannot enable checksums: a {magnitude}-byte record's "
                        f"page span changes under the {PAGE_CHECKSUM_BYTES}-byte "
                        "crc header"
                    )
        self.checksum = True
        for page_id in range(len(self._pages)):
            self._stamp_page(page_id)

    def _render_image(self, page_id: int) -> bytearray:
        """The page's deterministic shadow bytes (crc header zeroed).

        Slot contents are synthesised from ``(page_id, slot, offset)`` —
        payloads are live Python objects, so the simulator renders a
        stable stand-in byte stream instead of serialising them.  Freed
        slots render under a different mixing constant, so releasing a
        record changes the page's bytes exactly like a rewrite would.
        """
        page = self._pages[page_id]
        image = bytearray(self.page_size)
        offset = PAGE_CHECKSUM_BYTES
        for slot, size in enumerate(page.slot_bytes):
            salt = 13 if size > 0 else 29
            length = max(0, min(abs(size), self.page_size - offset))
            for i in range(length):
                image[offset + i] = (
                    page_id * 8191 + slot * 131 + i * 7 + salt
                ) & 0xFF
            offset += length
        return image

    def _stamp_page(self, page_id: int) -> None:
        """(Re)build a page's shadow image and stored crc (checksum mode)."""
        if not self.checksum:
            return
        image = self._render_image(page_id)
        image[:PAGE_CHECKSUM_BYTES] = struct.pack(
            ">I", zlib.crc32(bytes(image[PAGE_CHECKSUM_BYTES:]))
        )
        self._pages[page_id].image = image

    def corrupt_page(self, page_id: int, byte_index: int | None = None) -> None:
        """Fault injection: flip one byte of a page's stored image.

        Test-harness surface for the chaos suite — models a bit flip on
        disk.  The next verified read of the page detects the mismatch.
        """
        if not self.checksum:
            raise ValueError("corrupt_page requires checksum mode")
        image = self._pages[page_id].image
        assert image is not None
        index = PAGE_CHECKSUM_BYTES if byte_index is None else byte_index
        image[index] ^= 0xFF

    def _verify_page(self, page_id: int, io: IOCounter) -> None:
        """Check a page's stored crc against its bytes (checksum mode).

        A mismatch either raises :class:`~repro.faults.CorruptPageError`
        or — with ``scrub`` on — quarantines and rebuilds the page from
        the authoritative slot layout, charging one extra page read for
        the post-repair re-read and warning ``DegradedWarning``.
        """
        image = self._pages[page_id].image
        if image is None:  # pragma: no cover - stamped on every mutation
            self._stamp_page(page_id)
            return
        (stored,) = struct.unpack(">I", bytes(image[:PAGE_CHECKSUM_BYTES]))
        actual = zlib.crc32(bytes(image[PAGE_CHECKSUM_BYTES:]))
        if stored == actual:
            return
        self.corrupt_pages_detected += 1
        if not self.scrub:
            raise CorruptPageError(
                f"page {page_id} failed crc verification "
                f"(stored {stored:#010x}, computed {actual:#010x})",
                page_id=page_id,
            )
        self._stamp_page(page_id)
        self.pages_scrubbed += 1
        io.record_read()  # the re-read after the rebuild
        warnings.warn(
            f"scrubbed corrupt page {page_id} (crc mismatch); "
            "rebuilt from the authoritative slot layout",
            DegradedWarning,
            stacklevel=4,
        )

    def _guarded_access(
        self, page_id: int, io: IOCounter, *, allow_scrub: bool = True
    ) -> None:
        """The fault/integrity gate before one physical page read.

        Runs the fault injector (bounded retry on ``OSError``; every
        failed attempt still charges one physical read on ``io``), then
        crc verification in checksum mode.  Worker reader views pass
        ``allow_scrub=False``: repairing a page is the parent's single-
        writer job, so a forked worker fails fast and the degradation
        ladder re-runs the batch next to the authoritative copy.
        """
        if self.fault_injector is not None:
            failures = 0
            while True:
                try:
                    self.fault_injector(page_id)
                    break
                except OSError as exc:
                    failures += 1
                    io.record_read()  # the failed attempt hit the disk too
                    if failures > self.io_retry_limit:
                        raise TransientIOError(
                            f"page {page_id} read failed {failures} times "
                            f"(retry limit {self.io_retry_limit})",
                            page_id=page_id,
                            attempts=failures,
                        ) from exc
                    self.transient_retries += 1
        if self.checksum:
            if allow_scrub:
                self._verify_page(page_id, io)
            else:
                scrub = self.scrub
                self.scrub = False
                try:
                    self._verify_page(page_id, io)
                finally:
                    self.scrub = scrub

    def _charge_read(self, page_id: int) -> None:
        self._guarded_access(page_id, self.io)
        charge_page_read(self.io, self.pool, self._pool_file_id, page_id)

    def read(self, address: DiskAddress) -> Any:
        """Fetch one record, costing one page read per spanned page (unless pooled)."""
        for page_id in range(address.page_id, address.page_id + self._slot_span(address)):
            self._charge_read(page_id)
        return self._pages[address.page_id].payloads[address.slot]

    def peek(self, address: DiskAddress) -> Any:
        """Fetch one record without charging any I/O.

        For out-of-band access — serialisation, debugging — never for
        query execution, which must account every page touch.
        """
        self._slot_span(address)  # released-slot guard
        return self._pages[address.page_id].payloads[address.slot]

    def read_page(self, page_id: int) -> list[Any]:
        """Fetch a page's slot array with a single page read (unless pooled).

        Slot positions are preserved (callers index the result by
        ``DiskAddress.slot``); released slots read as ``None`` — they are
        never candidates, so refinement never dereferences them.
        """
        self._charge_read(page_id)
        return list(self._pages[page_id].payloads)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Live detail records stored across all pages."""
        return self._live_records

    @property
    def live_bytes(self) -> int:
        """Exact bytes of live records (spill-aware, excludes freed slots)."""
        return self._live_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes sitting on the free list, awaiting reuse."""
        return self._free_bytes

    @property
    def free_slots(self) -> int:
        """Released slots currently available for exact-size reuse."""
        return sum(len(stack) for stack in self._free.values())

    @property
    def records_per_page(self) -> float:
        """Observed packing density (records / page), 0.0 when empty.

        The planner calibrates its ``data_records_per_page`` constant from
        this instead of guessing — the actual first-fit occupancy, not a
        layout upper bound.
        """
        return self.record_count / self.page_count if self._pages else 0.0

    @property
    def size_bytes(self) -> int:
        """Total file size: pages are the allocation unit."""
        return self.page_count * self.page_size

    def peek_page(self, page_id: int) -> list[Any]:
        """Every *live* record on a page without charging any I/O.

        Out-of-band access only (serialisation, worker prewarm) — query
        execution must go through :meth:`read_page`.  Unlike
        :meth:`read_page` this skips released slots: its callers iterate
        records rather than indexing by slot.
        """
        page = self._pages[page_id]
        return [p for p, size in zip(page.payloads, page.slot_bytes) if size > 0]

    def reader_view(
        self, *, io: IOCounter | None = None, latency_seconds: float = 0.0
    ) -> "DataFileView":
        """A read-only view with private accounting (see :class:`DataFileView`)."""
        return DataFileView(self, io=io, latency_seconds=latency_seconds)


class DataFileView:
    """A read-only reader over a :class:`DataFile` with private accounting.

    The process executor gives each worker one of these over the (fork-
    inherited) data file: reads charge the *view's* counter — merged back
    into batch totals by the parent — and apply the worker's simulated
    per-page latency, without touching the shared file's counter or
    buffer pool.  No pool is attached by design: each worker models its
    own disk arm, and the paper-exact accounting the process backend
    reproduces is the uncached (``pool_capacity=0``) one.

    Mutating methods are deliberately absent; the parent is the only
    writer, and it re-forks the pool whenever the file grows.
    """

    def __init__(
        self,
        base: DataFile,
        *,
        io: IOCounter | None = None,
        latency_seconds: float = 0.0,
    ):
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        self.base = base
        self.io = io if io is not None else IOCounter()
        self.latency_seconds = float(latency_seconds)
        self.page_size = base.page_size

    def _charge(self, page_id: int) -> None:
        # Same fault/integrity gate as the base file, charged on the
        # view's private counter — but never scrubbing: a forked worker
        # repairing its COW copy would silently diverge from the parent,
        # so corruption fails fast here and the degradation ladder
        # re-runs the batch next to the authoritative copy.
        self.base._guarded_access(page_id, self.io, allow_scrub=False)
        self.io.record_read()
        if self.latency_seconds > 0.0:
            time.sleep(self.latency_seconds)

    def read(self, address: DiskAddress) -> Any:
        """Fetch one record, costing one page read per spanned page on the view's counter."""
        for page_id in range(
            address.page_id, address.page_id + self.base._slot_span(address)
        ):
            self._charge(page_id)
        return self.base._pages[address.page_id].payloads[address.slot]

    def read_page(self, page_id: int) -> list[Any]:
        """Fetch every record on a page with one (view-charged) page read."""
        self._charge(page_id)
        return list(self.base._pages[page_id].payloads)

    def peek(self, address: DiskAddress) -> Any:
        """Fetch one record without charging any I/O."""
        return self.base.peek(address)

    @property
    def page_count(self) -> int:
        return self.base.page_count

    @property
    def record_count(self) -> int:
        return self.base.record_count

    @property
    def records_per_page(self) -> float:
        return self.base.records_per_page

    def __repr__(self) -> str:
        return (
            f"DataFileView(pages={self.page_count}, io={self.io!r}, "
            f"latency={self.latency_seconds})"
        )


class PageStore:
    """Allocator for index-node pages with read/write accounting.

    Trees register each node here; visiting a node during a query costs one
    page read, writing a node during an update costs one page write.
    """

    def __init__(
        self,
        io: IOCounter | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        pool: BufferPool | None = None,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self._pool_file_id = pool.register_file() if pool is not None else -1
        self._next_id = 0
        self._live: set[int] = set()

    def allocate(self) -> int:
        """Reserve a fresh page and return its id (no I/O charged)."""
        page_id = self._next_id
        self._next_id += 1
        self._live.add(page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page (no I/O charged)."""
        self._live.discard(page_id)
        if self.pool is not None:
            self.pool.invalidate(self._pool_file_id, page_id)

    def touch_read(self, page_id: int) -> None:
        """Charge one page read for visiting ``page_id`` (unless pooled)."""
        if page_id not in self._live:
            raise KeyError(f"page {page_id} is not allocated")
        charge_page_read(self.io, self.pool, self._pool_file_id, page_id)

    def touch_write(self, page_id: int) -> None:
        """Charge one page write for flushing ``page_id`` (write-through)."""
        if page_id not in self._live:
            raise KeyError(f"page {page_id} is not allocated")
        self.io.record_write()
        if self.pool is not None:
            self.pool.admit(self._pool_file_id, page_id)

    @property
    def page_count(self) -> int:
        return len(self._live)

    @property
    def size_bytes(self) -> int:
        return self.page_count * self.page_size
