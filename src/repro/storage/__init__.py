"""Simulated paged storage: I/O counting, buffer pool, data files, layouts."""

from repro.storage.bufferpool import BufferPool
from repro.storage.layout import (
    WAL_HEADER_BYTES,
    NodeLayout,
    record_span_pages,
    rstar_layout,
    upcr_layout,
    utree_layout,
    wal_entry_bytes,
)
from repro.storage.pager import (
    DEFAULT_PAGE_SIZE,
    DataFile,
    DataFileView,
    DiskAddress,
    IOCounter,
    PageStore,
)
from repro.storage.shm import SharedArena
from repro.storage.wal import WalError, WriteAheadLog

# NOTE: repro.storage.serialize is intentionally NOT imported here — it
# depends on repro.core (which itself imports repro.storage.pager) and an
# eager import would create a cycle.  Import it directly:
#   from repro.storage.serialize import save_utree, load_utree
# or use the re-exports on the top-level repro package.

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DataFile",
    "DataFileView",
    "DiskAddress",
    "IOCounter",
    "NodeLayout",
    "PageStore",
    "SharedArena",
    "WAL_HEADER_BYTES",
    "WalError",
    "WriteAheadLog",
    "record_span_pages",
    "rstar_layout",
    "upcr_layout",
    "utree_layout",
    "wal_entry_bytes",
]
