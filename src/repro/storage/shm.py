"""Shared-memory placement for the process executor's hot read-only state.

The multiprocess backend (:mod:`repro.exec.mpexec`) forks one worker per
shard / chunk group.  Fork gives every worker a copy-on-write view of the
parent heap, which is already cheap — but Python object headers are
write-hot (every refcount bump dirties the page they live on), so pure
COW slowly privatises whatever the workers touch.  The *numeric* hot
state has no such problem once its buffers are moved out of the
refcounted heap: this module copies NumPy arrays into anonymous
``MAP_SHARED`` mappings (``mmap.mmap(-1, nbytes)``) **before** the fork,
so every worker reads the same physical pages forever, zero-copy and
with nothing pickled.

Anonymous shared mappings are the fork-native flavour of
``multiprocessing.shared_memory``: same kernel mechanism (shared
anonymous pages instead of a named ``/dev/shm`` segment), but with no
name to leak, no resource tracker to appease and automatic reclamation
when the last process unmaps.  The trade-off is that attachment happens
only by inheritance — exactly the lifecycle of a fork-based pool, which
creates its arena, shares the hot arrays, then forks.

What goes in the arena (see ``ARCHITECTURE.md``):

* the columnar filter-kernel sidecars (CFB face coefficients / PCR
  planes / MBR columns) via ``_ColumnarKernel.rebind_columns``;
* prewarmed :class:`~repro.uncertainty.montecarlo.SampleCache` clouds
  via ``SampleCache.rebind_resident``.

Data-file *payload* pages hold live Python objects and cannot move into
flat buffers; they stay fork-inherited COW (read-only access keeps them
physically shared in practice).
"""

from __future__ import annotations

import mmap

import numpy as np

__all__ = ["SharedArena"]


class SharedArena:
    """A pool of anonymous shared mappings backing rebound NumPy arrays.

    :meth:`share_array` copies one array into a fresh ``MAP_SHARED``
    anonymous mapping and returns an equal ndarray viewing it; callers
    rebind their attribute to the returned array before forking workers.
    The arena keeps every mapping alive until :meth:`close`.
    """

    def __init__(self) -> None:
        self._maps: list[mmap.mmap] = []
        self.arrays_shared = 0
        self.bytes_shared = 0
        self._closed = False

    def share_array(self, array: np.ndarray) -> np.ndarray:
        """An equal array whose buffer lives in a shared anonymous mapping.

        Empty arrays are returned unchanged (``mmap`` rejects length 0,
        and there is nothing to share).  The copy preserves dtype and
        shape; values are bit-identical.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            return array
        buf = mmap.mmap(-1, array.nbytes)
        shared = np.frombuffer(buf, dtype=array.dtype).reshape(array.shape)
        np.copyto(shared, array)
        self._maps.append(buf)
        self.arrays_shared += 1
        self.bytes_shared += array.nbytes
        return shared

    def close(self) -> None:
        """Release mappings no live array still references.

        A mapping with an exported buffer (some ndarray still views it)
        raises ``BufferError`` on close; those are left mapped — the
        kernel reclaims them when the last referencing process exits, so
        skipping them is safe, never a leak across process lifetime.
        """
        self._closed = True
        remaining: list[mmap.mmap] = []
        for mapping in self._maps:
            try:
                mapping.close()
            except BufferError:
                remaining.append(mapping)
        self._maps = remaining

    def __repr__(self) -> str:
        return (
            f"SharedArena(arrays={self.arrays_shared}, "
            f"bytes={self.bytes_shared}, closed={self._closed})"
        )
