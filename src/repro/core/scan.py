"""Sequential-scan baseline (Section 5, opening paragraph).

Before introducing the U-tree the paper notes that CFBs already enable a
flat two-phase plan: scan every object summary, prune/validate with
Observation 3, and refine the survivors.  This class implements that plan
so experiments can show what the tree's filter step actually buys.

The summaries live in a simulated flat file: scanning charges
``ceil(n * entry_bytes / page_size)`` page reads per query.
"""

from __future__ import annotations

import math
import time

from repro.core.catalog import UCatalog
from repro.core.cfb import fit_cfbs
from repro.core.pcr import compute_pcrs
from repro.core.pruning import CFBRules, Verdict
from repro.core.query import ProbRangeQuery, QueryAnswer, refine_candidates
from repro.core.stats import QueryStats
from repro.core.utree import UTreeLeafRecord
from repro.storage.layout import utree_layout
from repro.storage.pager import DataFile, DiskAddress, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = ["SequentialScan"]


class SequentialScan:
    """Flat-file filter-and-refine over CFB summaries."""

    def __init__(
        self,
        dim: int,
        catalog: UCatalog | None = None,
        *,
        page_size: int = 4096,
        io: IOCounter | None = None,
        estimator: AppearanceEstimator | None = None,
    ):
        self.catalog = catalog if catalog is not None else UCatalog.paper_utree_default()
        self.dim = dim
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.estimator = estimator if estimator is not None else AppearanceEstimator()
        self.data_file = DataFile(self.io, page_size)
        self._entry_bytes = utree_layout(dim, page_size).leaf_entry_bytes
        self._records: list[UTreeLeafRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def scan_pages(self) -> int:
        """Flat-file pages one full scan must read."""
        if not self._records:
            return 0
        return math.ceil(len(self._records) * self._entry_bytes / self.page_size)

    def insert(self, obj: UncertainObject) -> None:
        """Append an object summary to the flat file."""
        if obj.dim != self.dim:
            raise ValueError(f"object dimensionality {obj.dim} != scan dimensionality {self.dim}")
        pcrs = compute_pcrs(obj, self.catalog)
        outer, inner = fit_cfbs(pcrs)
        address = self.data_file.append(obj, obj.detail_size_bytes())
        self._records.append(
            UTreeLeafRecord(
                oid=obj.oid,
                mbr=obj.mbr,
                outer=outer,
                inner=inner,
                address=address,
                rules=CFBRules(self.catalog, outer, inner),
            )
        )

    def delete(self, oid: int) -> bool:
        """Remove an object summary by id."""
        for i, record in enumerate(self._records):
            if record.oid == oid:
                del self._records[i]
                return True
        return False

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer a prob-range query by scanning every summary."""
        start = time.perf_counter()
        stats = QueryStats()
        answer = QueryAnswer(stats=stats)
        candidates: list[tuple[int, DiskAddress]] = []

        stats.node_accesses = self.scan_pages
        self.io.record_read(stats.node_accesses)
        for record in self._records:
            verdict = record.rules.apply(record.mbr, query.rect, query.threshold)
            if verdict is Verdict.VALIDATED:
                answer.object_ids.append(record.oid)
                stats.validated_directly += 1
            elif verdict is Verdict.CANDIDATE:
                candidates.append((record.oid, record.address))
            else:
                stats.pruned += 1

        refine_candidates(
            candidates, query, self.data_file, self.estimator, stats, answer.object_ids
        )
        stats.result_count = len(answer.object_ids)
        stats.wall_seconds = time.perf_counter() - start
        return answer
