"""Sequential-scan baseline (Section 5, opening paragraph).

Before introducing the U-tree the paper notes that CFBs already enable a
flat two-phase plan: scan every object summary, prune/validate with
Observation 3, and refine the survivors.  This class implements that plan
so experiments can show what the tree's filter step actually buys.

The summaries live in a simulated flat file: scanning charges
``ceil(n * entry_bytes / page_size)`` page reads per query.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.core.catalog import UCatalog
from repro.core.cfb import fit_cfbs
from repro.core.filterkernel import (
    CFBFilterKernel,
    classify_records,
    resolve_filter_kernel,
)
from repro.core.pcr import compute_pcrs
from repro.core.pruning import CFBRules, Verdict
from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.utree import UTreeLeafRecord
from repro.exec.access import FilterResult
from repro.exec.executor import execute_query
from repro.storage.bufferpool import BufferPool, charge_page_read
from repro.storage.layout import utree_layout
from repro.storage.pager import DataFile, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = ["SequentialScan"]


class SequentialScan:
    """Flat-file filter-and-refine over CFB summaries."""

    def __init__(
        self,
        dim: int,
        catalog: UCatalog | None = None,
        *,
        page_size: int = 4096,
        io: IOCounter | None = None,
        pool: BufferPool | None = None,
        estimator: AppearanceEstimator | None = None,
        filter_kernel: str | bool | None = None,
    ):
        self.catalog = catalog if catalog is not None else UCatalog.paper_utree_default()
        self.dim = dim
        self.page_size = page_size
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self._summary_file_id = pool.register_file() if pool is not None else -1
        self.estimator = estimator if estimator is not None else AppearanceEstimator()
        self.data_file = DataFile(self.io, page_size, pool=pool)
        self._entry_bytes = utree_layout(dim, page_size).leaf_entry_bytes
        self._records: list[UTreeLeafRecord] = []
        self.kernel = (
            CFBFilterKernel(self.catalog, dim)
            if resolve_filter_kernel(filter_kernel)
            else None
        )
        # Runtime toggle (see UTree.use_kernel): inserts always feed the
        # sidecar; queries consult it only while use_kernel holds.
        self.use_kernel = True

    @property
    def active_kernel(self):
        """The filter kernel queries should use right now (None = scalar)."""
        return self.kernel if self.use_kernel else None

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[UTreeLeafRecord]:
        """Iterate the stored summaries (no I/O charged; for cost models)."""
        return iter(self._records)

    @property
    def scan_pages(self) -> int:
        """Flat-file pages one full scan must read."""
        if not self._records:
            return 0
        return math.ceil(len(self._records) * self._entry_bytes / self.page_size)

    def insert(self, obj: UncertainObject) -> None:
        """Append an object summary to the flat file."""
        if obj.dim != self.dim:
            raise ValueError(f"object dimensionality {obj.dim} != scan dimensionality {self.dim}")
        pcrs = compute_pcrs(obj, self.catalog)
        outer, inner = fit_cfbs(pcrs)
        address = self.data_file.append(obj, obj.detail_size_bytes())
        record = UTreeLeafRecord(
            oid=obj.oid,
            mbr=obj.mbr,
            outer=outer,
            inner=inner,
            address=address,
            rules=CFBRules(self.catalog, outer, inner),
        )
        if self.kernel is not None:
            record.row = self.kernel.add(obj.mbr, outer, inner)
        self._records.append(record)

    def delete(self, oid: int) -> bool:
        """Remove an object summary by id."""
        for i, record in enumerate(self._records):
            if record.oid == oid:
                if self.kernel is not None:
                    self.kernel.release(record.row)
                # Feed the data file's free list (no-op unless reclaim is on).
                self.data_file.release(record.address)
                del self._records[i]
                return True
        return False

    def filter_candidates(self, query: ProbRangeQuery) -> FilterResult:
        """Filter phase: read the whole flat file, classify every summary."""
        result = FilterResult()
        result.node_accesses = self.scan_pages
        if self.pool is None:
            self.io.record_read(result.node_accesses)
        else:
            # A full scan touches every summary page exactly once, so it
            # declares itself sequential: the pool admits these frames to
            # its probation queue instead of flooding the main LRU.
            for page_id in range(result.node_accesses):
                charge_page_read(
                    self.io, self.pool, self._summary_file_id, page_id,
                    sequential=True,
                )
        kernel = self.active_kernel
        if kernel is not None:
            # One stacked Rules-1-5 call over the whole summary file —
            # verdicts and ordering match the scalar loop bit for bit.
            classify_records(
                kernel, self._records, query.rect, query.threshold, result
            )
            return result
        for record in self._records:
            verdict = record.rules.apply(record.mbr, query.rect, query.threshold)
            if verdict is Verdict.VALIDATED:
                result.validated.append(record.oid)
            elif verdict is Verdict.CANDIDATE:
                result.candidates.append((record.oid, record.address))
            else:
                result.pruned += 1
        return result

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer a prob-range query through the shared executor."""
        return execute_query(self, query)
