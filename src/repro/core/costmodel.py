"""Analytical query-cost estimation for U-trees.

Section 7 of the paper proposes deriving "analytical models that can
accurately estimate the query costs", citing the classic R-tree model of
Theodoridis and Sellis (PODS'96), for use in query optimisation.  That
model predicts the number of node accesses of a window query as

    NA(q) = 1 + sum_over_entries  prod_i ( s_i + q_i )

where ``s_i`` is the entry rectangle's extent on axis ``i`` and ``q_i``
the query extent, both normalised by the data-space extent — i.e. the
probability that a data-distributed query window intersects the entry
rectangle.

Adapting it to U-trees only changes *which* rectangle each entry
contributes: a prob-range query with threshold ``p_q`` probes the entry
boxes ``e.MBR(p_j)`` at the catalog value selected by Observation 4
(the largest ``p_j <= p_q``), so the model sums intersection
probabilities of exactly those boxes.  The same adaptation yields the
expected number of *objects reaching the refinement step* from the leaf
boxes, which prices the CPU side.

The estimator walks the in-memory tree once, caches per-level extent
sums per catalog index, and then answers cost questions in O(m) — cheap
enough for an optimiser loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.index.node import Node

__all__ = ["CostEstimate", "UTreeCostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted costs of one prob-range query."""

    node_accesses: float
    leaf_hits: float

    def total_io(self, data_records_per_page: float = 1.0) -> float:
        """Node accesses plus an estimate of refinement data pages."""
        if data_records_per_page <= 0:
            raise ValueError("data_records_per_page must be positive")
        return self.node_accesses + self.leaf_hits / data_records_per_page


class UTreeCostModel:
    """Theodoridis-Sellis style node-access model adapted to U-trees.

    Build once per tree state (a snapshot of the entry geometry); if the
    tree changes materially, build a new model.
    """

    def __init__(self, tree: UTree):
        self.catalog = tree.catalog
        self.dim = tree.dim
        root = tree.engine.root
        # domain: the root summary at layer 0 bounds every object support.
        if root.entries:
            stacked = root.stacked_profiles()
            lo = stacked[:, :, 0, :].min(axis=0)
            hi = stacked[:, :, 1, :].max(axis=0)
            self._domain_lo = lo[0]
            self._domain_hi = hi[0]
        else:
            self._domain_lo = np.zeros(self.dim)
            self._domain_hi = np.ones(self.dim)
        self._domain_extent = np.maximum(self._domain_hi - self._domain_lo, 1e-12)

        # Per catalog index j: list over non-root nodes / leaf entries of
        # their box extents at layer j (normalised by the domain).
        m = self.catalog.size
        self._inner_extents: list[list[np.ndarray]] = [[] for _ in range(m)]
        self._leaf_extents: list[list[np.ndarray]] = [[] for _ in range(m)]
        self._walk(root)
        self._inner_arrays = [
            np.stack(v) if v else np.zeros((0, self.dim)) for v in self._inner_extents
        ]
        self._leaf_arrays = [
            np.stack(v) if v else np.zeros((0, self.dim)) for v in self._leaf_extents
        ]

    def _walk(self, node: Node) -> None:
        for entry in node.entries:
            extents = (entry.profile[:, 1, :] - entry.profile[:, 0, :]) / self._domain_extent
            if node.is_leaf:
                for j in range(self.catalog.size):
                    self._leaf_extents[j].append(extents[j])
            else:
                for j in range(self.catalog.size):
                    self._inner_extents[j].append(extents[j])
                self._walk(entry.child)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _layer_for(self, pq: float) -> int:
        j = self.catalog.index_of_largest_at_most(pq)
        return 0 if j is None else j

    def estimate(self, query: ProbRangeQuery) -> CostEstimate:
        """Predict node accesses and leaf hits for one query."""
        if query.dim != self.dim:
            raise ValueError(f"query dimension {query.dim} != model dimension {self.dim}")
        j = self._layer_for(query.threshold)
        q_extent = query.rect.extent / self._domain_extent

        def hits(extents: np.ndarray) -> float:
            if extents.shape[0] == 0:
                return 0.0
            probs = np.prod(np.minimum(extents + q_extent, 1.0), axis=1)
            return float(probs.sum())

        node_accesses = 1.0 + hits(self._inner_arrays[j])
        leaf_hits = hits(self._leaf_arrays[j])
        return CostEstimate(node_accesses=node_accesses, leaf_hits=leaf_hits)

    def estimate_workload(self, queries) -> CostEstimate:
        """Average prediction over a workload."""
        estimates = [self.estimate(q) for q in queries]
        if not estimates:
            return CostEstimate(0.0, 0.0)
        return CostEstimate(
            node_accesses=float(np.mean([e.node_accesses for e in estimates])),
            leaf_hits=float(np.mean([e.leaf_hits for e in estimates])),
        )
