"""The paper's core contribution: PCRs, CFBs, pruning rules, U-tree, U-PCR."""

from repro.core.catalog import UCatalog
from repro.core.costmodel import CostEstimate, UTreeCostModel
from repro.core.cfb import LinearBoxFunction, fit_cfbs, fit_inner_cfb, fit_outer_cfb
from repro.core.filterkernel import (
    CFBFilterKernel,
    PCRFilterKernel,
    resolve_filter_kernel,
)
from repro.core.nn import (
    NNCandidate,
    NNResult,
    expected_nearest_neighbors,
    probabilistic_nearest_neighbors,
)
from repro.core.pcr import PCRSet, compute_pcrs
from repro.core.pruning import CFBRules, PCRRules, Verdict, covers_band, subtree_may_qualify
from repro.core.query import ProbRangeQuery, QueryAnswer, refine_candidates
from repro.core.scan import SequentialScan
from repro.core.stats import QueryStats, WorkloadStats
from repro.core.upcr import UPCRLeafRecord, UPCRTree
from repro.core.utree import UpdateCost, UTree, UTreeLeafRecord

__all__ = [
    "CFBFilterKernel",
    "CFBRules",
    "CostEstimate",
    "NNCandidate",
    "NNResult",
    "LinearBoxFunction",
    "PCRFilterKernel",
    "PCRRules",
    "PCRSet",
    "ProbRangeQuery",
    "QueryAnswer",
    "QueryStats",
    "SequentialScan",
    "UCatalog",
    "UPCRLeafRecord",
    "UPCRTree",
    "UTreeCostModel",
    "UTree",
    "UTreeLeafRecord",
    "UpdateCost",
    "Verdict",
    "WorkloadStats",
    "compute_pcrs",
    "covers_band",
    "expected_nearest_neighbors",
    "fit_cfbs",
    "fit_inner_cfb",
    "fit_outer_cfb",
    "probabilistic_nearest_neighbors",
    "refine_candidates",
    "resolve_filter_kernel",
    "subtree_may_qualify",
]
