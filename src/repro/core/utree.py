"""The U-tree: the paper's primary contribution (Section 5).

A U-tree is an R*-style dynamic index over uncertain objects:

* a **leaf entry** stores the object's two CFBs, the MBR of its
  uncertainty region and the disk address of its detail record;
* an **intermediate entry** stores two rectangles — ``MBR⊥``, bounding the
  children's ``cfb_out(p_1)``, and ``MBR``, bounding their
  ``cfb_out(p_m)`` — from which the linear function ``e.MBR(p)``
  (Eq. 15) is derived on demand;
* updates use the R* algorithms with summed penalty metrics and the
  median-catalog-value split heuristic (Section 5.3);
* a prob-range query prunes subtrees with Observation 4, prunes/validates
  leaf objects with Observation 3, and sends the survivors to Monte-Carlo
  refinement grouped by data page (Section 5.2).

The chord-interpolation behaviour of intermediate entries is provided by
the engine's ``chord_values`` mode; byte-faithful fanout comes from
:func:`repro.storage.layout.utree_layout`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.catalog import UCatalog
from repro.core.cfb import LinearBoxFunction, fit_cfbs
from repro.core.filterkernel import (
    CFBFilterKernel,
    classify_records,
    resolve_filter_kernel,
)
from repro.core.pcr import compute_pcrs
from repro.core.pruning import CFBRules, Verdict, subtree_may_qualify
from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.exec.access import FilterResult
from repro.exec.executor import execute_query
from repro.geometry.rect import Rect
from repro.index.engine import RStarEngine
from repro.index.node import Entry
from repro.storage.bufferpool import BufferPool
from repro.storage.layout import utree_layout
from repro.storage.pager import DataFile, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = ["UTree", "UTreeLeafRecord", "UpdateCost"]


@dataclass
class UTreeLeafRecord:
    """Payload of a U-tree leaf entry (what one leaf slot stores on disk).

    ``row`` is the record's handle into the owning structure's columnar
    filter-kernel sidecar (-1 when the kernel is off); it is in-memory
    bookkeeping, not part of the on-disk entry layout.
    """

    oid: int
    mbr: Rect
    outer: LinearBoxFunction
    inner: LinearBoxFunction
    address: DiskAddress
    rules: CFBRules
    row: int = -1


@dataclass
class UpdateCost:
    """Cost breakdown of one insertion/deletion (Fig. 11)."""

    io_reads: int = 0
    io_writes: int = 0
    cpu_seconds: float = 0.0

    @property
    def io_total(self) -> int:
        return self.io_reads + self.io_writes


class UTree:
    """A dynamic U-tree over multi-dimensional uncertain objects."""

    def __init__(
        self,
        dim: int,
        catalog: UCatalog | None = None,
        *,
        page_size: int = 4096,
        io: IOCounter | None = None,
        pool: BufferPool | None = None,
        estimator: AppearanceEstimator | None = None,
        split_mode: str = "median-layer",
        intermediate_bounds: str = "linear",
        filter_kernel: str | bool | None = None,
    ):
        """Build an empty U-tree.

        ``intermediate_bounds`` selects how non-leaf entries summarise
        their subtree: ``"linear"`` is the paper's design (store MBR⊥ and
        MBR, derive e.MBR(p) by Eq. 15); ``"exact"`` stores the exact
        union at every catalog value — tighter pruning boxes at the same
        simulated entry size, used only for the ablation bench that
        quantifies what the linear approximation costs.

        ``pool`` attaches a shared buffer pool in front of both the node
        store and the data file; omit it (or use capacity 0) for the
        paper's uncached I/O accounting.

        ``filter_kernel`` (``"on"``/``"off"``; default resolves via the
        ``REPRO_FILTER_KERNEL`` environment variable, then on) selects
        the vectorized leaf-classification path: verdicts and node
        accesses are bit-identical either way, ``"off"`` keeps the
        paper-exact scalar per-record rule evaluation.
        """
        if intermediate_bounds not in ("linear", "exact"):
            raise ValueError(f"unknown intermediate_bounds {intermediate_bounds!r}")
        self.catalog = catalog if catalog is not None else UCatalog.paper_utree_default()
        self.dim = dim
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self.estimator = estimator if estimator is not None else AppearanceEstimator()
        layout = utree_layout(dim, page_size)
        self.engine = RStarEngine(
            dim,
            self.catalog.size,
            layout,
            io=self.io,
            pool=pool,
            chord_values=self.catalog.values if intermediate_bounds == "linear" else None,
            split_mode=split_mode,
        )
        self.data_file = DataFile(self.io, page_size, pool=pool)
        self._profiles: dict[int, object] = {}
        self.kernel = (
            CFBFilterKernel(self.catalog, dim)
            if resolve_filter_kernel(filter_kernel)
            else None
        )
        # Runtime toggle (the auto-tuner flips it between batches): the
        # kernel sidecar is always *fed* on insert so toggling is safe,
        # but queries consult it only while use_kernel holds.
        self.use_kernel = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        objects,
        dim: int | None = None,
        catalog: UCatalog | None = None,
        fill: float = 1.0,
        **kwargs,
    ) -> "UTree":
        """Build a U-tree by STR packing instead of repeated insertion.

        Produces near-full nodes (fewer pages, better query I/O) at a
        build cost of one CFB fit per object plus a few sorts — see
        ``benchmarks/test_bulkload.py`` for the comparison against the
        paper's insert-based construction.
        """
        from repro.index.bulkload import bulk_load as engine_bulk_load

        objects = list(objects)
        if not objects and dim is None:
            raise ValueError("cannot infer dimensionality from an empty object list")
        tree = cls(dim if dim is not None else objects[0].dim, catalog, **kwargs)
        items = []
        for obj in objects:
            if obj.dim != tree.dim:
                raise ValueError(
                    f"object dimensionality {obj.dim} != tree dimensionality {tree.dim}"
                )
            pcrs = compute_pcrs(obj, tree.catalog)
            outer, inner = fit_cfbs(pcrs)
            address = tree.data_file.append(obj, obj.detail_size_bytes())
            record = UTreeLeafRecord(
                oid=obj.oid,
                mbr=obj.mbr,
                outer=outer,
                inner=inner,
                address=address,
                rules=CFBRules(tree.catalog, outer, inner),
            )
            if tree.kernel is not None:
                record.row = tree.kernel.add(obj.mbr, outer, inner)
            profile = outer.profile(tree.catalog)
            items.append((profile, record))
            tree._profiles[obj.oid] = profile
        engine_bulk_load(tree.engine, items, fill=fill)
        return tree

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    @property
    def active_kernel(self):
        """The filter kernel queries should use right now (None = scalar)."""
        return self.kernel if self.use_kernel else None

    def __len__(self) -> int:
        return len(self.engine)

    @property
    def size_bytes(self) -> int:
        """Index size in bytes (node pages only, as in Table 1)."""
        return self.engine.size_bytes

    @property
    def height(self) -> int:
        return self.engine.height

    def insert(self, obj: UncertainObject) -> UpdateCost:
        """Insert an object; returns the I/O + CPU cost breakdown.

        The CPU component covers PCR derivation and the simplex fits —
        the paper's one-time per-object cost (Section 4.4, Fig. 11a).
        """
        if obj.dim != self.dim:
            raise ValueError(f"object dimensionality {obj.dim} != tree dimensionality {self.dim}")
        snapshot = self.io.snapshot()
        start = time.perf_counter()
        pcrs = compute_pcrs(obj, self.catalog)
        outer, inner = fit_cfbs(pcrs)
        profile = outer.profile(self.catalog)
        cpu = time.perf_counter() - start

        address = self.data_file.append(obj, obj.detail_size_bytes())
        record = UTreeLeafRecord(
            oid=obj.oid,
            mbr=obj.mbr,
            outer=outer,
            inner=inner,
            address=address,
            rules=CFBRules(self.catalog, outer, inner),
        )
        if self.kernel is not None:
            record.row = self.kernel.add(obj.mbr, outer, inner)
        self.engine.insert(profile, record)
        self._profiles[obj.oid] = profile
        reads, writes = self.io.delta(snapshot)
        return UpdateCost(io_reads=reads, io_writes=writes, cpu_seconds=cpu)

    def delete(self, oid: int) -> UpdateCost | None:
        """Delete an object by id; returns its cost, or None if absent."""
        profile = self._profiles.get(oid)
        if profile is None:
            return None
        snapshot = self.io.snapshot()
        matched: list[UTreeLeafRecord] = []

        def match(rec: UTreeLeafRecord) -> bool:
            if rec.oid == oid:
                matched.append(rec)
                return True
            return False

        removed = self.engine.delete(match, profile)
        if not removed:
            return None
        if self.kernel is not None and matched:
            self.kernel.release(matched[0].row)
        if matched:
            # Feed the data file's free list (a no-op unless reclaim is on).
            self.data_file.release(matched[0].address)
        del self._profiles[oid]
        reads, writes = self.io.delta(snapshot)
        return UpdateCost(io_reads=reads, io_writes=writes, cpu_seconds=0.0)

    def __contains__(self, oid: int) -> bool:
        return oid in self._profiles

    # ------------------------------------------------------------------
    # queries (the AccessMethod protocol)
    # ------------------------------------------------------------------
    def filter_candidates(self, query: ProbRangeQuery) -> FilterResult:
        """Filter phase: prune with Observation 4, classify leaves with
        Observation 3, leave survivors for the executor's refinement.

        Subtree descent is identical in both kernel modes; with the
        kernel on, visited leaf records are collected in traversal order
        and classified by one stacked Rules-1-5 call instead of one
        scalar rule pass per record — verdicts, ordering and node
        accesses are bit-identical.
        """
        rq = query.rect
        pq = query.threshold
        result = FilterResult()

        def descend(entry: Entry) -> bool:
            return subtree_may_qualify(
                self.catalog,
                lambda j: Rect.from_arrays(entry.profile[j, 0], entry.profile[j, 1]),
                rq,
                pq,
            )

        kernel = self.active_kernel
        if kernel is not None:
            records: list[UTreeLeafRecord] = []
            result.node_accesses = self.engine.traverse(
                descend, lambda entry: records.append(entry.data)
            )
            classify_records(kernel, records, rq, pq, result)
            return result

        def on_leaf(entry: Entry) -> None:
            record: UTreeLeafRecord = entry.data
            verdict = record.rules.apply(record.mbr, rq, pq)
            if verdict is Verdict.VALIDATED:
                result.validated.append(record.oid)
            elif verdict is Verdict.CANDIDATE:
                result.candidates.append((record.oid, record.address))
            else:
                result.pruned += 1

        result.node_accesses = self.engine.traverse(descend, on_leaf)
        return result

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer a prob-range query through the shared executor."""
        return execute_query(self, query)

    # ------------------------------------------------------------------
    # maintenance helpers
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate the structural invariants of the underlying engine."""
        self.engine.check_invariants()
