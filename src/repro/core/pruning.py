"""Pruning and validation rules: Observations 1-4 of the paper.

These rules decide, from pre-computed PCRs or CFBs alone, whether an
object *cannot* satisfy a prob-range query (prune), *must* satisfy it
(validate), or needs its appearance probability computed (candidate).
Avoiding that Monte-Carlo computation is the entire point of the paper.

Two rule engines share the same logic skeleton:

* :class:`PCRRules` — Observation 2 (finite catalog) over exact PCRs; used
  by the U-PCR comparison structure and the sequential-scan filter.
* :class:`CFBRules` — Observation 3: the same five rules with each PCR
  replaced by the appropriate conservative functional box (inner boxes for
  containment-style pruning, outer boxes for intersection-style pruning
  and slab validation, inner planes for Rule 5 validation).

Both engines apply the paper's rule ordering: the pruning rule first, then
the validation rules (Section 4.1 gives the order 1-4-3 for
``p_q > 0.5`` and 2-5-3 otherwise).
"""

from __future__ import annotations

import enum
import math

from repro.core.catalog import UCatalog
from repro.core.cfb import LinearBoxFunction
from repro.core.pcr import PCRSet
from repro.geometry.rect import Rect

__all__ = ["Verdict", "covers_band", "PCRRules", "CFBRules", "subtree_may_qualify"]


class Verdict(enum.Enum):
    """Outcome of applying the filter rules to one object."""

    PRUNED = "pruned"
    VALIDATED = "validated"
    CANDIDATE = "candidate"


def covers_band(query: Rect, mbr: Rect, axis: int, band_lo: float, band_hi: float) -> bool:
    """Does ``query`` fully cover the part of ``mbr`` between two planes?

    The planes are perpendicular to ``axis`` at coordinates ``band_lo`` and
    ``band_hi`` (either may be infinite).  This is the O(d) primitive of
    Section 4.1: the query must contain the MBR's projection on every
    other axis, and its own projection on ``axis`` must contain the band
    clipped to the MBR.  An empty clipped band returns False — validation
    must never fire on empty geometry.
    """
    lo = max(band_lo, float(mbr.lo[axis]))
    hi = min(band_hi, float(mbr.hi[axis]))
    if lo > hi:
        return False
    for i in range(mbr.dim):
        if i == axis:
            continue
        if query.lo[i] > mbr.lo[i] or query.hi[i] < mbr.hi[i]:
            return False
    return bool(query.lo[axis] <= lo and hi <= query.hi[axis])


class _RuleEngine:
    """Shared skeleton of Observations 2 and 3.

    Subclasses provide the boxes/planes the rules consult; this class owns
    the catalog-value selection and the rule ordering.
    """

    def __init__(self, catalog: UCatalog):
        self.catalog = catalog

    # -- hooks supplied by subclasses ----------------------------------
    def _prune_containment_box(self, j: int) -> Rect:
        """Box for Rule 1 (query must contain it, else prune)."""
        raise NotImplementedError

    def _prune_intersection_box(self, j: int) -> Rect:
        """Box for Rule 2 (query must intersect it, else prune)."""
        raise NotImplementedError

    def _outer_planes(self, j: int, axis: int) -> tuple[float, float]:
        """(lower, upper) planes for Rules 3 and 4."""
        raise NotImplementedError

    def _inner_planes(self, j: int, axis: int) -> tuple[float, float]:
        """(lower, upper) planes for Rule 5."""
        raise NotImplementedError

    # -- the public verdict --------------------------------------------
    def verdict(self, mbr: Rect, query: Rect, pq: float) -> Verdict:
        """Apply the applicable rules in the paper's order."""
        if not 0.0 < pq <= 1.0:
            raise ValueError(f"query threshold must be in (0, 1], got {pq}")
        # Cheap universal screen: no overlap with the support, no result.
        if not query.intersects(mbr):
            return Verdict.PRUNED
        if pq > 0.5:
            if self._rule1_prunes(query, pq):
                return Verdict.PRUNED
            if self._rule4_validates(mbr, query, pq):
                return Verdict.VALIDATED
        else:
            if self._rule2_prunes(query, pq):
                return Verdict.PRUNED
            if self._rule5_validates(mbr, query, pq):
                return Verdict.VALIDATED
        if self._rule3_validates(mbr, query, pq):
            return Verdict.VALIDATED
        return Verdict.CANDIDATE

    # -- rules ----------------------------------------------------------
    def _rule1_prunes(self, query: Rect, pq: float) -> bool:
        """Rule 1: for pq > 1 - p_m, prune unless rq contains the box at
        the smallest catalog value >= 1 - pq."""
        if pq <= 1.0 - self.catalog.p_max:
            return False
        j = self.catalog.index_of_smallest_at_least(1.0 - pq)
        if j is None:
            return False
        return not query.contains(self._prune_containment_box(j))

    def _rule2_prunes(self, query: Rect, pq: float) -> bool:
        """Rule 2: for pq <= 1 - p_m, prune unless rq intersects the box at
        the largest catalog value <= pq."""
        if pq > 1.0 - self.catalog.p_max:
            return False
        j = self.catalog.index_of_largest_at_most(pq)
        if j is None:
            return False
        return not query.intersects(self._prune_intersection_box(j))

    def _rule3_validates(self, mbr: Rect, query: Rect, pq: float) -> bool:
        """Rule 3: validate if rq covers the MBR slab between the outer
        planes at the largest catalog value <= (1 - pq) / 2 (mass 1 - 2p_j)."""
        j = self.catalog.index_of_largest_at_most((1.0 - pq) / 2.0)
        if j is None:
            return False
        for axis in range(mbr.dim):
            lower, upper = self._outer_planes(j, axis)
            if covers_band(query, mbr, axis, lower, upper):
                return True
        return False

    def _rule4_validates(self, mbr: Rect, query: Rect, pq: float) -> bool:
        """Rule 4 (pq > 0.5): validate if rq covers the MBR part right of
        the lower plane (or left of the upper plane) at the largest
        catalog value <= 1 - pq (mass 1 - p_j)."""
        j = self.catalog.index_of_largest_at_most(1.0 - pq)
        if j is None:
            return False
        for axis in range(mbr.dim):
            lower, upper = self._outer_planes(j, axis)
            if covers_band(query, mbr, axis, lower, math.inf):
                return True
            if covers_band(query, mbr, axis, -math.inf, upper):
                return True
        return False

    def _rule5_validates(self, mbr: Rect, query: Rect, pq: float) -> bool:
        """Rule 5 (pq <= 0.5): validate if rq covers the MBR part left of
        the lower plane (or right of the upper plane) at the smallest
        catalog value >= pq (mass p_j)."""
        j = self.catalog.index_of_smallest_at_least(pq)
        if j is None:
            return False
        for axis in range(mbr.dim):
            lower, upper = self._inner_planes(j, axis)
            if covers_band(query, mbr, axis, -math.inf, lower):
                return True
            if covers_band(query, mbr, axis, upper, math.inf):
                return True
        return False


class PCRRules(_RuleEngine):
    """Observation 2: the five rules over exact pre-computed PCRs."""

    def __init__(self, pcrs: PCRSet):
        super().__init__(pcrs.catalog)
        self.pcrs = pcrs

    def _prune_containment_box(self, j: int) -> Rect:
        return self.pcrs.box(j)

    def _prune_intersection_box(self, j: int) -> Rect:
        return self.pcrs.box(j)

    def _outer_planes(self, j: int, axis: int) -> tuple[float, float]:
        return self.pcrs.lower(j, axis), self.pcrs.upper(j, axis)

    def _inner_planes(self, j: int, axis: int) -> tuple[float, float]:
        return self.pcrs.lower(j, axis), self.pcrs.upper(j, axis)

    def apply(self, query: Rect, pq: float) -> Verdict:
        """Verdict for this object's query/threshold pair."""
        return self.verdict(self.pcrs.mbr, query, pq)


class CFBRules(_RuleEngine):
    """Observation 3: the five rules with CFB substitutions.

    Rule 1 uses the *inner* box (if the inner box escapes the query, so
    does the PCR); Rule 2 the *outer* box (if the outer box misses the
    query, so does the PCR); Rules 3-4 outer planes; Rule 5 inner planes.
    """

    def __init__(self, catalog: UCatalog, outer: LinearBoxFunction, inner: LinearBoxFunction):
        super().__init__(catalog)
        self.outer = outer
        self.inner = inner

    def _prune_containment_box(self, j: int) -> Rect:
        return self.inner.box(self.catalog[j])

    def _prune_intersection_box(self, j: int) -> Rect:
        return self.outer.box(self.catalog[j])

    def _outer_planes(self, j: int, axis: int) -> tuple[float, float]:
        p = self.catalog[j]
        return self.outer.lower(p, axis), self.outer.upper(p, axis)

    def _inner_planes(self, j: int, axis: int) -> tuple[float, float]:
        p = self.catalog[j]
        lower = self.inner.lower(p, axis)
        upper = self.inner.upper(p, axis)
        if lower > upper:
            # Crossed inner faces carry no safe mass guarantee on this
            # axis; return planes that make both Rule-5 bands empty.
            return -math.inf, math.inf
        return lower, upper

    def apply(self, mbr: Rect, query: Rect, pq: float) -> Verdict:
        """Verdict for an object summarised by (mbr, cfb_out, cfb_in)."""
        return self.verdict(mbr, query, pq)


def subtree_may_qualify(
    catalog: UCatalog,
    entry_box_at,
    query: Rect,
    pq: float,
) -> bool:
    """Observation 4: can an intermediate entry's subtree contain results?

    ``entry_box_at(j)`` must return the entry's bounding box at catalog
    index ``j`` (``e.MBR(p_j)`` for the U-tree, the stored per-level union
    for U-PCR).  The subtree is visited only if the query intersects the
    box at the largest catalog value ``p_j <= p_q`` (capped at ``p_m``
    when ``p_q`` exceeds every catalog value, per the paper's argument for
    ``p_q > 1 - p_m``).
    """
    if not 0.0 < pq <= 1.0:
        raise ValueError(f"query threshold must be in (0, 1], got {pq}")
    j = catalog.index_of_largest_at_most(pq)
    if j is None:
        j = 0
    return query.intersects(entry_box_at(j))
