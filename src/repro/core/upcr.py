"""U-PCR: the paper's comparison structure (Section 6).

U-PCR is "the U-tree's variation that stores the PCRs in (leaf and
intermediate) entries, as opposed to CFBs".  Concretely:

* a leaf entry stores all ``m`` PCR rectangles of its object (``2dm``
  floats) plus the object MBR and disk address — larger entries, smaller
  fanout (Table 1);
* an intermediate entry stores, for each catalog value, the exact MBR of
  its children's boxes at that value (no chord approximation), so its
  subtree pruning boxes are tighter than the U-tree's but cost ``2dm``
  floats;
* leaf-level filtering uses Observation 2 directly on exact PCRs, which
  is slightly stronger than the U-tree's CFB-based Observation 3.

The trade — fewer P_app computations but many more node accesses — is
exactly what Figs. 9-10 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.catalog import UCatalog
from repro.core.filterkernel import (
    PCRFilterKernel,
    classify_records,
    resolve_filter_kernel,
)
from repro.core.pcr import PCRSet, compute_pcrs
from repro.core.pruning import PCRRules, Verdict, subtree_may_qualify
from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.utree import UpdateCost
from repro.exec.access import FilterResult
from repro.exec.executor import execute_query
from repro.geometry.rect import Rect
from repro.index.engine import RStarEngine
from repro.index.node import Entry
from repro.storage.bufferpool import BufferPool
from repro.storage.layout import upcr_layout
from repro.storage.pager import DataFile, DiskAddress, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = ["UPCRTree", "UPCRLeafRecord"]


@dataclass
class UPCRLeafRecord:
    """Payload of a U-PCR leaf entry.

    ``row`` is the record's handle into the owning tree's columnar
    filter-kernel sidecar (-1 when the kernel is off).
    """

    oid: int
    pcrs: PCRSet
    address: DiskAddress
    rules: PCRRules
    row: int = -1


class UPCRTree:
    """The PCR-storing comparison index."""

    def __init__(
        self,
        dim: int,
        catalog: UCatalog | None = None,
        *,
        page_size: int = 4096,
        io: IOCounter | None = None,
        pool: BufferPool | None = None,
        estimator: AppearanceEstimator | None = None,
        split_mode: str = "median-layer",
        filter_kernel: str | bool | None = None,
    ):
        self.catalog = catalog if catalog is not None else UCatalog.paper_upcr_default(dim)
        self.dim = dim
        self.io = io if io is not None else IOCounter()
        self.pool = pool
        self.estimator = estimator if estimator is not None else AppearanceEstimator()
        layout = upcr_layout(dim, self.catalog.size, page_size)
        self.engine = RStarEngine(
            dim,
            self.catalog.size,
            layout,
            io=self.io,
            pool=pool,
            chord_values=None,  # exact per-layer unions
            split_mode=split_mode,
        )
        self.data_file = DataFile(self.io, page_size, pool=pool)
        self._profiles: dict[int, object] = {}
        self.kernel = (
            PCRFilterKernel(self.catalog, dim)
            if resolve_filter_kernel(filter_kernel)
            else None
        )
        # Runtime toggle (see UTree.use_kernel): inserts always feed the
        # sidecar; queries consult it only while use_kernel holds.
        self.use_kernel = True

    @classmethod
    def bulk_load(
        cls,
        objects,
        dim: int | None = None,
        catalog: UCatalog | None = None,
        fill: float = 1.0,
        **kwargs,
    ) -> "UPCRTree":
        """Build a U-PCR tree by STR packing (see :meth:`UTree.bulk_load`)."""
        from repro.index.bulkload import bulk_load as engine_bulk_load

        objects = list(objects)
        if not objects and dim is None:
            raise ValueError("cannot infer dimensionality from an empty object list")
        tree = cls(dim if dim is not None else objects[0].dim, catalog, **kwargs)
        items = []
        for obj in objects:
            if obj.dim != tree.dim:
                raise ValueError(
                    f"object dimensionality {obj.dim} != tree dimensionality {tree.dim}"
                )
            pcrs = compute_pcrs(obj, tree.catalog)
            address = tree.data_file.append(obj, obj.detail_size_bytes())
            record = UPCRLeafRecord(
                oid=obj.oid, pcrs=pcrs, address=address, rules=PCRRules(pcrs)
            )
            if tree.kernel is not None:
                record.row = tree.kernel.add(pcrs)
            profile = pcrs.profile().copy()
            items.append((profile, record))
            tree._profiles[obj.oid] = profile
        engine_bulk_load(tree.engine, items, fill=fill)
        return tree

    @property
    def active_kernel(self):
        """The filter kernel queries should use right now (None = scalar)."""
        return self.kernel if self.use_kernel else None

    def __len__(self) -> int:
        return len(self.engine)

    @property
    def size_bytes(self) -> int:
        """Index size in bytes (node pages only, as in Table 1)."""
        return self.engine.size_bytes

    @property
    def height(self) -> int:
        return self.engine.height

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, obj: UncertainObject) -> UpdateCost:
        """Insert an object; the CPU component is PCR derivation only."""
        if obj.dim != self.dim:
            raise ValueError(f"object dimensionality {obj.dim} != tree dimensionality {self.dim}")
        snapshot = self.io.snapshot()
        start = time.perf_counter()
        pcrs = compute_pcrs(obj, self.catalog)
        profile = pcrs.profile().copy()
        cpu = time.perf_counter() - start

        address = self.data_file.append(obj, obj.detail_size_bytes())
        record = UPCRLeafRecord(
            oid=obj.oid, pcrs=pcrs, address=address, rules=PCRRules(pcrs)
        )
        if self.kernel is not None:
            record.row = self.kernel.add(pcrs)
        self.engine.insert(profile, record)
        self._profiles[obj.oid] = profile
        reads, writes = self.io.delta(snapshot)
        return UpdateCost(io_reads=reads, io_writes=writes, cpu_seconds=cpu)

    def delete(self, oid: int) -> UpdateCost | None:
        """Delete an object by id; returns its cost, or None if absent."""
        profile = self._profiles.get(oid)
        if profile is None:
            return None
        snapshot = self.io.snapshot()
        matched: list[UPCRLeafRecord] = []

        def match(rec: UPCRLeafRecord) -> bool:
            if rec.oid == oid:
                matched.append(rec)
                return True
            return False

        removed = self.engine.delete(match, profile)
        if not removed:
            return None
        if self.kernel is not None and matched:
            self.kernel.release(matched[0].row)
        if matched:
            # Feed the data file's free list (a no-op unless reclaim is on).
            self.data_file.release(matched[0].address)
        del self._profiles[oid]
        reads, writes = self.io.delta(snapshot)
        return UpdateCost(io_reads=reads, io_writes=writes, cpu_seconds=0.0)

    def __contains__(self, oid: int) -> bool:
        return oid in self._profiles

    # ------------------------------------------------------------------
    # queries (the AccessMethod protocol)
    # ------------------------------------------------------------------
    def filter_candidates(self, query: ProbRangeQuery) -> FilterResult:
        """Filter phase: subtree pruning plus Observation-2 leaf checks.

        With the kernel on, visited leaf records are classified by one
        stacked Rules-1-5 call over the exact-PCR sidecar; verdicts,
        ordering and node accesses match the scalar path bit for bit.
        """
        rq = query.rect
        pq = query.threshold
        result = FilterResult()

        def descend(entry: Entry) -> bool:
            return subtree_may_qualify(
                self.catalog,
                lambda j: Rect.from_arrays(entry.profile[j, 0], entry.profile[j, 1]),
                rq,
                pq,
            )

        kernel = self.active_kernel
        if kernel is not None:
            records: list[UPCRLeafRecord] = []
            result.node_accesses = self.engine.traverse(
                descend, lambda entry: records.append(entry.data)
            )
            classify_records(kernel, records, rq, pq, result)
            return result

        def on_leaf(entry: Entry) -> None:
            record: UPCRLeafRecord = entry.data
            verdict = record.rules.apply(rq, pq)
            if verdict is Verdict.VALIDATED:
                result.validated.append(record.oid)
            elif verdict is Verdict.CANDIDATE:
                result.candidates.append((record.oid, record.address))
            else:
                result.pruned += 1

        result.node_accesses = self.engine.traverse(descend, on_leaf)
        return result

    def query(self, query: ProbRangeQuery) -> QueryAnswer:
        """Answer a prob-range query through the shared executor."""
        return execute_query(self, query)

    def check_invariants(self) -> None:
        """Validate the structural invariants of the underlying engine."""
        self.engine.check_invariants()
