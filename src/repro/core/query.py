"""Probabilistic range queries and the shared refinement step.

A prob-range query (Section 3) is a hyper-rectangle ``r_q`` plus a
probability threshold ``p_q``; its answer is every object with
``P_app(o, q) >= p_q``.  All three access methods (U-tree, U-PCR,
sequential scan) share the same two-phase shape:

1. **filter** — prune/validate objects from pre-computed summaries;
2. **refinement** — for the surviving candidates, group their disk
   addresses by page (one I/O per data page, Section 5.2) and compute the
   appearance probability by Monte-Carlo integration.

The refinement phase is structure-independent and lives here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.stats import QueryStats
from repro.geometry.rect import Rect
from repro.storage.pager import DataFile, DiskAddress
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject

__all__ = ["ProbRangeQuery", "QueryAnswer", "refine_candidates"]


@dataclass(frozen=True)
class ProbRangeQuery:
    """A probabilistic range query ``q = (r_q, p_q)``."""

    rect: Rect
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold}")

    @property
    def dim(self) -> int:
        return self.rect.dim


@dataclass
class QueryAnswer:
    """Result of a prob-range query: matching object ids plus cost stats."""

    object_ids: list[int] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    _id_set: set[int] | None = field(default=None, repr=False, compare=False)

    def __contains__(self, oid: int) -> bool:
        # The id set is cached between checks and rebuilt only when
        # object_ids has grown since (answers are append-only while the
        # executor builds them).
        if self._id_set is None or len(self._id_set) != len(self.object_ids):
            self._id_set = set(self.object_ids)
        return oid in self._id_set

    def sorted_ids(self) -> list[int]:
        return sorted(self.object_ids)


def refine_candidates(
    candidates: Sequence[tuple[int, DiskAddress]],
    query: ProbRangeQuery,
    data_file: DataFile,
    estimator: AppearanceEstimator,
    stats: QueryStats,
    results: list[int],
) -> None:
    """The paper's refinement step, in its simplest standalone form.

    Candidates are grouped by data page; each page is fetched once and the
    appearance probability of each candidate on it is computed.  Objects
    reaching the threshold are appended to ``results``; ``stats`` receives
    the data-page and probability-computation counts.

    The execution layer no longer calls this — it refines through
    :func:`repro.exec.refine.refine_with_engine`, which adds sample
    reuse, batching and memoisation while producing bit-identical
    answers.  This function is kept as the independently-testable
    reference implementation of the paper's Section 5.2 loop; behaviour
    changes to the engine path must not diverge from it.
    """
    by_page: dict[int, list[tuple[int, DiskAddress]]] = {}
    for oid, address in candidates:
        by_page.setdefault(address.page_id, []).append((oid, address))

    for page_id, group in sorted(by_page.items()):
        payloads = data_file.read_page(page_id)
        stats.data_page_reads += 1
        for oid, address in group:
            obj = payloads[address.slot]
            if not isinstance(obj, UncertainObject):  # pragma: no cover - safety
                raise TypeError(f"data page {page_id} slot {address.slot} is not an object")
            p_app = obj.appearance_probability(query.rect, estimator)
            stats.prob_computations += 1
            if p_app >= query.threshold:
                results.append(oid)


def workload_answers(
    queries: Iterable[ProbRangeQuery],
    run_one,
) -> list[QueryAnswer]:
    """Run ``run_one(query)`` over a workload, collecting answers."""
    return [run_one(q) for q in queries]
