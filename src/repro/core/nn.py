"""Probabilistic nearest-neighbour search on U-trees.

The paper's Section 7 names "algorithms that deploy U-trees to solve
other types of queries (e.g., those defined in [4])" as future work; the
canonical such query (Cheng, Kalashnikov, Prabhakar, SIGMOD'03) is the
**probabilistic nearest neighbour**: given a query point ``q``, return
each object ``o`` together with its *qualification probability*

    P_nn(o) = P(dist(q, X_o) < min_{o' != o} dist(q, X_{o'}))

— the chance that ``o`` is the true nearest neighbour given every
object's location distribution.

The implementation has the classic two phases:

1. **filter** — a best-first branch-and-bound descent of the U-tree.
   Every entry's layer-0 box bounds the support of all objects beneath
   it, so ``mindist``/``maxdist`` against that box are conservative.
   Objects whose minimum possible distance exceeds the smallest maximum
   distance of any object (the *best worst-case*) can never be the NN
   and are pruned, subtrees likewise.
2. **refinement** — a joint Monte-Carlo estimate over the k surviving
   candidates: draw matched rounds of locations (one sample per object
   per round, streams seeded per object id) and count, per round, which
   candidate is closest.  Qualification probabilities are the per-object
   win frequencies; they sum to 1 over the candidate set by construction.

The same machinery answers **expected-distance ranking** (the other
common uncertain-NN semantics): ``expected_nearest_neighbors`` returns
the k objects with smallest ``E[dist(q, X_o)]``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.utree import UTree, UTreeLeafRecord
from repro.index.node import Node

__all__ = ["NNCandidate", "NNResult", "probabilistic_nearest_neighbors", "expected_nearest_neighbors"]


@dataclass
class NNCandidate:
    """One surviving candidate with its qualification probability."""

    oid: int
    probability: float
    expected_distance: float


@dataclass
class NNResult:
    """Answer of a probabilistic NN query."""

    candidates: list[NNCandidate] = field(default_factory=list)
    node_accesses: int = 0
    data_page_reads: int = 0
    objects_examined: int = 0
    mc_rounds: int = 0
    wall_seconds: float = 0.0
    # Sharded trees only: shards never walked because their bounds'
    # mindist already exceeded the running best worst-case distance.
    shards_skipped: int = 0

    def qualifying(self, threshold: float) -> list[NNCandidate]:
        """Candidates with qualification probability at least ``threshold``."""
        return [c for c in self.candidates if c.probability >= threshold]

    def best(self) -> NNCandidate | None:
        """The most likely nearest neighbour, or None on an empty tree."""
        return self.candidates[0] if self.candidates else None


def _mindist(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Smallest distance from ``point`` to an axis-aligned box."""
    delta = np.maximum(np.maximum(lo - point, point - hi), 0.0)
    return float(np.linalg.norm(delta))


def _maxdist(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Largest distance from ``point`` to any point of the box."""
    delta = np.maximum(np.abs(point - lo), np.abs(hi - point))
    return float(np.linalg.norm(delta))


def _walk_candidates(
    tree: UTree, point: np.ndarray, result: NNResult
) -> tuple[list[tuple[float, float, UTreeLeafRecord]], float]:
    """Best-first descent: raw ``(mindist, maxdist, record)`` survivors.

    Returns the candidates gathered under the tree's *running* best
    worst-case plus the final tight bound.  Callers apply the final
    prune themselves — the sharded path first tightens the bound across
    every shard, so merged candidate sets equal the monolithic walk's.
    """
    best_worst = np.inf
    candidates: list[tuple[float, float, UTreeLeafRecord]] = []
    heap: list[tuple[float, int, Node]] = [(0.0, 0, tree.engine.root)]
    counter = 1
    kernel = getattr(tree, "active_kernel", None)

    while heap:
        mindist, __, node = heapq.heappop(heap)
        if mindist > best_worst:
            # Every remaining heap entry is at least this far: done.
            break
        tree.engine.store.touch_read(node.page_id)
        result.node_accesses += 1
        if node.is_leaf:
            if kernel is not None and node.entries:
                # Batched leaf distances from the columnar MBR sidecar.
                # The scalar loop tightens best_worst entry by entry and
                # admits entry i under the bound as of entry i; the
                # running minimum reproduces that sequence exactly.
                records = [entry.data for entry in node.entries]
                rows = np.fromiter(
                    (record.row for record in records),
                    dtype=np.intp,
                    count=len(records),
                )
                d_min, d_max = kernel.point_distances(point, rows)
                result.objects_examined += len(records)
                running = np.minimum.accumulate(np.minimum(d_max, best_worst))
                best_worst = float(running[-1])
                for i, record in enumerate(records):
                    if d_min[i] <= running[i]:
                        candidates.append(
                            (float(d_min[i]), float(d_max[i]), record)
                        )
                continue
            for entry in node.entries:
                record: UTreeLeafRecord = entry.data
                lo, hi = record.mbr.lo, record.mbr.hi
                d_min = _mindist(point, lo, hi)
                d_max = _maxdist(point, lo, hi)
                result.objects_examined += 1
                best_worst = min(best_worst, d_max)
                if d_min <= best_worst:
                    candidates.append((d_min, d_max, record))
        else:
            for entry in node.entries:
                lo, hi = entry.profile[0, 0], entry.profile[0, 1]
                d_min = _mindist(point, lo, hi)
                # A subtree's maxdist also caps the global best worst-case:
                # it contains at least one whole object.
                best_worst = min(best_worst, _maxdist(point, lo, hi))
                if d_min <= best_worst:
                    heapq.heappush(heap, (d_min, counter, entry.child))
                    counter += 1

    return candidates, best_worst


def _collect_candidates(tree, point: np.ndarray, result: NNResult) -> list[UTreeLeafRecord]:
    """The NN candidate set: every object that could beat the best worst-case.

    Accepts a single U-tree or a sharded set of them
    (:class:`~repro.exec.shard.ShardedAccessMethod` with U-tree shards).
    Sharded collection walks every non-empty shard, tightens the best
    worst-case across all of them, then applies one global final prune —
    by construction the surviving set is exactly the monolithic walk's
    ``{o : mindist(q, o) <= global best_worst}``, so the joint
    Monte-Carlo refinement (seeded per object id) is bit-identical no
    matter how the objects were partitioned.
    """
    shards = getattr(tree, "shards", None)
    if shards is None:
        candidates, best_worst = _walk_candidates(tree, point, result)
    else:
        # Latency-bounded probing: visit shards nearest-first and skip a
        # shard once its bounds' mindist exceeds the running best
        # worst-case — every member then has
        # ``d_min >= shard mindist > best_worst``, so it can neither
        # survive the final prune nor tighten the bound (its maxdist is
        # at least its mindist).  The surviving set — and therefore the
        # joint refinement — is identical to the walk-everything order.
        router = getattr(tree, "router", None)
        bound = router is None or (router.prune and router.probe_bound)
        shard_bounds = getattr(tree, "shard_bounds", [None] * len(shards))
        order = sorted(
            (i for i, shard in enumerate(shards) if len(shard) > 0),
            key=lambda i: (
                _mindist(point, shard_bounds[i].lo, shard_bounds[i].hi)
                if shard_bounds[i] is not None
                else 0.0,
                i,
            ),
        )
        candidates = []
        best_worst = np.inf
        for i in order:
            box = shard_bounds[i]
            if (
                bound
                and box is not None
                and _mindist(point, box.lo, box.hi) > best_worst
            ):
                result.shards_skipped += 1
                continue
            shard_candidates, shard_best = _walk_candidates(
                shards[i], point, result
            )
            candidates.extend(shard_candidates)
            best_worst = min(best_worst, shard_best)
    # Final prune with the tight best_worst found.
    return [rec for d_min, __, rec in candidates if d_min <= best_worst]


def probabilistic_nearest_neighbors(
    tree,
    point,
    rounds: int = 2000,
    seed: int = 0,
) -> NNResult:
    """Qualification probability of every NN candidate of ``point``.

    Args:
        tree: a built U-tree, or a sharded set of U-trees
            (:class:`~repro.exec.shard.ShardedAccessMethod` built with
            ``method="utree"``) — answers are bit-identical either way.
        point: the query location (length-d).
        rounds: Monte-Carlo rounds for the joint estimate; each round
            draws one location per candidate.
        seed: RNG seed; per-object streams derive from (seed, oid).

    Returns:
        An :class:`NNResult` with candidates sorted by descending
        qualification probability.  Probabilities over the candidate set
        sum to 1 (up to rounding) when the tree is non-empty.
    """
    q = np.asarray(point, dtype=np.float64)
    if q.shape != (tree.dim,):
        raise ValueError(f"query point must have dimension {tree.dim}")
    if rounds < 1:
        raise ValueError("rounds must be positive")
    start = time.perf_counter()
    result = NNResult()
    if len(tree) == 0:
        result.wall_seconds = time.perf_counter() - start
        return result

    records = _collect_candidates(tree, q, result)

    # Refinement: fetch the candidate objects (grouped by data page).
    by_page: dict[int, list[UTreeLeafRecord]] = {}
    for record in records:
        by_page.setdefault(record.address.page_id, []).append(record)
    objects = {}
    for page_id, group in sorted(by_page.items()):
        payloads = tree.data_file.read_page(page_id)
        result.data_page_reads += 1
        for record in group:
            objects[record.oid] = payloads[record.address.slot]

    # Joint Monte-Carlo: distance matrix (rounds, k) with matched rounds.
    oids = sorted(objects)
    distances = np.empty((rounds, len(oids)))
    for col, oid in enumerate(oids):
        obj = objects[oid]
        rng = np.random.default_rng((seed, oid))
        samples = obj.region.sample(rounds, rng)
        weights = obj.pdf.density(samples)
        # Importance correction: samples are uniform over the region; for
        # non-uniform pdfs resample rounds proportionally to the weights.
        if np.ptp(weights) > 1e-12 * max(1.0, float(weights.max())):
            total = weights.sum()
            if total > 0:
                idx = rng.choice(rounds, size=rounds, p=weights / total)
                samples = samples[idx]
        distances[:, col] = np.linalg.norm(samples - q, axis=1)

    winners = np.argmin(distances, axis=1)
    counts = np.bincount(winners, minlength=len(oids))
    expected = distances.mean(axis=0)
    result.mc_rounds = rounds
    result.candidates = sorted(
        (
            NNCandidate(oid, counts[col] / rounds, float(expected[col]))
            for col, oid in enumerate(oids)
        ),
        key=lambda c: (-c.probability, c.expected_distance),
    )
    result.wall_seconds = time.perf_counter() - start
    return result


def expected_nearest_neighbors(
    tree,
    point,
    k: int = 1,
    rounds: int = 2000,
    seed: int = 0,
) -> NNResult:
    """The k candidates with smallest expected distance to ``point``.

    Shares the filter and sampling machinery of
    :func:`probabilistic_nearest_neighbors`; only the ranking differs.
    """
    if k < 1:
        raise ValueError("k must be positive")
    result = probabilistic_nearest_neighbors(tree, point, rounds=rounds, seed=seed)
    result.candidates = sorted(result.candidates, key=lambda c: c.expected_distance)[:k]
    return result
