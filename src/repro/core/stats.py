"""Cost accounting for queries and updates.

The paper reports, per workload: average node accesses (I/O), average
number of appearance-probability computations plus the percentage of
qualifying objects validated without computation (CPU), and total elapsed
time.  These dataclasses collect exactly those series so the experiment
harness can print paper-style rows.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["QueryStats", "ShardStats", "WorkloadStats", "format_aligned"]


def format_aligned(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """One fixed-width text table (shared by stats summaries and CLIs)."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class QueryStats:
    """Per-query cost breakdown."""

    node_accesses: int = 0
    data_page_reads: int = 0
    prob_computations: int = 0
    validated_directly: int = 0
    pruned: int = 0
    result_count: int = 0
    wall_seconds: float = 0.0
    # Filled by the execution layer: physical (disk) reads vs buffer-pool
    # hits during this query.  Without a pool, physical == logical.
    physical_reads: int = 0
    cache_hits: int = 0
    # ARC-policy pools only: misses whose identity was still remembered by
    # a ghost list (B1/B2) — the "would have hit under a different
    # recency/frequency split" signal driving target adaptation.
    pool_ghost_hits: int = 0
    # Appearance probabilities served from the batch memo instead of being
    # recomputed (only the batched executor produces nonzero values).
    memoized_probs: int = 0
    # Sample-cache accounting from the refinement engine: a hit reuses an
    # object's cached Monte-Carlo cloud, a miss draws (and density-weights)
    # a fresh one.  Short-circuited pairs touch the cache not at all.
    sample_cache_hits: int = 0
    sample_cache_misses: int = 0
    # Wall-clock phase split filled by the execution layer: filter walk,
    # data-page fetches, and Monte-Carlo refinement.  ``wall_seconds``
    # remains the end-to-end figure (>= the sum of the phases).  For a
    # sharded method each phase field is accumulated once per *query* —
    # a probe contributes only its own elapsed time, never the whole
    # query window again.
    filter_seconds: float = 0.0
    fetch_seconds: float = 0.0
    refine_seconds: float = 0.0
    # Sharded execution: per-shard filter passes run for this query and
    # shards the router pruned without probing (0/0 for monolithic runs).
    shard_probes: int = 0
    shards_pruned: int = 0

    @property
    def total_io(self) -> int:
        """Filter-step node accesses plus refinement-step data pages.

        These are *logical* accesses — the paper's metric, independent of
        any buffer pool in front of the simulated disk.
        """
        return self.node_accesses + self.data_page_reads

    @property
    def validated_fraction(self) -> float:
        """Fraction of qualifying objects reported without computing P_app.

        This is the percentage annotated on the CPU panels of Figs. 9-10.
        """
        if self.result_count == 0:
            return 0.0
        return self.validated_directly / self.result_count

    def __repr__(self) -> str:
        return (
            f"QueryStats(io={self.total_io}, nodes={self.node_accesses}, "
            f"pages={self.data_page_reads}, P_app={self.prob_computations}, "
            f"validated={self.validated_directly}, results={self.result_count}, "
            f"wall={1000 * self.wall_seconds:.2f}ms)"
        )

    def summary(self) -> str:
        """One human line: the paper's three cost views plus the phases."""
        parts = [
            f"{self.result_count} results",
            f"{self.total_io} logical I/O ({self.node_accesses} nodes + "
            f"{self.data_page_reads} data pages)",
            f"{self.prob_computations} P_app ({self.validated_directly} validated free)",
            f"{1000 * self.filter_seconds:.2f}/{1000 * self.fetch_seconds:.2f}/"
            f"{1000 * self.refine_seconds:.2f} ms filter/fetch/refine",
        ]
        if self.shard_probes:
            parts.append(
                f"{self.shard_probes} shard probes ({self.shards_pruned} pruned)"
            )
        return " | ".join(parts)


@dataclass
class ShardStats:
    """One shard's share of a batch: filter load, I/O and refine feed.

    Produced by the sharded :class:`~repro.exec.batch.BatchExecutor`
    path, one instance per shard per batch.  ``physical_reads`` and
    ``cache_hits`` are exact per shard even under the parallel executor,
    because every shard owns a private ``IOCounter`` that only its own
    filter probes touch (refinement I/O lands on the shared data file
    and is accounted at batch level).
    """

    shard: int = 0
    probes: int = 0
    routed_away: int = 0
    node_accesses: int = 0
    validated: int = 0
    candidates: int = 0
    pruned: int = 0
    physical_reads: int = 0
    cache_hits: int = 0
    filter_seconds: float = 0.0

    def __repr__(self) -> str:
        return (
            f"ShardStats(#{self.shard}: {self.probes} probes, "
            f"{self.node_accesses} nodes, {self.candidates} candidates, "
            f"{self.validated} validated, {self.pruned} pruned, "
            f"{self.physical_reads} reads/{self.cache_hits} hits)"
        )

    def row(self) -> list:
        """This shard as one table row (see :meth:`BatchStats.summary`)."""
        return [
            self.shard, self.probes, self.routed_away, self.node_accesses,
            self.validated, self.candidates, self.pruned,
            self.physical_reads, self.cache_hits,
            f"{1000 * self.filter_seconds:.2f}",
        ]


@dataclass
class WorkloadStats:
    """Aggregate over a workload (the paper uses 100 queries/workload)."""

    queries: list[QueryStats] = field(default_factory=list)

    def add(self, stats: QueryStats) -> None:
        self.queries.append(stats)

    @property
    def count(self) -> int:
        return len(self.queries)

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def avg_node_accesses(self) -> float:
        return self._mean([q.node_accesses for q in self.queries])

    @property
    def avg_total_io(self) -> float:
        return self._mean([q.total_io for q in self.queries])

    @property
    def avg_physical_reads(self) -> float:
        return self._mean([q.physical_reads for q in self.queries])

    @property
    def total_physical_reads(self) -> int:
        return sum(q.physical_reads for q in self.queries)

    @property
    def total_cache_hits(self) -> int:
        return sum(q.cache_hits for q in self.queries)

    @property
    def total_pool_ghost_hits(self) -> int:
        return sum(q.pool_ghost_hits for q in self.queries)

    @property
    def avg_prob_computations(self) -> float:
        """Average P_app values actually computed per query.

        Under the batched executor, memoised lookups are *not* counted
        here (see :attr:`avg_memoized_probs`); per-query uncached
        execution computes every value, matching the paper's metric.
        """
        return self._mean([q.prob_computations for q in self.queries])

    @property
    def avg_memoized_probs(self) -> float:
        """Average P_app values served from the batch memo per query."""
        return self._mean([q.memoized_probs for q in self.queries])

    @property
    def total_sample_cache_hits(self) -> int:
        return sum(q.sample_cache_hits for q in self.queries)

    @property
    def total_sample_cache_misses(self) -> int:
        return sum(q.sample_cache_misses for q in self.queries)

    @property
    def sample_cache_hit_rate(self) -> float:
        """Fraction of Monte-Carlo estimates served from cached clouds."""
        total = self.total_sample_cache_hits + self.total_sample_cache_misses
        return self.total_sample_cache_hits / total if total else 0.0

    @property
    def avg_filter_seconds(self) -> float:
        return self._mean([q.filter_seconds for q in self.queries])

    @property
    def avg_fetch_seconds(self) -> float:
        return self._mean([q.fetch_seconds for q in self.queries])

    @property
    def avg_refine_seconds(self) -> float:
        return self._mean([q.refine_seconds for q in self.queries])

    @property
    def avg_shard_probes(self) -> float:
        """Average per-shard filter passes per query (0 unsharded)."""
        return self._mean([q.shard_probes for q in self.queries])

    @property
    def total_shards_pruned(self) -> int:
        """Shard probes the router avoided across the workload."""
        return sum(q.shards_pruned for q in self.queries)

    @property
    def avg_result_count(self) -> float:
        return self._mean([q.result_count for q in self.queries])

    @property
    def avg_wall_seconds(self) -> float:
        return self._mean([q.wall_seconds for q in self.queries])

    @property
    def validated_percentage(self) -> float:
        """Workload-level percentage of results validated without P_app."""
        results = sum(q.result_count for q in self.queries)
        if results == 0:
            return 0.0
        validated = sum(q.validated_directly for q in self.queries)
        return 100.0 * validated / results

    def summary(self) -> dict[str, float]:
        """All headline numbers in one dict (for tables and benchmarks)."""
        return {
            "queries": float(self.count),
            "avg_node_accesses": self.avg_node_accesses,
            "avg_total_io": self.avg_total_io,
            "avg_physical_reads": self.avg_physical_reads,
            "avg_prob_computations": self.avg_prob_computations,
            "avg_result_count": self.avg_result_count,
            "avg_wall_seconds": self.avg_wall_seconds,
            "validated_percentage": self.validated_percentage,
            "sample_cache_hit_rate": self.sample_cache_hit_rate,
            "avg_filter_seconds": self.avg_filter_seconds,
            "avg_fetch_seconds": self.avg_fetch_seconds,
            "avg_refine_seconds": self.avg_refine_seconds,
        }
