"""Vectorized filter-phase kernel over columnar pruning geometry.

The filter phase classifies every surviving leaf object with the paper's
Rules 1-5 (:mod:`repro.core.pruning`).  The scalar engines do that one
``Verdict`` at a time, constructing tiny :class:`~repro.geometry.rect.Rect`
objects and looping per axis — the last scalar stage of the pipeline now
that refinement is batched.  This module is the batched replacement:

* every object's pruning geometry — MBR, CFB face coefficients or raw PCR
  planes — lives in contiguous ``(n_objects, dim)`` float64 *columns* (a
  sidecar the owning structure fills at insert time and that
  :mod:`repro.storage.serialize` round-trips in bulk);
* one :meth:`classify` call evaluates Rules 1-5 for a whole candidate
  batch as stacked NumPy mask reductions.

The catalog indices the rules consult (``j`` per rule) depend only on the
query threshold, never on the object, so they are resolved once per batch
and the per-object work collapses into gathers and comparisons.

**Bit-identity.**  Every arithmetic step mirrors the scalar engines
exactly: CFB faces are ``intercept + slope * p`` (one multiply, one add,
in float64 — the same IEEE operations the scalar path performs), box
collapses use the same midpoint formula, crossed inner faces map to the
same ``(-inf, +inf)`` empty bands, and every comparison is an exact
boolean predicate.  ``tests/test_filter_kernel.py`` asserts verdict
equality with ``==`` (never ``approx``) against :class:`PCRRules` and
:class:`CFBRules` across every pdf family; structures therefore expose the
kernel behind a ``filter_kernel=`` knob whose ``"off"`` setting keeps the
paper-exact scalar path with identical answers *and* identical node-access
accounting (the kernel never changes traversal, only leaf classification).

Rows are allocated from a free list, so delete + re-insert reuses storage
without invalidating other records' row handles.
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.core.cfb import LinearBoxFunction
from repro.core.pcr import PCRSet
from repro.core.pruning import Verdict
from repro.geometry.rect import Rect
from repro.storage.layout import filter_kernel_row_bytes

__all__ = [
    "CANDIDATE",
    "PRUNED",
    "VALIDATED",
    "VERDICT_BY_CODE",
    "CFBFilterKernel",
    "PCRFilterKernel",
    "classify_records",
    "resolve_filter_kernel",
]

# Verdict codes returned by classify(); index into VERDICT_BY_CODE to
# recover the enum the scalar engines speak.
PRUNED = 0
VALIDATED = 1
CANDIDATE = 2
VERDICT_BY_CODE = (Verdict.PRUNED, Verdict.VALIDATED, Verdict.CANDIDATE)

FILTER_KERNEL_ENV = "REPRO_FILTER_KERNEL"

_MIN_CAPACITY = 64


def resolve_filter_kernel(setting: str | bool | None = None) -> bool:
    """Resolve a ``filter_kernel=`` knob value to on/off.

    ``None`` defers to the ``REPRO_FILTER_KERNEL`` environment variable
    (the CI matrix leg forces ``off`` there to pin the scalar path) and
    defaults to on — the kernel is verdict-identical, so there is no
    correctness reason to opt in.  The environment is read through
    :mod:`repro.env`, the package's single ``os.environ`` access point.
    """
    if setting is None:
        from repro.env import env_value

        setting = env_value(FILTER_KERNEL_ENV, "on")
    if isinstance(setting, bool):
        return setting
    text = str(setting).strip().lower()
    if text in ("on", "1", "true", "yes"):
        return True
    if text in ("off", "0", "false", "no"):
        return False
    raise ValueError(f"filter_kernel must be 'on' or 'off', got {setting!r}")


def classify_records(kernel, records, query: Rect, pq: float, result) -> None:
    """One kernel call for a filter batch, folded into a ``FilterResult``.

    ``records`` are leaf records in traversal order (each carrying
    ``oid``, ``address`` and its sidecar ``row``); verdicts append into
    ``result`` in that same order, exactly as the scalar per-record loop
    does.
    """
    if not records:
        return
    rows = np.fromiter(
        (record.row for record in records), dtype=np.intp, count=len(records)
    )
    codes = kernel.classify(query, pq, rows)
    pruned = 0
    for record, code in zip(records, codes):
        if code == CANDIDATE:
            result.candidates.append((record.oid, record.address))
        elif code == VALIDATED:
            result.validated.append(record.oid)
        else:
            pruned += 1
    result.pruned += pruned


def _axis_complements(
    qlo: np.ndarray, qhi: np.ndarray, mlo: np.ndarray, mhi: np.ndarray
) -> np.ndarray:
    """``(n, d)`` mask: all axes *other than* the column's are contained.

    Column ``axis`` answers covers_band's other-axes test — the query's
    projection contains the MBR's on every axis except ``axis``.  Shared
    by every band evaluation of one classify batch (Rules 3, 4 and 5
    consult the same query/MBR geometry up to three times).
    """
    contained = (qlo <= mlo) & (mhi <= qhi)  # per-axis projection containment
    n, d = contained.shape
    others = np.ones((n, d), dtype=bool)
    for axis in range(d):
        for i in range(d):
            if i != axis:
                others[:, axis] &= contained[:, i]
    return others


def _covers_band_any(
    qlo: np.ndarray,
    qhi: np.ndarray,
    mlo: np.ndarray,
    mhi: np.ndarray,
    band_lo: np.ndarray | None,
    band_hi: np.ndarray | None,
    others: np.ndarray,
) -> np.ndarray:
    """Row mask: does the query cover the MBR band on *some* axis?

    The batched :func:`repro.core.pruning.covers_band`, with the axis loop
    hoisted outside the object dimension.  ``band_lo`` / ``band_hi`` are
    ``(n, d)`` plane arrays, or ``None`` for an infinite band end (the
    clipped band end is then the MBR face itself, exactly as ``max``/
    ``min`` against an infinity resolves in the scalar code).  ``others``
    is the batch's precomputed :func:`_axis_complements` mask.
    """
    n, d = mlo.shape
    hit = np.zeros(n, dtype=bool)
    for axis in range(d):
        lo = mlo[:, axis] if band_lo is None else np.maximum(band_lo[:, axis], mlo[:, axis])
        hi = mhi[:, axis] if band_hi is None else np.minimum(band_hi[:, axis], mhi[:, axis])
        hit |= (lo <= hi) & others[:, axis] & (qlo[axis] <= lo) & (hi <= qhi[axis])
    return hit


class _ColumnarKernel:
    """Row bookkeeping plus the shared Rules 1-5 skeleton.

    Subclasses own the geometry columns and provide the four gather hooks
    — the batched mirror of :class:`repro.core.pruning._RuleEngine`.
    """

    def __init__(self, catalog: UCatalog, dim: int):
        if dim < 1:
            raise ValueError("dimensionality must be at least 1")
        self.catalog = catalog
        self.dim = int(dim)
        self._rows = 0  # high-water mark (allocated row slots)
        self._free: list[int] = []
        self._capacity = 0
        self.mbr_lo = np.empty((0, dim))
        self.mbr_hi = np.empty((0, dim))

    # -- row allocation -------------------------------------------------
    def __len__(self) -> int:
        return self._rows - len(self._free)

    @property
    def row_count(self) -> int:
        """Allocated row slots, including free-list holes."""
        return self._rows

    def _grown(self, arr: np.ndarray, capacity: int) -> np.ndarray:
        out = np.empty((capacity,) + arr.shape[1:])
        out[: arr.shape[0]] = arr
        return out

    def _resize(self, capacity: int) -> None:
        self.mbr_lo = self._grown(self.mbr_lo, capacity)
        self.mbr_hi = self._grown(self.mbr_hi, capacity)

    def _shared_columns(self) -> tuple[str, ...]:
        """Attribute names of the geometry columns worth sharing."""
        return ("mbr_lo", "mbr_hi")

    def rebind_columns(self, share) -> None:
        """Move every geometry column's buffer via ``share(array)``.

        The process executor passes
        :meth:`repro.storage.shm.SharedArena.share_array` so the columns
        land in shared anonymous mappings before the worker fork.  The
        rebound arrays are bit-identical; any later ``_resize`` simply
        reallocates back onto the private heap, which the executor
        detects as staleness and re-shares on the next fork.
        """
        for name in self._shared_columns():
            setattr(self, name, share(getattr(self, name)))

    def _take_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._rows == self._capacity:
            self._capacity = max(_MIN_CAPACITY, 2 * self._capacity)
            self._resize(self._capacity)
        row = self._rows
        self._rows += 1
        return row

    def _take_block(self, count: int) -> np.ndarray:
        """Allocate ``count`` fresh trailing rows (bulk-load fast path)."""
        needed = self._rows + count
        if needed > self._capacity:
            self._capacity = max(_MIN_CAPACITY, self._capacity, needed)
            self._resize(self._capacity)
        rows = np.arange(self._rows, needed, dtype=np.intp)
        self._rows = needed
        return rows

    def release(self, row: int) -> None:
        """Return a row to the free list (its data becomes garbage)."""
        if not 0 <= row < self._rows:
            raise IndexError(f"row {row} was never allocated")
        self._free.append(row)

    @property
    def size_bytes(self) -> int:
        """Sidecar footprint at the documented per-row layout."""
        return self._rows * self._row_bytes()

    def _row_bytes(self) -> int:
        raise NotImplementedError

    # -- gather hooks (the batched _RuleEngine surface) -----------------
    def _containment_box(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _intersection_box(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _outer_planes(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _inner_planes(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- the batched verdict --------------------------------------------
    def classify(self, query: Rect, pq: float, rows) -> np.ndarray:
        """Verdict codes for every row, in order.

        Applies the same rules in the same arrangement as
        :meth:`_RuleEngine.verdict`: the universal disjoint screen and the
        threshold-selected pruning rule decide ``PRUNED``; surviving rows
        that pass Rule 4/5 or Rule 3 become ``VALIDATED``; the rest stay
        ``CANDIDATE``.  Each code equals the scalar verdict for that
        object bit for bit — all rule predicates are exact comparisons
        over identical float64 values.
        """
        if not 0.0 < pq <= 1.0:
            raise ValueError(f"query threshold must be in (0, 1], got {pq}")
        idx = np.asarray(rows, dtype=np.intp)
        out = np.full(idx.shape[0], CANDIDATE, dtype=np.int8)
        if idx.size == 0:
            return out
        qlo, qhi = query.lo, query.hi
        mlo = self.mbr_lo[idx]
        mhi = self.mbr_hi[idx]
        catalog = self.catalog
        # Universal screen: no overlap with the support, no result.
        pruned = ~(np.all(qlo <= mhi, axis=1) & np.all(mlo <= qhi, axis=1))
        validated = np.zeros(idx.shape[0], dtype=bool)
        # Band-coverage geometry shared by Rules 3/4/5 for this batch.
        others = _axis_complements(qlo, qhi, mlo, mhi)
        if pq > 0.5:
            if pq > 1.0 - catalog.p_max:  # Rule 1
                j = catalog.index_of_smallest_at_least(1.0 - pq)
                if j is not None:
                    blo, bhi = self._containment_box(idx, j)
                    pruned |= ~(
                        np.all(qlo <= blo, axis=1) & np.all(bhi <= qhi, axis=1)
                    )
            j = catalog.index_of_largest_at_most(1.0 - pq)  # Rule 4
            if j is not None:
                lower, upper = self._outer_planes(idx, j)
                validated = _covers_band_any(qlo, qhi, mlo, mhi, lower, None, others)
                validated |= _covers_band_any(qlo, qhi, mlo, mhi, None, upper, others)
        else:
            if pq <= 1.0 - catalog.p_max:  # Rule 2
                j = catalog.index_of_largest_at_most(pq)
                if j is not None:
                    blo, bhi = self._intersection_box(idx, j)
                    pruned |= ~(
                        np.all(qlo <= bhi, axis=1) & np.all(blo <= qhi, axis=1)
                    )
            j = catalog.index_of_smallest_at_least(pq)  # Rule 5
            if j is not None:
                lower, upper = self._inner_planes(idx, j)
                validated = _covers_band_any(qlo, qhi, mlo, mhi, None, lower, others)
                validated |= _covers_band_any(qlo, qhi, mlo, mhi, upper, None, others)
        j = catalog.index_of_largest_at_most((1.0 - pq) / 2.0)  # Rule 3
        if j is not None:
            lower, upper = self._outer_planes(idx, j)
            validated |= _covers_band_any(qlo, qhi, mlo, mhi, lower, upper, others)
        out[pruned] = PRUNED
        out[validated & ~pruned] = VALIDATED
        return out

    # -- NN support ------------------------------------------------------
    def point_distances(self, point: np.ndarray, rows) -> tuple[np.ndarray, np.ndarray]:
        """``(mindist, maxdist)`` from ``point`` to every row's MBR.

        The batched mirror of the NN walk's ``_mindist``/``_maxdist``:
        identical elementwise operations, identical norm reduction (axis
        sums run in the same index order as the scalar d-vector norm).
        """
        idx = np.asarray(rows, dtype=np.intp)
        lo = self.mbr_lo[idx]
        hi = self.mbr_hi[idx]
        d_min = np.linalg.norm(
            np.maximum(np.maximum(lo - point, point - hi), 0.0), axis=1
        )
        d_max = np.linalg.norm(
            np.maximum(np.abs(point - lo), np.abs(hi - point)), axis=1
        )
        return d_min, d_max


class CFBFilterKernel(_ColumnarKernel):
    """Columnar Rules 1-5 over CFB summaries (Observation 3).

    Eight ``(n, d)`` face-coefficient columns — intercept and slope for
    each of the outer/inner lower/upper faces — plus the MBR pair.  Rule 1
    consults the *inner* box (crossing faces collapse to their midpoint,
    as :meth:`LinearBoxFunction.box` does), Rule 2 the *outer* box, Rules
    3-4 the raw outer planes and Rule 5 the inner planes with crossed
    faces mapped to the empty-band ``(-inf, +inf)`` sentinel — each the
    exact batched transliteration of :class:`repro.core.pruning.CFBRules`.
    """

    def __init__(self, catalog: UCatalog, dim: int):
        super().__init__(catalog, dim)
        for name in self._FACE_COLUMNS:
            setattr(self, name, np.empty((0, dim)))

    _FACE_COLUMNS = (
        "out_lo_icpt", "out_lo_slope", "out_hi_icpt", "out_hi_slope",
        "in_lo_icpt", "in_lo_slope", "in_hi_icpt", "in_hi_slope",
    )

    def _shared_columns(self) -> tuple[str, ...]:
        return super()._shared_columns() + self._FACE_COLUMNS

    def _row_bytes(self) -> int:
        return filter_kernel_row_bytes(self.dim)

    def _resize(self, capacity: int) -> None:
        super()._resize(capacity)
        for name in self._FACE_COLUMNS:
            setattr(self, name, self._grown(getattr(self, name), capacity))

    def add(self, mbr: Rect, outer: LinearBoxFunction, inner: LinearBoxFunction) -> int:
        """Register one object's summary; returns its row handle."""
        row = self._take_row()
        self.mbr_lo[row] = mbr.lo
        self.mbr_hi[row] = mbr.hi
        self.out_lo_icpt[row] = outer.intercept[0]
        self.out_hi_icpt[row] = outer.intercept[1]
        self.out_lo_slope[row] = outer.slope[0]
        self.out_hi_slope[row] = outer.slope[1]
        self.in_lo_icpt[row] = inner.intercept[0]
        self.in_hi_icpt[row] = inner.intercept[1]
        self.in_lo_slope[row] = inner.slope[0]
        self.in_hi_slope[row] = inner.slope[1]
        return row

    def extend(
        self,
        mbr_lo: np.ndarray,
        mbr_hi: np.ndarray,
        outer_intercept: np.ndarray,
        outer_slope: np.ndarray,
        inner_intercept: np.ndarray,
        inner_slope: np.ndarray,
    ) -> np.ndarray:
        """Bulk-append ``n`` objects from stacked arrays; returns their rows.

        The deserialisation fast path: :func:`repro.storage.serialize`
        already persists exactly these columns, so a loaded tree rebuilds
        its sidecar with six copies instead of ``n`` per-object calls.
        ``*_intercept`` / ``*_slope`` have shape ``(n, 2, d)`` (lo row 0,
        hi row 1), matching :class:`LinearBoxFunction` storage.
        """
        n = mbr_lo.shape[0]
        rows = self._take_block(n)
        self.mbr_lo[rows] = mbr_lo
        self.mbr_hi[rows] = mbr_hi
        self.out_lo_icpt[rows] = outer_intercept[:, 0]
        self.out_hi_icpt[rows] = outer_intercept[:, 1]
        self.out_lo_slope[rows] = outer_slope[:, 0]
        self.out_hi_slope[rows] = outer_slope[:, 1]
        self.in_lo_icpt[rows] = inner_intercept[:, 0]
        self.in_hi_icpt[rows] = inner_intercept[:, 1]
        self.in_lo_slope[rows] = inner_slope[:, 0]
        self.in_hi_slope[rows] = inner_slope[:, 1]
        return rows

    # -- gather hooks ----------------------------------------------------
    def _faces(
        self, rows: np.ndarray, which: str, p: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw (lo, hi) face planes of one CFB family at catalog value p."""
        lo = getattr(self, f"{which}_lo_icpt")[rows] + getattr(self, f"{which}_lo_slope")[rows] * p
        hi = getattr(self, f"{which}_hi_icpt")[rows] + getattr(self, f"{which}_hi_slope")[rows] * p
        return lo, hi

    def _collapsed_box(
        self, rows: np.ndarray, which: str, j: int
    ) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self._faces(rows, which, self.catalog[j])
        crossing = lo > hi
        if np.any(crossing):
            mid = (lo + hi) / 2.0
            lo = np.where(crossing, mid, lo)
            hi = np.where(crossing, mid, hi)
        return lo, hi

    def _containment_box(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        return self._collapsed_box(rows, "in", j)

    def _intersection_box(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        return self._collapsed_box(rows, "out", j)

    def _outer_planes(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        return self._faces(rows, "out", self.catalog[j])

    def _inner_planes(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        lower, upper = self._faces(rows, "in", self.catalog[j])
        crossing = lower > upper
        if np.any(crossing):
            # Crossed inner faces carry no safe mass guarantee on this
            # axis; the empty-band sentinel matches CFBRules._inner_planes.
            lower = np.where(crossing, -np.inf, lower)
            upper = np.where(crossing, np.inf, upper)
        return lower, upper


class PCRFilterKernel(_ColumnarKernel):
    """Columnar Rules 1-5 over exact PCRs (Observation 2).

    Stores every object's ``m`` PCR planes as ``(n, m, d)`` lower/upper
    columns; all four rule geometries are gathers at the batch-constant
    catalog index — the batched transliteration of
    :class:`repro.core.pruning.PCRRules`.
    """

    def __init__(self, catalog: UCatalog, dim: int):
        super().__init__(catalog, dim)
        self.pcr_lo = np.empty((0, catalog.size, dim))
        self.pcr_hi = np.empty((0, catalog.size, dim))

    def _shared_columns(self) -> tuple[str, ...]:
        return super()._shared_columns() + ("pcr_lo", "pcr_hi")

    def _row_bytes(self) -> int:
        return filter_kernel_row_bytes(self.dim, self.catalog.size)

    def _resize(self, capacity: int) -> None:
        super()._resize(capacity)
        self.pcr_lo = self._grown(self.pcr_lo, capacity)
        self.pcr_hi = self._grown(self.pcr_hi, capacity)

    def add(self, pcrs: PCRSet) -> int:
        """Register one object's PCR set; returns its row handle."""
        if pcrs.catalog != self.catalog:
            raise ValueError("PCR set computed against a different catalog")
        row = self._take_row()
        self.mbr_lo[row] = pcrs.mbr.lo
        self.mbr_hi[row] = pcrs.mbr.hi
        self.pcr_lo[row] = pcrs.boxes[:, 0, :]
        self.pcr_hi[row] = pcrs.boxes[:, 1, :]
        return row

    def _box(self, rows: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        return self.pcr_lo[rows, j, :], self.pcr_hi[rows, j, :]

    _containment_box = _box
    _intersection_box = _box
    _outer_planes = _box
    _inner_planes = _box
