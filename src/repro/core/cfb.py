"""Conservative functional boxes (CFBs), Sections 4.3-4.4 of the paper.

A CFB compresses an object's ``m`` PCRs into a *linear* box-valued function
of ``p``: the outer CFB satisfies ``cfb_out(p_j) ⊇ pcr(p_j)`` and the inner
CFB ``cfb_in(p_j) ⊆ pcr(p_j)`` at every catalog value.  Each requires only
``8d`` floats versus ``2dm`` for raw PCRs, which is what gives the U-tree
its fanout advantage (Table 1).

Fitting is a linear program per axis (the paper names Simplex, Section
4.4): minimise the summed margin ``Σ_j MARGIN(cfb_out(p_j))`` subject to
the containment constraints (inequalities 12-13), and maximise the inner
margin subject to the reversed constraints plus the non-crossing
constraint (inequality 14).  We solve these with the library's own
two-phase simplex (:mod:`repro.lp.simplex`).
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.core.pcr import PCRSet
from repro.geometry.rect import Rect
from repro.lp.simplex import LPStatus, solve_lp

__all__ = [
    "LinearBoxFunction",
    "area_proxy_weights",
    "fit_cfbs",
    "fit_inner_cfb",
    "fit_outer_cfb",
]

_SAFETY = 1e-9


class LinearBoxFunction:
    """A box-valued linear function ``p -> [lo(p), hi(p)]`` per axis.

    Stored as intercept/slope arrays of shape ``(2, d)``: row 0 holds the
    lower-face parameters, row 1 the upper faces, so
    ``lo_i(p) = intercept[0, i] + slope[0, i] * p`` and similarly for hi.
    (The paper writes ``cfb(p) = alpha - beta p``; we keep plain slopes and
    absorb the sign.)  Lower faces have non-negative slope and upper faces
    non-positive slope, so boxes shrink as ``p`` grows, matching PCRs.
    """

    __slots__ = ("intercept", "slope")

    def __init__(self, intercept: np.ndarray, slope: np.ndarray):
        a = np.asarray(intercept, dtype=np.float64)
        b = np.asarray(slope, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != 2 or a.shape != b.shape:
            raise ValueError(f"intercept/slope must both be (2, d), got {a.shape}, {b.shape}")
        self.intercept = a
        self.slope = b

    @property
    def dim(self) -> int:
        """Dimensionality of the boxes produced."""
        return int(self.intercept.shape[1])

    def faces(self, p: float) -> np.ndarray:
        """Raw ``(2, d)`` face coordinates at ``p`` (lo row may cross hi row)."""
        return self.intercept + self.slope * p

    def box(self, p: float) -> Rect:
        """The box at ``p``; crossing faces collapse to their midpoint."""
        f = self.faces(p)
        lo, hi = f[0], f[1]
        crossing = lo > hi
        if np.any(crossing):
            mid = (lo + hi) / 2.0
            lo = np.where(crossing, mid, lo)
            hi = np.where(crossing, mid, hi)
        # Internally derived and collapse-ordered: skip re-validation.
        return Rect.from_arrays(lo, hi)

    def lower(self, p: float, axis: int) -> float:
        """The lower-face plane ``cfb_axis-(p)``."""
        return float(self.intercept[0, axis] + self.slope[0, axis] * p)

    def upper(self, p: float, axis: int) -> float:
        """The upper-face plane ``cfb_axis+(p)``."""
        return float(self.intercept[1, axis] + self.slope[1, axis] * p)

    def profile(self, catalog: UCatalog) -> np.ndarray:
        """Boxes at every catalog value as an ``(m, 2, d)`` array (clamped)."""
        ps = catalog.values[:, None, None]
        out = self.intercept[None, :, :] + self.slope[None, :, :] * ps
        lo = out[:, 0, :]
        hi = out[:, 1, :]
        crossing = lo > hi
        if np.any(crossing):
            mid = (lo + hi) / 2.0
            out[:, 0, :] = np.where(crossing, mid, lo)
            out[:, 1, :] = np.where(crossing, mid, hi)
        return out

    def __repr__(self) -> str:
        return f"LinearBoxFunction(dim={self.dim})"


def fit_outer_cfb(
    pcrs: PCRSet, method: str = "closed-form", weights: np.ndarray | None = None
) -> LinearBoxFunction:
    """Fit ``cfb_out``: minimal summed margin subject to covering every PCR.

    The objective (Formula 8) separates per axis and per face, so each face
    is an independent 2-variable LP:

    * lower face — maximise ``Σ_j w_j (a + b p_j)`` s.t. ``a + b p_j <= pcr_j-``;
    * upper face — minimise ``Σ_j w_j (a + b p_j)`` s.t. ``a + b p_j >= pcr_j+``;

    with the shrink-direction sign constraint on ``b`` (boxes must not grow
    with ``p``, mirroring PCR nesting).  With ``weights=None`` all
    ``w_j = 1`` — the paper's margin objective (Formula 11).  The
    area-proxy objective of footnote 4 passes per-j weights (see
    :func:`area_proxy_weights`).

    ``method`` selects the solver: ``"closed-form"`` exploits that the
    reduced objective is concave piecewise-linear in the slope (optimum at
    a pairwise constraint intersection); ``"simplex"`` uses the library's
    two-phase simplex, kept as a cross-checking oracle.
    """
    catalog = pcrs.catalog
    ps = catalog.values
    w = _face_weights(weights, catalog.size)
    d = pcrs.dim
    intercept = np.empty((2, d))
    slope = np.empty((2, d))

    for axis in range(d):
        lo_targets = pcrs.boxes[:, 0, axis]
        hi_targets = pcrs.boxes[:, 1, axis]
        wa = w if w.ndim == 1 else w[:, axis]
        intercept[0, axis], slope[0, axis] = _fit_face(
            ps, wa, lo_targets, side="lower", method=method
        )
        intercept[1, axis], slope[1, axis] = _fit_face(
            ps, wa, hi_targets, side="upper", method=method
        )

    cfb = LinearBoxFunction(intercept, slope)
    _repair_outer(cfb, pcrs)
    return cfb


def fit_inner_cfb(pcrs: PCRSet, method: str = "closed-form") -> LinearBoxFunction:
    """Fit ``cfb_in``: maximal summed margin inside every PCR.

    The two faces of one axis are coupled by the non-crossing constraint
    (inequality 14), so each axis is in general a 4-variable LP: maximise
    ``Σ_j (hi(p_j) - lo(p_j))`` subject to ``lo(p_j) >= pcr_j-``,
    ``hi(p_j) <= pcr_j+`` and ``lo(p_j) <= hi(p_j)``.

    The ``closed-form`` method first solves the two faces independently
    (the coupling constraint is usually slack because PCR faces never
    cross) and falls back to the coupled simplex only when the decoupled
    optima cross at some catalog value.
    """
    catalog = pcrs.catalog
    ps = catalog.values
    ones = np.ones(catalog.size)
    d = pcrs.dim
    intercept = np.empty((2, d))
    slope = np.empty((2, d))

    for axis in range(d):
        lo_targets = pcrs.boxes[:, 0, axis]
        hi_targets = pcrs.boxes[:, 1, axis]
        solved = False
        if method == "closed-form":
            # Hug each PCR face from inside, independently.
            a_lo, b_lo = _fit_face(ps, ones, lo_targets, side="upper", method=method,
                                   slope_bounds=(0.0, np.inf))
            a_hi, b_hi = _fit_face(ps, ones, hi_targets, side="lower", method=method,
                                   slope_bounds=(-np.inf, 0.0))
            crossing = (a_lo + b_lo * ps) > (a_hi + b_hi * ps) + _SAFETY
            if not np.any(crossing):
                solved = True
            else:
                # The decoupled optima cross (typical when the catalog
                # includes 0.5, where the PCR degenerates): use the
                # anchored fit, which is feasible and crossing-free.
                a_lo, b_lo, a_hi, b_hi = _fit_inner_anchored(ps, lo_targets, hi_targets)
                solved = True
        if not solved:
            a_lo, b_lo, a_hi, b_hi = _fit_inner_coupled(
                ps, catalog.size, catalog.total, lo_targets, hi_targets
            )
        intercept[0, axis], slope[0, axis] = a_lo, b_lo
        intercept[1, axis], slope[1, axis] = a_hi, b_hi

    cfb = LinearBoxFunction(intercept, slope)
    _repair_inner(cfb, pcrs)
    return cfb


def fit_cfbs(
    pcrs: PCRSet, method: str = "closed-form"
) -> tuple[LinearBoxFunction, LinearBoxFunction]:
    """Fit both CFBs; returns ``(cfb_out, cfb_in)``."""
    return fit_outer_cfb(pcrs, method=method), fit_inner_cfb(pcrs, method=method)


def area_proxy_weights(pcrs: PCRSet) -> np.ndarray:
    """Per-(j, axis) weights approximating the area objective (footnote 4).

    Minimising ``Σ_j AREA(cfb(p_j))`` is non-linear, but weighting each
    axis extent by the product of the *PCR* extents of the other axes at
    ``p_j`` is its natural linearisation.  Returns an ``(m, d)`` array for
    :func:`fit_outer_cfb`'s ``weights`` argument.
    """
    extents = pcrs.boxes[:, 1, :] - pcrs.boxes[:, 0, :]  # (m, d)
    m, d = extents.shape
    weights = np.empty((m, d))
    for axis in range(d):
        others = np.delete(extents, axis, axis=1)
        weights[:, axis] = np.prod(others, axis=1) if d > 1 else 1.0
    # Guard against degenerate (zero-extent) layers dominating.
    weights = np.maximum(weights, 1e-12)
    return weights


def _face_weights(weights: np.ndarray | None, m: int) -> np.ndarray:
    if weights is None:
        return np.ones(m)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape[0] != m or np.any(w <= 0):
        raise ValueError("weights must be positive with one row per catalog value")
    return w


def _fit_face(
    ps: np.ndarray,
    weights: np.ndarray,
    targets: np.ndarray,
    side: str,
    method: str,
    slope_bounds: tuple[float, float] | None = None,
) -> tuple[float, float]:
    """Fit one linear face against target planes.

    ``side="lower"``: hug the targets from below (``a + b p_j <= t_j``)
    while maximising the weighted sum — used for the outer lower face and
    the inner upper face.  ``side="upper"``: hug from above while
    minimising — outer upper face and inner lower face.  Default slope
    bounds implement the shrink-direction convention.
    """
    if side not in ("lower", "upper"):
        raise ValueError(f"unknown side {side!r}")
    if slope_bounds is None:
        slope_bounds = (0.0, np.inf) if side == "lower" else (-np.inf, 0.0)
    if method == "closed-form":
        return _fit_face_closed_form(ps, weights, targets, side, slope_bounds)
    if method == "simplex":
        return _fit_face_simplex(ps, weights, targets, side, slope_bounds)
    raise ValueError(f"unknown method {method!r}")


def _fit_face_closed_form(
    ps: np.ndarray,
    weights: np.ndarray,
    targets: np.ndarray,
    side: str,
    slope_bounds: tuple[float, float],
) -> tuple[float, float]:
    """Exact solution of the 2-variable face LP.

    For side="lower" the feasible intercepts are ``a <= min_j(t_j - b p_j)``
    and the objective ``W a + (Σ w_j p_j) b`` is maximised at
    ``a*(b) = min_j(t_j - b p_j)``, a concave piecewise-linear function of
    ``b``; its maximum sits at a kink (a pairwise constraint intersection)
    or at a slope bound.  side="upper" is the convex mirror image.
    """
    w_total = float(weights.sum())
    wp_total = float((weights * ps).sum())
    lo_b, hi_b = slope_bounds

    # Candidate slopes: pairwise intersections of the constraint lines
    # plus any finite bounds.
    diffs_t = targets[:, None] - targets[None, :]
    diffs_p = ps[:, None] - ps[None, :]
    mask = np.abs(diffs_p) > 1e-15
    candidates = diffs_t[mask] / diffs_p[mask]
    extra = [b for b in (lo_b, hi_b) if np.isfinite(b)]
    if extra:
        candidates = np.concatenate([candidates, np.asarray(extra)])
    if candidates.size == 0:
        candidates = np.zeros(1)
    candidates = np.clip(candidates, lo_b, hi_b)
    candidates = np.unique(candidates)
    candidates = candidates[np.isfinite(candidates)]
    if candidates.size == 0:
        candidates = np.zeros(1)

    # a*(b) per candidate, vectorised: (n_cand, m).
    residual = targets[None, :] - candidates[:, None] * ps[None, :]
    if side == "lower":
        a_star = residual.min(axis=1)
        objective = w_total * a_star + wp_total * candidates
        best = int(np.argmax(objective))
    else:
        a_star = residual.max(axis=1)
        objective = w_total * a_star + wp_total * candidates
        best = int(np.argmin(objective))
    return float(a_star[best]), float(candidates[best])


def _fit_face_simplex(
    ps: np.ndarray,
    weights: np.ndarray,
    targets: np.ndarray,
    side: str,
    slope_bounds: tuple[float, float],
) -> tuple[float, float]:
    """Simplex oracle for the same face LP (used for cross-checking)."""
    w_total = float(weights.sum())
    wp_total = float((weights * ps).sum())
    c = np.array([w_total, wp_total])
    lo_b, hi_b = slope_bounds
    bounds = [
        (None, None),
        (None if not np.isfinite(lo_b) else lo_b, None if not np.isfinite(hi_b) else hi_b),
    ]
    rows = []
    rhs = []
    if side == "lower":
        for p, t in zip(ps, targets):
            rows.append([1.0, p])
            rhs.append(t)
        result = solve_lp(c, a_ub=rows, b_ub=rhs, bounds=bounds, maximize=True)
    else:
        for p, t in zip(ps, targets):
            rows.append([-1.0, -p])
            rhs.append(-t)
        result = solve_lp(c, a_ub=rows, b_ub=rhs, bounds=bounds, maximize=False)
    if result.status != LPStatus.OPTIMAL:
        flat = float(np.min(targets) if side == "lower" else np.max(targets))
        return flat, 0.0
    return float(result.x[0]), float(result.x[1])


def _fit_inner_anchored(
    ps: np.ndarray,
    lo_targets: np.ndarray,
    hi_targets: np.ndarray,
) -> tuple[float, float, float, float]:
    """Crossing-free inner fit anchored at the top catalog value.

    Pin both faces to the midpoint ``t`` of the PCR at ``p_m`` (a point
    both faces may legally touch), then open each face as fast as its
    containment constraints allow:

    * ``lo(p) = t + b_lo (p - p_m)`` with the largest ``b_lo`` keeping
      ``lo(p_j) >= pcr_j-`` for all j;
    * ``hi(p) = t + b_hi (p - p_m)`` with the most negative ``b_hi``
      keeping ``hi(p_j) <= pcr_j+``.

    Since ``b_lo >= 0 >= b_hi`` and both lines meet at ``p_m``,
    ``lo(p_j) <= hi(p_j)`` holds everywhere — no crossing by
    construction.  Feasible always; optimal whenever the coupling
    constraint binds only at ``p_m``.
    """
    p_top = ps[-1]
    t = (lo_targets[-1] + hi_targets[-1]) / 2.0
    below = ps < p_top
    if not np.any(below):
        return t, 0.0, t, 0.0
    gaps = p_top - ps[below]
    b_lo = float(np.min((t - lo_targets[below]) / gaps))
    b_hi = float(np.max(-(hi_targets[below] - t) / gaps))
    b_lo = max(b_lo, 0.0)
    b_hi = min(b_hi, 0.0)
    a_lo = t - b_lo * p_top
    a_hi = t - b_hi * p_top
    return a_lo, b_lo, a_hi, b_hi


def _fit_inner_coupled(
    ps: np.ndarray,
    m: int,
    total: float,
    lo_targets: np.ndarray,
    hi_targets: np.ndarray,
) -> tuple[float, float, float, float]:
    """The coupled 4-variable inner LP (non-crossing constraint active)."""
    # Variables: [a_lo, b_lo, a_hi, b_hi].
    # Maximise m*a_hi + P*b_hi - m*a_lo - P*b_lo.
    c = np.array([-m, -total, m, total])
    rows = []
    rhs = []
    for j in range(m):
        p = ps[j]
        rows.append([-1.0, -p, 0.0, 0.0])
        rhs.append(-lo_targets[j])
        rows.append([0.0, 0.0, 1.0, p])
        rhs.append(hi_targets[j])
        rows.append([1.0, p, -1.0, -p])
        rhs.append(0.0)
    bounds = [(None, None), (0.0, None), (None, None), (None, 0.0)]
    result = solve_lp(c, a_ub=rows, b_ub=rhs, bounds=bounds, maximize=True)
    if result.status != LPStatus.OPTIMAL:
        # Always feasible in exact arithmetic (the degenerate point
        # pcr(p_max) satisfies everything); fall back to it.
        return float(lo_targets[-1]), 0.0, float(hi_targets[-1]), 0.0
    a_lo, b_lo, a_hi, b_hi = result.x
    return float(a_lo), float(b_lo), float(a_hi), float(b_hi)


def _repair_outer(cfb: LinearBoxFunction, pcrs: PCRSet) -> None:
    """Nudge outer faces so containment holds exactly despite LP tolerance."""
    ps = pcrs.catalog.values
    for axis in range(pcrs.dim):
        lo_vals = cfb.intercept[0, axis] + cfb.slope[0, axis] * ps
        violation = np.max(lo_vals - pcrs.boxes[:, 0, axis])
        if violation > -_SAFETY:
            cfb.intercept[0, axis] -= max(violation, 0.0) + _SAFETY
        hi_vals = cfb.intercept[1, axis] + cfb.slope[1, axis] * ps
        violation = np.max(pcrs.boxes[:, 1, axis] - hi_vals)
        if violation > -_SAFETY:
            cfb.intercept[1, axis] += max(violation, 0.0) + _SAFETY


def _repair_inner(cfb: LinearBoxFunction, pcrs: PCRSet) -> None:
    """Nudge inner faces so containment holds exactly despite LP tolerance."""
    ps = pcrs.catalog.values
    for axis in range(pcrs.dim):
        lo_vals = cfb.intercept[0, axis] + cfb.slope[0, axis] * ps
        violation = np.max(pcrs.boxes[:, 0, axis] - lo_vals)
        if violation > -_SAFETY:
            cfb.intercept[0, axis] += max(violation, 0.0) + _SAFETY
        hi_vals = cfb.intercept[1, axis] + cfb.slope[1, axis] * ps
        violation = np.max(hi_vals - pcrs.boxes[:, 1, axis])
        if violation > -_SAFETY:
            cfb.intercept[1, axis] -= max(violation, 0.0) + _SAFETY
