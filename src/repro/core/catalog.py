"""The U-catalog: the finite set of probability values with pre-computed PCRs.

Section 4.2 of the paper fixes a system-wide ascending list of values
``p_1 < p_2 < ... < p_m`` in ``[0, 0.5]`` (the *U-catalog*).  Every object
pre-computes its PCR at exactly these values; queries then pick the best
available value conservatively (Observation 2).  The paper's experiments
use evenly spaced catalogs: ``{0, 0.5/(m-1), 1/(m-1), ..., 0.5}`` for the
U-PCR tuning study (Fig. 8) and ``{0, 1/28, ..., 14/28}`` (m = 15) for the
U-tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["UCatalog"]


class UCatalog:
    """An immutable ascending list of catalog probabilities in [0, 0.5]."""

    __slots__ = ("values",)

    def __init__(self, values: Iterable[float]):
        vals = np.asarray(list(values), dtype=np.float64)
        if vals.size < 1:
            raise ValueError("a U-catalog needs at least one value")
        if np.any(vals < 0.0) or np.any(vals > 0.5):
            raise ValueError("catalog values must lie in [0, 0.5]")
        if np.any(np.diff(vals) <= 0.0):
            raise ValueError("catalog values must be strictly ascending")
        self.values = vals
        self.values.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def evenly_spaced(cls, m: int) -> "UCatalog":
        """The paper's evenly spaced catalog ``{k * 0.5/(m-1) : k < m}``."""
        if m < 2:
            raise ValueError("an evenly spaced catalog needs at least 2 values")
        return cls(np.linspace(0.0, 0.5, m))

    @classmethod
    def paper_utree_default(cls) -> "UCatalog":
        """m = 15 catalog ``{0, 1/28, ..., 14/28}`` used for U-trees (Sec. 6.2)."""
        return cls(np.arange(15) / 28.0)

    @classmethod
    def paper_upcr_default(cls, dim: int = 2) -> "UCatalog":
        """The tuned U-PCR catalog: m = 9 in 2-D, m = 10 in 3-D (Fig. 8)."""
        return cls.evenly_spaced(9 if dim <= 2 else 10)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of catalog values (the paper's ``m``)."""
        return int(self.values.size)

    @property
    def p_min(self) -> float:
        """The smallest catalog value ``p_1``."""
        return float(self.values[0])

    @property
    def p_max(self) -> float:
        """The largest catalog value ``p_m``."""
        return float(self.values[-1])

    @property
    def total(self) -> float:
        """``P = sum_j p_j``, the constant in the CFB objective (Formula 11)."""
        return float(self.values.sum())

    @property
    def median_index(self) -> int:
        """Index of the median value, used by the node-split heuristic (Sec. 5.3)."""
        return self.size // 2

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[float]:
        return iter(self.values.tolist())

    def __getitem__(self, j: int) -> float:
        return float(self.values[j])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UCatalog):
            return NotImplemented
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:
        return hash(self.values.tobytes())

    def __repr__(self) -> str:
        vals = ", ".join(f"{v:g}" for v in self.values)
        return f"UCatalog([{vals}])"

    # ------------------------------------------------------------------
    # conservative selection (Observation 2)
    # ------------------------------------------------------------------
    def index_of_largest_at_most(self, p: float) -> int | None:
        """Index of the largest catalog value ``<= p``, or None."""
        idx = int(np.searchsorted(self.values, p, side="right")) - 1
        return idx if idx >= 0 else None

    def index_of_smallest_at_least(self, p: float) -> int | None:
        """Index of the smallest catalog value ``>= p``, or None."""
        idx = int(np.searchsorted(self.values, p, side="left"))
        return idx if idx < self.size else None

    def largest_at_most(self, p: float) -> float | None:
        """The largest catalog value ``<= p``, or None."""
        idx = self.index_of_largest_at_most(p)
        return None if idx is None else float(self.values[idx])

    def smallest_at_least(self, p: float) -> float | None:
        """The smallest catalog value ``>= p``, or None."""
        idx = self.index_of_smallest_at_least(p)
        return None if idx is None else float(self.values[idx])
