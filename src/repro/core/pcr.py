"""Probabilistically constrained regions (PCRs), Section 4.1 of the paper.

``o.pcr(p)`` is the hyper-rectangle whose face planes cut off probability
mass exactly ``p`` on each side of each axis: the object appears left of
``pcr_i-(p)`` with probability ``p`` and right of ``pcr_i+(p)`` with
probability ``p``.  PCRs nest (``p <= p' => pcr(p) ⊇ pcr(p')``) and
``pcr(0.5)`` degenerates to the coordinate-wise median point.

A :class:`PCRSet` holds one object's PCRs at every U-catalog value as an
``(m, 2, d)`` profile array — the representation shared with the index
engine — plus the object MBR the validation rules need.
"""

from __future__ import annotations

import numpy as np

from repro.core.catalog import UCatalog
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject

__all__ = ["PCRSet", "compute_pcrs"]


class PCRSet:
    """An object's pre-computed PCRs at all catalog values."""

    __slots__ = ("catalog", "boxes", "mbr")

    def __init__(self, catalog: UCatalog, boxes: np.ndarray, mbr: Rect):
        arr = np.asarray(boxes, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[0] != catalog.size or arr.shape[1] != 2:
            raise ValueError(
                f"boxes must have shape ({catalog.size}, 2, d), got {arr.shape}"
            )
        if arr.shape[2] != mbr.dim:
            raise ValueError("boxes and mbr dimensionality disagree")
        self.catalog = catalog
        self.boxes = arr
        self.mbr = mbr

    @property
    def dim(self) -> int:
        """Dimensionality of the data space."""
        return int(self.boxes.shape[2])

    def box(self, j: int) -> Rect:
        """The PCR at catalog index ``j`` as a :class:`Rect`.

        Uses the unvalidated fast-path constructor: the profile array is
        validated (and ``lo <= hi``-clamped) once at construction, so the
        per-rule box materialisation skips the per-call checks.
        """
        return Rect.from_arrays(self.boxes[j, 0], self.boxes[j, 1])

    def lower(self, j: int, axis: int) -> float:
        """The plane ``pcr_axis-(p_j)``."""
        return float(self.boxes[j, 0, axis])

    def upper(self, j: int, axis: int) -> float:
        """The plane ``pcr_axis+(p_j)``."""
        return float(self.boxes[j, 1, axis])

    def profile(self) -> np.ndarray:
        """The ``(m, 2, d)`` stacked-box array (shared, do not mutate)."""
        return self.boxes

    def is_nested(self, tol: float = 1e-9) -> bool:
        """Check the PCR nesting invariant across catalog values."""
        lo = self.boxes[:, 0, :]
        hi = self.boxes[:, 1, :]
        return bool(
            np.all(np.diff(lo, axis=0) >= -tol) and np.all(np.diff(hi, axis=0) <= tol)
        )

    def __repr__(self) -> str:
        return f"PCRSet(m={self.catalog.size}, dim={self.dim})"


def compute_pcrs(obj: UncertainObject, catalog: UCatalog) -> PCRSet:
    """Compute an object's PCRs at every catalog value.

    As the paper notes (Section 4.1), PCRs are cheap: each plane is a
    single marginal-CDF inversion, ``pcr_i-(p) = F_i^{-1}(p)`` and
    ``pcr_i+(p) = F_i^{-1}(1 - p)``.  The catalog value 0 maps to the
    support bounds, i.e. the region MBR, exactly.

    Monotonicity of the quantile function gives nesting for free; we still
    clamp tiny numerical inversions so downstream invariants hold exactly.
    """
    marginals = obj.marginals()
    mbr = obj.mbr
    d = obj.dim
    m = catalog.size
    boxes = np.empty((m, 2, d))
    for j, p in enumerate(catalog):
        if p == 0.0:
            boxes[j, 0] = mbr.lo
            boxes[j, 1] = mbr.hi
            continue
        for axis in range(d):
            boxes[j, 0, axis] = marginals.quantile(axis, p)
            boxes[j, 1, axis] = marginals.quantile(axis, 1.0 - p)

    # Clamp: planes stay inside the MBR, nesting is exact, lo <= hi.
    boxes[:, 0, :] = np.clip(boxes[:, 0, :], mbr.lo, mbr.hi)
    boxes[:, 1, :] = np.clip(boxes[:, 1, :], mbr.lo, mbr.hi)
    boxes[:, 0, :] = np.maximum.accumulate(boxes[:, 0, :], axis=0)
    boxes[:, 1, :] = np.minimum.accumulate(boxes[:, 1, :], axis=0)
    crossing = boxes[:, 0, :] > boxes[:, 1, :]
    if np.any(crossing):
        mid = (boxes[:, 0, :] + boxes[:, 1, :]) / 2.0
        boxes[:, 0, :] = np.where(crossing, mid, boxes[:, 0, :])
        boxes[:, 1, :] = np.where(crossing, mid, boxes[:, 1, :])
    return PCRSet(catalog, boxes, mbr)
