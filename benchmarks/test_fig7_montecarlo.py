"""Bench for Figure 7: Monte-Carlo appearance-probability evaluation.

Times one P_app evaluation at several sample counts and records the
workload-error series in extra_info, mirroring the paper's columns
(error percentage atop each bar, msec per evaluation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig7
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("n1", [1_000, 10_000, 100_000])
def test_fig7_estimate_cost(benchmark, dim, n1):
    """Per-evaluation cost grows linearly with n1 (Fig. 7 bar labels)."""
    centre = np.full(dim, 5000.0)
    density = UniformDensity(BallRegion(centre, 250.0), marginal_seed=dim)
    # A query the region straddles, so the estimate is non-trivial.
    query = Rect.from_center(centre + 150.0, 250.0)
    estimator = AppearanceEstimator(n_samples=n1, seed=5)

    value = benchmark(estimator.estimate, density, query, 0)
    assert 0.0 < value < 1.0


def test_fig7_error_series(benchmark, scale):
    """Workload error falls as n1 grows, and 3-D needs more samples than 2-D."""
    result = benchmark.pedantic(fig7.run, args=(scale, 8), rounds=1, iterations=1)
    errors_2d = result["dims"][2]["workload_error"]
    errors_3d = result["dims"][3]["workload_error"]
    benchmark.extra_info["n1"] = result["n1"]
    benchmark.extra_info["error_2d"] = errors_2d
    benchmark.extra_info["error_3d"] = errors_3d
    # Shape assertions: monotone-ish decay over the sweep's endpoints.
    assert errors_2d[-1] < errors_2d[0]
    assert errors_3d[-1] < errors_3d[0]
