"""Ablation: U-tree catalog size.

Section 6.2 argues the U-tree tolerates large catalogs because its entry
size is independent of m (only insertion CPU grows), unlike U-PCR.  This
bench verifies: index bytes are flat across m while the filter gets no
worse, supporting the paper's choice of m = 15.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.core.catalog import UCatalog
from repro.experiments.data import build_utree
from repro.experiments.harness import run_workload


@pytest.mark.parametrize("m", [5, 10, 15])
def test_ablation_utree_catalog_size(benchmark, scale, lb_points, m):
    tree = build_utree("LB", scale, catalog=UCatalog.evenly_spaced(m))
    workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["index_bytes"] = tree.size_bytes
    benchmark.extra_info["avg_prob_computations"] = stats.avg_prob_computations


def test_ablation_utree_size_independent_of_catalog(scale):
    """U-tree bytes do not grow with m (CFBs are fixed-size)."""
    small = build_utree("LB", scale, catalog=UCatalog.evenly_spaced(5))
    large = build_utree("LB", scale, catalog=UCatalog.evenly_spaced(15))
    # Tree shapes can differ slightly; sizes must stay within one split.
    assert abs(small.engine.node_count - large.engine.node_count) <= max(
        3, small.engine.node_count // 10
    )
