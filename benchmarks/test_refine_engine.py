"""Benches for the vectorized sample-reuse refinement engine.

The acceptance contract of the refinement engine:

* on a shared workload (many queries revisiting the same objects) the
  batched engine performs **strictly fewer density evaluations** than
  per-pair estimation — it draws each object's cloud once where the
  per-pair path re-draws per ``(object, query)`` pair;
* engine throughput is **at least 3x** the per-pair estimator on a
  200-query shared workload;
* every value is **bit-identical** to the per-pair estimator (asserted
  with ``==``).

The headline numbers are written to a ``BENCH_refine.json`` artifact
(path overridable via ``REPRO_BENCH_ARTIFACT``) for the CI perf-smoke
job.  ``REPRO_BENCH_SAMPLES`` shrinks the Monte-Carlo budget for smoke
runs; the defaults match the bench scale used by the other suites.
"""

from __future__ import annotations

import json
from repro.env import env_int, env_value
import time

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.exec import BatchExecutor, RefinementEngine, execute_query
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 4000)
SEED = 7
N_QUERIES = 200
ARTIFACT = env_value("REPRO_BENCH_ARTIFACT", "BENCH_refine.json")


def _objects(n: int = 48) -> list[UncertainObject]:
    rng = np.random.default_rng(61)
    centres = rng.uniform(3000, 7000, (n, 2))
    return [
        UncertainObject(i, UniformDensity(BallRegion(centres[i], 300.0)))
        for i in range(n)
    ]


def _shared_pairs(objects) -> list[tuple[UncertainObject, Rect]]:
    """A 200-query workload whose pairs all need real Monte-Carlo work.

    Queries cluster over the object field, so the same objects recur as
    candidates across many queries — the reuse profile of Figs. 9-10.
    Containment/disjoint pairs are excluded because both paths answer
    them without sampling.
    """
    rng = np.random.default_rng(83)
    pairs = []
    for _ in range(N_QUERIES):
        centre = rng.uniform(3000, 7000, 2)
        rect = Rect.from_center(centre, rng.uniform(400.0, 900.0))
        for obj in objects:
            mbr = obj.mbr
            if rect.intersects(mbr) and not rect.contains(mbr):
                pairs.append((obj, rect))
    return pairs


@pytest.fixture(scope="module")
def objects():
    return _objects()


@pytest.fixture(scope="module")
def shared_pairs(objects):
    pairs = _shared_pairs(objects)
    assert len(pairs) > 400  # a genuinely shared workload
    return pairs


class TestEngineAcceptance:
    def test_fewer_density_evals_and_3x_throughput(self, objects, shared_pairs):
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        baseline_start = time.perf_counter()
        baseline = [
            estimator.estimate(obj.pdf, rect, object_id=obj.oid)
            for obj, rect in shared_pairs
        ]
        baseline_seconds = time.perf_counter() - baseline_start
        # Every pair partially overlaps, so the per-pair path re-drew and
        # re-weighted the object's cloud once per pair.
        baseline_density_evals = len(shared_pairs)

        engine = RefinementEngine(n_samples=N_SAMPLES, seed=SEED)
        engine_start = time.perf_counter()
        batched = engine.estimate_batch(shared_pairs)
        engine_seconds = time.perf_counter() - engine_start

        assert batched == baseline  # bit-identical, not approximately
        # Strictly fewer density evaluations: one draw per *object*, not
        # per pair.
        assert engine.density_evaluations < baseline_density_evals
        assert engine.density_evaluations <= len(objects)

        speedup = baseline_seconds / max(engine_seconds, 1e-12)
        # Wall-clock is hostage to runner load; the fail-fast correctness
        # matrix sets REPRO_SKIP_PERF_ASSERT so a noisy neighbour cannot
        # fail a correctness build — the perf-smoke job (and local runs)
        # keep the 3x contract armed.
        if not env_value("REPRO_SKIP_PERF_ASSERT"):
            assert speedup >= 3.0, (
                f"engine speedup {speedup:.2f}x below the 3x contract "
                f"({baseline_seconds:.3f}s vs {engine_seconds:.3f}s)"
            )

        with open(ARTIFACT, "w") as fh:
            json.dump(
                {
                    "n_samples": N_SAMPLES,
                    "queries": N_QUERIES,
                    "pairs": len(shared_pairs),
                    "objects": len(objects),
                    "baseline_seconds": baseline_seconds,
                    "engine_seconds": engine_seconds,
                    "speedup": speedup,
                    "baseline_density_evaluations": baseline_density_evals,
                    "engine_density_evaluations": engine.density_evaluations,
                    "pairs_per_second_baseline": len(shared_pairs) / baseline_seconds,
                    "pairs_per_second_engine": len(shared_pairs)
                    / max(engine_seconds, 1e-12),
                },
                fh,
                indent=2,
            )

    def test_warm_engine_throughput(self, benchmark, shared_pairs):
        engine = RefinementEngine(n_samples=N_SAMPLES, seed=SEED)
        engine.estimate_batch(shared_pairs)  # warm the sample cache
        result = benchmark(engine.estimate_batch, shared_pairs)
        assert len(result) == len(shared_pairs)
        benchmark.extra_info["pairs"] = len(shared_pairs)
        benchmark.extra_info["sample_cache_hit_rate"] = round(
            engine.cache.hit_rate, 4
        )


class TestParallelBatchOverlap:
    """Thread-pool phase overlap on a tree workload with simulated latency."""

    @pytest.fixture(scope="class")
    def tree(self, objects):
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED))
        for obj in objects:
            tree.insert(obj)
        return tree

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(19)
        return [
            ProbRangeQuery(Rect.from_center(rng.uniform(3000, 7000, 2), 800.0), 0.5)
            for _ in range(24)
        ]

    def test_parallel_answers_match_serial_with_latency(self, tree, workload):
        expected = [execute_query(tree, q).object_ids for q in workload]
        latency = 0.002
        serial = BatchExecutor(
            tree, parallelism=1, io_latency_seconds=latency
        ).run(workload)
        parallel = BatchExecutor(
            tree, parallelism=4, io_latency_seconds=latency
        ).run(workload)
        assert [a.object_ids for a in serial.answers] == expected
        assert [a.object_ids for a in parallel.answers] == expected
        # The parallel run actually slept in its fetch thread (simulated
        # I/O) while refinement proceeded — fetch wall-clock is real, and
        # total wall-clock must not pay fetch + refine strictly serially.
        assert parallel.batch.fetch_seconds >= (
            latency * parallel.batch.data_page_fetches
        )

    def test_parallel_workload_throughput(self, benchmark, tree, workload):
        executor = BatchExecutor(tree, parallelism=4)
        executor.run(workload)  # warm sample cache and memo
        result = benchmark(executor.run, workload)
        assert result.workload.count == len(workload)
        benchmark.extra_info["parallelism"] = 4
        benchmark.extra_info["memo_hit_rate"] = round(result.batch.memo_hit_rate, 3)
