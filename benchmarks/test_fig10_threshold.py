"""Bench for Figure 10: query cost versus probability threshold (qs = 1500).

One benchmark per (structure, pq) cell on LB, plus the shape assertion
that the U-tree keeps its node-access advantage across all thresholds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.experiments.harness import run_workload

_PQ_VALUES = [0.3, 0.6, 0.9]


@pytest.mark.parametrize("pq", _PQ_VALUES)
@pytest.mark.parametrize("structure", ["utree", "upcr"])
def test_fig10_lb(benchmark, scale, lb_points, lb_utree, lb_upcr, structure, pq):
    tree = lb_utree if structure == "utree" else lb_upcr
    workload = workload_for(lb_points, scale, qs=1500.0, pq=pq)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses
    benchmark.extra_info["avg_prob_computations"] = stats.avg_prob_computations
    benchmark.extra_info["validated_pct"] = stats.validated_percentage


def test_fig10_shape_io_advantage_all_thresholds(scale, lb_points, lb_utree, lb_upcr):
    for pq in _PQ_VALUES:
        workload = workload_for(lb_points, scale, qs=1500.0, pq=pq, seed=500)
        utree_io = run_workload(lb_utree, workload).avg_node_accesses
        upcr_io = run_workload(lb_upcr, workload).avg_node_accesses
        assert utree_io < upcr_io, f"U-tree should win I/O at pq={pq}"
