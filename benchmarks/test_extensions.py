"""Benches for the future-work extensions (paper Section 7).

* probabilistic nearest-neighbour queries on the U-tree;
* the analytical cost model (prediction accuracy + evaluation speed);
* STR bulk loading versus the paper's insert-based construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import workload_for
from repro.core.costmodel import UTreeCostModel
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.utree import UTree
from repro.experiments.data import dataset_objects
from repro.experiments.harness import run_workload


class TestNNBench:
    def test_probabilistic_nn_query(self, benchmark, scale, lb_utree):
        point = np.array([5000.0, 5000.0])
        result = benchmark(
            probabilistic_nearest_neighbors, lb_utree, point, 1000, 3
        )
        assert result.candidates
        benchmark.extra_info["candidates"] = len(result.candidates)
        benchmark.extra_info["node_accesses"] = result.node_accesses

    def test_nn_filter_prunes_most_nodes(self, scale, lb_utree):
        rng = np.random.default_rng(1)
        total_nodes = lb_utree.engine.node_count
        for __ in range(5):
            point = rng.uniform(2000, 8000, 2)
            result = probabilistic_nearest_neighbors(lb_utree, point, rounds=200, seed=4)
            assert result.node_accesses < total_nodes


class TestCostModelBench:
    def test_model_build_and_eval(self, benchmark, scale, lb_utree, lb_points):
        model = UTreeCostModel(lb_utree)
        workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6)
        estimate = benchmark(model.estimate_workload, workload)
        measured = run_workload(lb_utree, workload).avg_node_accesses
        benchmark.extra_info["predicted_node_accesses"] = estimate.node_accesses
        benchmark.extra_info["measured_node_accesses"] = measured
        # The optimizer-grade contract: right order of magnitude.
        assert estimate.node_accesses == pytest.approx(measured, rel=1.5)


class TestBulkLoadBench:
    def test_bulk_vs_insert_build(self, benchmark, scale):
        objects = dataset_objects("LB", scale)

        def build_packed():
            return UTree.bulk_load(objects)

        packed = benchmark.pedantic(build_packed, rounds=1, iterations=1)
        inserted = UTree(2)
        for obj in objects:
            inserted.insert(obj)
        benchmark.extra_info["packed_nodes"] = packed.engine.node_count
        benchmark.extra_info["inserted_nodes"] = inserted.engine.node_count
        assert packed.engine.node_count <= inserted.engine.node_count

    def test_bulk_query_io_not_worse(self, scale, lb_points):
        objects = dataset_objects("LB", scale)
        packed = UTree.bulk_load(objects)
        inserted = UTree(2)
        for obj in objects:
            inserted.insert(obj)
        workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6, seed=811)
        packed_io = run_workload(packed, workload).avg_node_accesses
        inserted_io = run_workload(inserted, workload).avg_node_accesses
        # Packing trades slightly worse clustering for far fewer pages;
        # allow modest slack but catch regressions.
        assert packed_io <= inserted_io * 1.5
