"""Ablation: margin versus area-proxy objective for outer-CFB fitting.

Footnote 4 of the paper picks the summed-margin objective over summed
area, arguing a low-margin rectangle also has small area but not vice
versa.  The exact area objective is non-linear; ``area_proxy_weights``
linearises it by weighting each axis with the other axes' PCR extents.
This bench compares fit cost and the tightness of the resulting boxes.
"""

from __future__ import annotations

import pytest

from repro.core.catalog import UCatalog
from repro.core.cfb import area_proxy_weights, fit_outer_cfb
from repro.core.pcr import compute_pcrs
from repro.experiments.data import dataset_objects


@pytest.fixture(scope="module")
def pcr_sets(scale):
    catalog = UCatalog.paper_utree_default()
    objects = dataset_objects("LB", scale)[:100]
    return [compute_pcrs(obj, catalog) for obj in objects]


@pytest.mark.parametrize("objective", ["margin", "area"])
def test_ablation_cfb_objective_fit(benchmark, pcr_sets, objective):
    def fit_all():
        total_area = 0.0
        for pcrs in pcr_sets:
            weights = None if objective == "margin" else area_proxy_weights(pcrs)
            outer = fit_outer_cfb(pcrs, weights=weights)
            total_area += sum(outer.box(p).area() for p in pcrs.catalog)
        return total_area

    total_area = benchmark(fit_all)
    benchmark.extra_info["objective"] = objective
    benchmark.extra_info["summed_box_area"] = total_area
    assert total_area > 0


def test_ablation_objectives_both_contain_pcrs(pcr_sets):
    """Whatever the objective, containment (the correctness contract) holds."""
    for pcrs in pcr_sets[:20]:
        for outer in (
            fit_outer_cfb(pcrs),
            fit_outer_cfb(pcrs, weights=area_proxy_weights(pcrs)),
        ):
            for j, p in enumerate(pcrs.catalog):
                box = outer.box(p)
                target = pcrs.box(j)
                assert (box.lo <= target.lo + 1e-6).all()
                assert (target.hi <= box.hi + 1e-6).all()
