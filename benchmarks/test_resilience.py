"""Bench for the resilient execution runtime: overhead and recovery.

Two headline numbers gate the resilience subsystem:

* **fault-free overhead** — checksums and supervision are paid on every
  batch, faulted or not, so their cost with all faults absent must stay
  a small multiple of the bare engine (answers bit-identical, asserted
  always);
* **recovery latency** — how much wall clock a batch loses when a
  worker is killed mid-run and the supervisor respawns and retries its
  fault domain, versus the same batch undisturbed.

Headline numbers go to ``BENCH_resilience.json`` (path overridable via
``REPRO_RESILIENCE_ARTIFACT``) for the CI perf-smoke job.  Wall-clock
assertions are skippable via ``REPRO_SKIP_PERF_ASSERT`` for congested
CI runners; the answer-identity assertions are always armed.
"""

from __future__ import annotations

import json
import time
import warnings

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.env import env_flag, env_int, env_value
from repro.faults import DegradedWarning
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion
from tests.faultinject import arm_chaos

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 600)
SEED = 31
N_OBJECTS = 120
N_QUERIES = 12
REPEATS = 3
ARTIFACT = env_value("REPRO_RESILIENCE_ARTIFACT", "BENCH_resilience.json")
SKIP_PERF = env_flag("REPRO_SKIP_PERF_ASSERT")

# Generous gate: supervision is poll-based bookkeeping and checksums
# are one crc32 per physical page read — an order-of-magnitude blowup
# would mean the gate is on the hot path by accident.
MAX_FAULT_FREE_OVERHEAD = 3.0


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(SEED)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(
            i, UniformDensity(BallRegion(centres[i], 250.0), marginal_seed=i)
        )
        for i in range(N_OBJECTS)
    ]


def _specs() -> list[RangeSpec]:
    rng = np.random.default_rng(SEED + 1)
    return [
        RangeSpec(
            Rect.from_center(rng.uniform(1500, 8500, 2), float(rng.uniform(900, 2000))),
            float(rng.choice([0.3, 0.5])),
        )
        for _ in range(N_QUERIES)
    ]


def _config(**overrides) -> ExecConfig:
    fields = dict(mc_samples=N_SAMPLES, seed=SEED, page_size=2048)
    fields.update(overrides)
    return ExecConfig(**fields)


def _timed_run(db: Database, specs) -> tuple[float, list[list[int]]]:
    """Best-of-REPEATS wall clock plus the (stable) answers."""
    best = float("inf")
    answers = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = db.run(specs)
        best = min(best, time.perf_counter() - start)
        answers = [r.object_ids for r in out.results]
    return best, answers


class TestResilienceBench:
    def test_fault_free_overhead_and_recovery_latency(self):
        specs = _specs()
        results: dict = {
            "objects": N_OBJECTS,
            "queries": N_QUERIES,
            "mc_samples": N_SAMPLES,
            "repeats": REPEATS,
            "perf_assert_armed": not SKIP_PERF,
        }

        # --- fault-free overhead ------------------------------------
        bare = Database.create(_objects(), _config())
        bare_seconds, baseline = _timed_run(bare, specs)
        bare.close()
        results["bare_batch_seconds"] = bare_seconds

        for label, overrides in (
            ("checksum", dict(checksum=True)),
            (
                "supervised",
                dict(
                    executor="process",
                    parallelism=2,
                    on_fault="degrade",
                    worker_timeout=30.0,
                ),
            ),
            (
                "full",
                dict(
                    executor="process",
                    parallelism=2,
                    on_fault="degrade",
                    worker_timeout=30.0,
                    checksum=True,
                ),
            ),
        ):
            db = Database.create(_objects(), _config(**overrides))
            seconds, answers = _timed_run(db, specs)
            db.close()
            assert answers == baseline, f"{label} run changed answers"
            results[f"{label}_batch_seconds"] = seconds
            results[f"{label}_overhead_x"] = seconds / max(bare_seconds, 1e-9)

        # The checksum path runs on the same serial backend as bare, so
        # its ratio is the honest fault-free overhead number.
        if not SKIP_PERF:
            assert results["checksum_overhead_x"] < MAX_FAULT_FREE_OVERHEAD, (
                f"fault-free checksum overhead {results['checksum_overhead_x']:.2f}x "
                f"exceeds {MAX_FAULT_FREE_OVERHEAD}x"
            )

        # --- recovery latency ---------------------------------------
        cfg = _config(
            executor="process",
            parallelism=2,
            on_fault="degrade",
            worker_timeout=30.0,
            max_retries=2,
        )
        db = Database.create(_objects(), cfg)
        undisturbed_seconds, answers = _timed_run(db, specs)
        assert answers == baseline
        ex = db._batch_executor("utree")
        ex._ensure_pool()
        arm_chaos(ex, 0, "exit")
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedWarning)
            out = db.run(specs)
        faulted_seconds = time.perf_counter() - start
        assert [r.object_ids for r in out.results] == baseline
        assert out.batch.worker_respawns >= 1
        db.close()
        results["process_batch_seconds"] = undisturbed_seconds
        results["worker_kill_batch_seconds"] = faulted_seconds
        results["recovery_latency_seconds"] = max(
            0.0, faulted_seconds - undisturbed_seconds
        )
        results["respawns_during_recovery"] = out.batch.worker_respawns

        with open(ARTIFACT, "w") as fh:
            json.dump(results, fh, indent=2)
