"""Benches for the unified execution layer (buffer pool + batch executor).

The acceptance contract of the exec subsystem:

* a :class:`~repro.exec.batch.BatchExecutor` over a warm
  :class:`~repro.storage.bufferpool.BufferPool` performs **strictly fewer
  physical data-page reads** than per-query uncached execution on an
  overlapping workload (here: every query appears twice);
* with ``BufferPool(0)`` — or no pool at all — every I/O counter
  reproduces the seed's uncached numbers exactly;
* answers are bit-identical in all modes (memoisation is exact because
  the Monte-Carlo stream is keyed on ``(seed, object_id)``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.api import Database, ExecConfig, RangeSpec
from repro.core.utree import UTree
from repro.exec import BatchExecutor, Planner, execute_query
from repro.experiments.data import dataset_objects
from repro.storage.bufferpool import BufferPool


@pytest.fixture(scope="module")
def overlapping_workload(lb_points, scale):
    base = workload_for(lb_points, scale, qs=1500.0, pq=0.6, seed=505)
    return list(base) * 2  # every query repeated: an overlapping workload


def _build(objects, pool=None):
    tree = UTree(2, pool=pool)
    for obj in objects:
        tree.insert(obj)
    return tree


class TestBatchedExecutionIO:
    def test_warm_pool_batch_strictly_fewer_physical_data_reads(
        self, scale, overlapping_workload
    ):
        objects = dataset_objects("LB", scale)

        # Per-query uncached execution: every logical data-page read hits
        # the simulated disk.
        uncached = _build(objects)
        uncached.io.reset()
        baseline = [execute_query(uncached, q) for q in overlapping_workload]
        baseline_data_reads = sum(a.stats.data_page_reads for a in baseline)
        assert baseline_data_reads > 0
        assert uncached.io.cache_hits == 0

        # Batched execution against a warm pool: the batch dedupes page
        # fetches and the pool serves repeats from memory, so *total*
        # physical reads (nodes + data pages) stay below the uncached
        # run's data-page reads alone.
        pool = BufferPool(4096)
        pooled = _build(objects, pool=pool)
        BatchExecutor(pooled).run(overlapping_workload)  # warm-up pass
        pooled.io.reset()
        result = BatchExecutor(pooled).run(overlapping_workload)
        physical_during_batch = result.batch.physical_reads
        assert physical_during_batch < baseline_data_reads
        assert result.batch.cache_hits > 0
        assert [a.object_ids for a in result.answers] == [
            a.object_ids for a in baseline
        ]

    def test_capacity_zero_reproduces_seed_io_exactly(
        self, scale, overlapping_workload
    ):
        objects = dataset_objects("LB", scale)
        plain = _build(objects)
        zero = _build(objects, pool=BufferPool(0))
        plain.io.reset()
        zero.io.reset()
        for query in overlapping_workload:
            a = execute_query(plain, query)
            b = execute_query(zero, query)
            assert a.object_ids == b.object_ids
            assert a.stats.node_accesses == b.stats.node_accesses
            assert a.stats.data_page_reads == b.stats.data_page_reads
        assert zero.io.reads == plain.io.reads
        assert zero.io.writes == plain.io.writes
        assert zero.io.cache_hits == 0

    def test_batch_dedupe_alone_saves_fetches_without_pool(
        self, scale, overlapping_workload
    ):
        objects = dataset_objects("LB", scale)
        tree = _build(objects)
        tree.io.reset()
        result = BatchExecutor(tree).run(overlapping_workload)
        # Even uncached, the batch fetches each candidate page once.
        assert result.batch.unique_data_pages < result.batch.logical_data_page_reads
        assert result.batch.memo_hits > 0  # repeated rectangles share P_app


class TestBatchExecutorBench:
    def test_batched_workload_throughput(self, benchmark, scale, overlapping_workload):
        objects = dataset_objects("LB", scale)
        pool = BufferPool(4096)
        tree = _build(objects, pool=pool)
        executor = BatchExecutor(tree)
        executor.run(overlapping_workload)  # warm pool and memo

        result = benchmark(executor.run, overlapping_workload)
        stats = result.workload
        benchmark.extra_info["physical_reads"] = result.batch.physical_reads
        benchmark.extra_info["cache_hits"] = result.batch.cache_hits
        benchmark.extra_info["memo_hit_rate"] = round(result.batch.memo_hit_rate, 3)
        benchmark.extra_info["avg_logical_io"] = stats.avg_total_io
        assert result.batch.physical_reads == 0  # fully warm

    def test_planner_overhead(self, benchmark, scale, lb_utree, overlapping_workload):
        planner = Planner.for_structures(utree=lb_utree, data_records_per_page=40)
        report = benchmark(planner.run, overlapping_workload[:8])
        assert report.workload.count == 8
        benchmark.extra_info["choices"] = report.choice_counts()


class TestFacadeBench:
    """The ``repro.api`` front door over the same workload.

    The facade must add routing, typed results and config resolution
    without an execution-path tax: its batched run is the same
    ``BatchExecutor`` machinery, so answers are bit-identical and the
    per-batch counters match a hand-wired executor over the same pool.
    """

    def test_facade_matches_hand_wired_executor(self, scale, overlapping_workload):
        objects = dataset_objects("LB", scale)
        config = ExecConfig(
            mc_samples=scale.mc_samples, seed=7, pool_capacity=4096
        )
        db = Database.create(objects, config)

        # Same estimator parameters -> bit-identical Monte-Carlo streams.
        from repro.uncertainty.montecarlo import AppearanceEstimator

        hand_tree = UTree(
            2,
            pool=BufferPool(4096),
            estimator=AppearanceEstimator(n_samples=scale.mc_samples, seed=7),
        )
        for obj in objects:
            hand_tree.insert(obj)
        hand = BatchExecutor(hand_tree).run(overlapping_workload)

        specs = [RangeSpec(q.rect, q.threshold) for q in overlapping_workload]
        result = db.run(specs)
        assert [r.object_ids for r in result] == [
            a.object_ids for a in hand.answers
        ]
        assert result.batch.logical_data_page_reads == hand.batch.logical_data_page_reads
        assert result.batch.prob_computations == hand.batch.prob_computations

    def test_facade_batched_throughput(self, benchmark, scale, overlapping_workload):
        objects = dataset_objects("LB", scale)
        db = Database.create(
            objects,
            ExecConfig(mc_samples=scale.mc_samples, seed=7, pool_capacity=4096),
        )
        specs = [RangeSpec(q.rect, q.threshold) for q in overlapping_workload]
        db.run(specs)  # warm pool, memo and sample cache

        result = benchmark(db.run, specs)
        benchmark.extra_info["physical_reads"] = result.batch.physical_reads
        benchmark.extra_info["memo_hit_rate"] = round(result.batch.memo_hit_rate, 3)
        assert result.batch.physical_reads == 0  # fully warm
