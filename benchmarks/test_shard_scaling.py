"""Benches for sharded execution: routing must buy filter-phase I/O.

The acceptance contract of the shard layer, on a *clustered* workload
(queries concentrated in one region of a uniformly spread object field):

* the sharded batch with pruning enabled performs **strictly fewer
  filter-phase node accesses** than the unsharded structure — the
  router proves most shards irrelevant per query without touching a
  page.  The contract is pinned on the flat ``SequentialScan``
  structure, where every unsharded query must read the whole summary
  file and the win is deterministic and large (the router skips entire
  shard files).  U-tree numbers are *recorded* in the artifact for the
  same workload: an R-tree's own subtree pruning already localises
  clustered queries, so tree sharding buys parallel isolation and
  per-shard cache slices rather than logical filter I/O — the artifact
  shows both counts so the trade is visible;
* answers stay identical to the unsharded executor (the equivalence
  suite in ``tests/test_shard.py`` pins this bit-exactly; re-checked
  here on the benchmark workload for both structures).

The headline numbers are written to a ``BENCH_shard.json`` artifact
(path overridable via ``REPRO_SHARD_ARTIFACT``) for the CI perf-smoke
job.  ``REPRO_BENCH_SAMPLES`` shrinks the Monte-Carlo budget for smoke
runs.  The node-access contract is deterministic (pure counting, no
wall-clock), so it stays armed on every runner.
"""

from __future__ import annotations

import json
from repro.env import env_int, env_value
import time

import numpy as np
import pytest

from repro.api.config import ExecConfig
from repro.api.database import Database
from repro.api.specs import RangeSpec
from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.utree import UTree
from repro.exec import BatchExecutor, ShardedAccessMethod
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 4000)
SEED = 13
N_OBJECTS = 300
N_QUERIES = 48
SHARDS = 9
ARTIFACT = env_value("REPRO_SHARD_ARTIFACT", "BENCH_shard.json")


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(31)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(i, UniformDensity(BallRegion(centres[i], 220.0), marginal_seed=i))
        for i in range(N_OBJECTS)
    ]


def _clustered_workload() -> list[ProbRangeQuery]:
    """Queries packed into one corner region — the routing-friendly shape."""
    rng = np.random.default_rng(37)
    return [
        ProbRangeQuery(
            Rect.from_center(rng.uniform(1500, 3500, 2), float(rng.uniform(300, 800))),
            0.5,
        )
        for _ in range(N_QUERIES)
    ]


def _estimator() -> AppearanceEstimator:
    return AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)


def _filter_nodes(result) -> int:
    return sum(q.node_accesses for q in result.workload.queries)


@pytest.fixture(scope="module")
def objects():
    return _objects()


@pytest.fixture(scope="module")
def mono_tree(objects):
    tree = UTree(2, estimator=_estimator())
    for obj in objects:
        tree.insert(obj)
    return tree


@pytest.fixture(scope="module")
def sharded_tree(objects):
    return ShardedAccessMethod.build(
        objects, shards=SHARDS, partitioner="str", estimator=_estimator()
    )


class TestShardScalingAcceptance:
    def test_pruned_shards_strictly_fewer_filter_node_accesses(
        self, objects, mono_tree, sharded_tree
    ):
        workload = _clustered_workload()

        # The pinned contract: flat scans, where the unsharded filter
        # must read every summary page of every query.
        mono_scan = SequentialScan(2, estimator=_estimator())
        for obj in objects:
            mono_scan.insert(obj)
        sharded_scan = ShardedAccessMethod.build(
            objects, shards=SHARDS, partitioner="str", method="scan",
            estimator=_estimator(),
        )
        scan_start = time.perf_counter()
        mono_scan_result = BatchExecutor(mono_scan).run(workload)
        mono_scan_seconds = time.perf_counter() - scan_start
        scan_start = time.perf_counter()
        shard_scan_result = BatchExecutor(sharded_scan).run(workload)
        shard_scan_seconds = time.perf_counter() - scan_start

        for mono_ans, shard_ans in zip(
            mono_scan_result.answers, shard_scan_result.answers
        ):
            assert mono_ans.sorted_ids() == shard_ans.sorted_ids()
        mono_scan_nodes = _filter_nodes(mono_scan_result)
        shard_scan_nodes = _filter_nodes(shard_scan_result)
        assert shard_scan_nodes < mono_scan_nodes, (
            f"sharded scan read {shard_scan_nodes} filter pages, "
            f"unsharded {mono_scan_nodes}"
        )
        # The win comes from pruning: most (query, shard) probes never ran.
        assert shard_scan_result.batch.shards_pruned > 0
        assert shard_scan_result.batch.shard_probes < N_QUERIES * SHARDS

        # The recorded comparison: the same workload over U-trees.
        mono_tree_result = BatchExecutor(mono_tree).run(workload)
        shard_tree_result = BatchExecutor(sharded_tree).run(workload)
        for mono_ans, shard_ans in zip(
            mono_tree_result.answers, shard_tree_result.answers
        ):
            assert mono_ans.sorted_ids() == shard_ans.sorted_ids()

        per_shard = [
            {
                "shard": stats.shard,
                "probes": stats.probes,
                "routed_away": stats.routed_away,
                "node_accesses": stats.node_accesses,
                "physical_reads": stats.physical_reads,
                "candidates": stats.candidates,
            }
            for stats in shard_scan_result.batch.shard_stats
        ]
        with open(ARTIFACT, "w") as fh:
            json.dump(
                {
                    "n_samples": N_SAMPLES,
                    "objects": N_OBJECTS,
                    "queries": N_QUERIES,
                    "shards": SHARDS,
                    "partitioner": "str",
                    "scan_filter_node_accesses_unsharded": mono_scan_nodes,
                    "scan_filter_node_accesses_sharded": shard_scan_nodes,
                    "scan_node_access_ratio": shard_scan_nodes / mono_scan_nodes,
                    "utree_filter_node_accesses_unsharded": _filter_nodes(
                        mono_tree_result
                    ),
                    "utree_filter_node_accesses_sharded": _filter_nodes(
                        shard_tree_result
                    ),
                    "shard_probes": shard_scan_result.batch.shard_probes,
                    "shards_pruned": shard_scan_result.batch.shards_pruned,
                    "max_probes": N_QUERIES * SHARDS,
                    "scan_seconds_unsharded": mono_scan_seconds,
                    "scan_seconds_sharded": shard_scan_seconds,
                    "queries_per_second_unsharded": N_QUERIES
                    / max(mono_scan_seconds, 1e-12),
                    "queries_per_second_sharded": N_QUERIES
                    / max(shard_scan_seconds, 1e-12),
                    "per_shard": per_shard,
                },
                fh,
                indent=2,
            )

    def test_parallel_sharded_batch_throughput(self, benchmark, mono_tree, sharded_tree):
        workload = _clustered_workload()
        expected = [
            a.sorted_ids() for a in BatchExecutor(mono_tree).run(workload).answers
        ]
        executor = BatchExecutor(sharded_tree, parallelism=4)
        executor.run(workload)  # warm sample cache and memo
        result = benchmark(executor.run, workload)
        assert [a.sorted_ids() for a in result.answers] == expected
        benchmark.extra_info["shards"] = SHARDS
        benchmark.extra_info["shard_probes"] = result.batch.shard_probes
        benchmark.extra_info["shards_pruned"] = result.batch.shards_pruned

    def test_planner_routing_stops_the_sharded_utree_regression(self, objects):
        """The shards-vs-monolithic regression guard.

        On this clustered workload a U-tree sharded nine ways reads
        *more* filter pages than the monolithic tree (each routed shard
        pays its own root path), so pinning every query to the sharded
        method is a regression.  The planner must do better: pricing
        each query against both structures — with the per-method bias
        EWMAs fed back from executed workloads — its routed mix may not
        regress past the monolithic baseline on either filter node
        accesses or total observed I/O.
        """
        workload = _clustered_workload()
        specs = [RangeSpec(rect=q.rect, threshold=q.threshold) for q in workload]

        def fresh_db() -> Database:
            mono = UTree(2, estimator=_estimator())
            for obj in objects:
                mono.insert(obj)
            sharded = ShardedAccessMethod.build(
                objects, shards=SHARDS, partitioner="str", estimator=_estimator()
            )
            return Database.from_methods(
                {"utree": mono, "utree-sharded": sharded},
                ExecConfig(mc_samples=N_SAMPLES, batched=False),
            )

        def io_total(run) -> int:
            return sum(
                r.stats.node_accesses + r.stats.data_page_reads
                for r in run.results
            )

        def filter_total(run) -> int:
            return sum(r.stats.node_accesses for r in run.results)

        mono_run = fresh_db().run(specs, method="utree")
        shard_run = fresh_db().run(specs, method="utree-sharded")
        # The motivating regression, pinned so it stays visible: all-sharded
        # execution reads more filter pages than the monolithic tree.
        assert filter_total(shard_run) > filter_total(mono_run)

        db = fresh_db()
        first = db.run(specs)  # calibrates the per-method bias EWMAs
        second = db.run(specs)  # plans with the learnt biases
        for reference, run in ((mono_run, first), (mono_run, second)):
            for expected, result in zip(reference.results, run.results):
                assert sorted(expected.object_ids) == sorted(result.object_ids)

        # Both cost models flatter themselves on this workload; the run
        # observed that and the biases moved off their neutral 1.0.
        assert db.planner.bias("utree") != 1.0
        assert db.planner.bias("utree-sharded") != 1.0

        # The guard: calibrated routing must not regress past the
        # monolithic baseline — and the mixed plan actually beats it.
        assert filter_total(second) <= filter_total(mono_run)
        assert io_total(second) <= io_total(mono_run)
        routed_to = {r.method for r in second.results}
        assert "utree" in routed_to  # the regression is no longer pinned
