"""Bench for the self-tuning runtime: ARC pool + workload-aware tuner.

Two acceptance contracts:

* **ARC >= 2Q** on the mixed scan+point page trace the adaptive policy
  exists for: a hot point-query working set that re-references pages in
  quick pairs, interleaved with repeated mid-size scans and a cold
  one-touch stream that floods the main LRU.  2Q's bounded probation
  FIFO forgets the scan between rounds and the cold stream churns its
  main list; ARC's ghost lists remember both and adapt the
  recency/frequency split.  The trace is deterministic, so this
  assertion is always armed.

* **Auto-tuned within 10% of the best static configuration**: a static
  grid over (method variant x parallelism x filter kernel) is swept with
  per-batch ``Database.run`` overrides, then a fresh database under
  ``auto_tune=True`` runs the same workload until the tuner converges —
  its steady-state throughput must land within 10% of the best static
  cell, with ``explain()`` reporting the chosen knobs.  Wall-clock, so
  skippable via ``REPRO_SKIP_PERF_ASSERT``; the bit-identical-answers
  assertions across every cell stay armed.

Headline numbers go to ``BENCH_autotune.json`` (path overridable via
``REPRO_AUTOTUNE_ARTIFACT``) for the CI perf-smoke job.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.env import env_flag, env_int, env_value
from repro.geometry.rect import Rect
from repro.storage.bufferpool import POOL_POLICIES, BufferPool
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 1200)
SEED = 31
N_OBJECTS = 120
N_QUERIES = 48
ARTIFACT = env_value("REPRO_AUTOTUNE_ARTIFACT", "BENCH_autotune.json")
SKIP_PERF = env_flag("REPRO_SKIP_PERF_ASSERT")

# The pool-policy trace regime (empirically the 2Q worst case): capacity
# 12 frames, an 8-page scan repeated every round, hot point pages
# touched in pairs, and a short one-touch cold stream.  The cold stream
# must stay shorter than ARC's effective B1 depth (capacity minus the
# scan footprint) or it flushes the scan ghosts before the next round
# can re-reference them — 4 pages keeps the ghost lists live while
# still churning 2Q's probation FIFO every round.
POOL_CAPACITY = 12
SCAN_PAGES = list(range(100, 108))
HOT_PAGES = list(range(200, 204))
COLD_PAGES_PER_ROUND = 4
TRACE_ROUNDS = 30


def _policy_trace(policy: str) -> dict:
    """One policy's hit accounting over the shared deterministic trace."""
    pool = BufferPool(POOL_CAPACITY, policy=policy)
    fid = pool.register_file()
    cold = 1000
    for _ in range(TRACE_ROUNDS):
        for page in SCAN_PAGES:  # the repeated scan
            pool.access(fid, page, sequential=True)
        for page in HOT_PAGES:  # hot points, re-referenced immediately
            pool.access(fid, page)
            pool.access(fid, page)
        for _ in range(COLD_PAGES_PER_ROUND):  # one-touch cold flood
            pool.access(fid, cold)
            cold += 1
    return {
        "policy": policy,
        "hits": pool.hits,
        "misses": pool.misses,
        "ghost_hits": pool.ghost_hits,
        "hit_rate": pool.hit_rate,
        "target_recency": pool.target_recency,
    }


def test_arc_beats_2q_on_mixed_scan_point_trace():
    results = {policy: _policy_trace(policy) for policy in POOL_POLICIES}
    arc, two_q = results["arc"], results["2q"]
    # Deterministic trace: always armed.
    assert arc["hit_rate"] >= two_q["hit_rate"], (
        f"ARC hit rate {arc['hit_rate']:.3f} fell below "
        f"2Q's {two_q['hit_rate']:.3f} on the mixed trace"
    )
    assert arc["ghost_hits"] > 0, "the regime never exercised the ghost lists"


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(47)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(
            i, UniformDensity(BallRegion(centres[i], 220.0), marginal_seed=i)
        )
        for i in range(N_OBJECTS)
    ]


def _specs() -> list[RangeSpec]:
    rng = np.random.default_rng(53)
    return [
        RangeSpec(
            Rect.from_center(
                rng.uniform(1500, 8500, 2), float(rng.uniform(500, 1600))
            ),
            0.5,
        )
        for _ in range(N_QUERIES)
    ]


def _config(**overrides) -> ExecConfig:
    base = dict(
        shards=2,
        parallelism=2,
        filter_kernel="on",
        pool_capacity=64,
        pool_policy="arc",
        mc_samples=N_SAMPLES,
        seed=SEED,
    )
    base.update(overrides)
    return ExecConfig(**base)


def _build_db(**config_overrides) -> Database:
    return Database.create(
        _objects(),
        _config(**config_overrides),
        methods=("utree@mono", "utree@sharded"),
    )


def _measure(db: Database, specs, repeats: int = 3, **overrides):
    """Median-of-N qps for one knob assignment, plus its (sorted) answers.

    Median, not best-of: walls here are tens of milliseconds, so a
    single scheduler hiccup (or a lucky cache-warm run) would otherwise
    swing a cell by more than the 10% contract being tested.  The first
    repeat absorbs executor/memo warm-up and the median discards it.
    """
    walls, answers = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        out = db.run(specs, **overrides)
        walls.append(time.perf_counter() - start)
        answers = [sorted(r.object_ids) for r in out.results]
    qps = len(specs) / max(float(np.median(walls)), 1e-9)
    return qps, answers


def test_auto_tuner_matches_best_static_config():
    specs = _specs()

    # Static grid: every (method, parallelism, kernel) cell via per-batch
    # overrides on one database (each cell keeps its own executor+memo,
    # so repeats measure warm steady state, like the tuner's).
    static_db = _build_db()
    grid = []
    baseline_answers = None
    for method in static_db.method_names:
        for parallelism in (1, 2):
            for kernel in (True, False):
                qps, answers = _measure(
                    static_db,
                    specs,
                    method=method,
                    parallelism=parallelism,
                    filter_kernel=kernel,
                )
                if baseline_answers is None:
                    baseline_answers = answers
                # Always armed: every static cell answers identically.
                assert answers == baseline_answers, (
                    f"answers drifted under method={method} "
                    f"parallelism={parallelism} kernel={kernel}"
                )
                grid.append(
                    {
                        "method": method,
                        "parallelism": parallelism,
                        "filter_kernel": kernel,
                        "qps": qps,
                    }
                )
    static_db.close()
    best_static = max(grid, key=lambda cell: cell["qps"])

    # The tuned run: a fresh database drives every batch through the
    # tuner until it converges, then steady state is measured.
    tuned_db = _build_db(auto_tune=True)
    convergence_batches = None
    for batch in range(60):
        out = tuned_db.run(specs)
        answers = [sorted(r.object_ids) for r in out.results]
        assert answers == baseline_answers, "tuned answers drifted"
        if tuned_db.tuner.converged:
            convergence_batches = batch + 1
            break
    assert tuned_db.tuner.converged, "tuner failed to converge in 60 batches"

    # Steady-state contract, measured *interleaved*: the static grid ran
    # minutes of wall-clock before this point, so comparing against its
    # numbers would fold machine drift into the tuner's scorecard.  The
    # grid picks the best cell; its throughput is then re-measured via
    # explicit overrides on the tuned database, alternating run-for-run
    # with the tuned path, so both sides see the same machine state.
    best_overrides = {
        "method": best_static["method"],
        "parallelism": best_static["parallelism"],
        "filter_kernel": best_static["filter_kernel"],
    }
    _measure(tuned_db, specs, repeats=1, **best_overrides)  # warm the cell
    tuned_walls, static_walls = [], []
    for _ in range(5):
        start = time.perf_counter()
        out = tuned_db.run(specs)
        tuned_walls.append(time.perf_counter() - start)
        answers = [sorted(r.object_ids) for r in out.results]
        assert answers == baseline_answers
        start = time.perf_counter()
        tuned_db.run(specs, **best_overrides)
        static_walls.append(time.perf_counter() - start)
    tuned_qps = len(specs) / max(float(np.median(tuned_walls)), 1e-9)
    best_static_qps = len(specs) / max(float(np.median(static_walls)), 1e-9)

    explanation = tuned_db.explain(specs[0])
    assert explanation.tuner is not None and explanation.tuner["converged"]
    chosen = explanation.tuner["incumbent"]
    tuned_db.close()

    # The trace is deterministic and sub-second: re-run it here rather
    # than smuggling state between tests.
    pool_results = {policy: _policy_trace(policy) for policy in POOL_POLICIES}
    payload = {
        "samples": N_SAMPLES,
        "objects": N_OBJECTS,
        "queries": N_QUERIES,
        "static_grid": grid,
        "best_static": best_static,
        "best_static_qps_interleaved": best_static_qps,
        "tuned_qps": tuned_qps,
        "tuned_over_best_static": tuned_qps / best_static_qps,
        "convergence_batches": convergence_batches,
        "chosen_knobs": chosen,
        "pool_policies": pool_results,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2)

    if SKIP_PERF:
        pytest.skip(
            f"perf assert skipped: tuned {tuned_qps:.0f} qps vs best static "
            f"{best_static_qps:.0f} qps ({best_static})"
        )
    assert tuned_qps >= 0.9 * best_static_qps, (
        f"auto-tuned throughput {tuned_qps:.0f} qps fell more than 10% below "
        f"the best static configuration {best_static_qps:.0f} qps "
        f"({best_static}); tuner chose {chosen}"
    )
