"""Ablation: linear (chord) versus exact intermediate bounds in the U-tree.

The paper stores only MBR⊥/MBR per intermediate entry and derives e.MBR(p)
linearly (Eq. 15) — conservative but looser than the exact per-catalog
union.  This bench quantifies the pruning cost of that choice at equal
entry size: the exact variant should never access more nodes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.experiments.data import build_utree
from repro.experiments.harness import run_workload


@pytest.mark.parametrize("bounds", ["linear", "exact"])
def test_ablation_intermediate_bounds(benchmark, scale, lb_points, bounds):
    tree = build_utree("LB", scale, intermediate_bounds=bounds)
    workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["bounds"] = bounds
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses


def test_ablation_exact_bounds_not_worse(scale, lb_points):
    """Exact unions are tighter: they can only reduce node accesses."""
    workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6, seed=611)
    linear = build_utree("LB", scale, intermediate_bounds="linear")
    exact = build_utree("LB", scale, intermediate_bounds="exact")
    io_linear = run_workload(linear, workload).avg_node_accesses
    io_exact = run_workload(exact, workload).avg_node_accesses
    # Tree shapes may differ slightly (summaries feed the insertion
    # heuristics), so allow a small tolerance on the comparison.
    assert io_exact <= io_linear * 1.15
