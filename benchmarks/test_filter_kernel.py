"""Benches for the vectorized filter-phase kernel.

The acceptance contract of the filter kernel, on the clustered workload
(queries concentrated over a uniformly spread object field — the same
shape the shard bench uses):

* kernel filter-phase throughput is **at least 3x** the scalar rule
  engines on the flat ``SequentialScan``, where the filter phase is pure
  rule evaluation over every summary (no traversal noise) and the win is
  the headline: one stacked Rules-1-5 call per query versus one scalar
  ``PCRRules``/``CFBRules`` pass per object;
* kernel verdicts are **bit-identical** (``==``) to the scalar engines —
  whole ``FilterResult``s compare equal per query, including node-access
  counts (the kernel never changes traversal, only leaf classification).

U-tree filter timings over the same workload are *recorded* in the
artifact for context: tree traversal already prunes most leaves, so its
kernel win is smaller — the artifact shows both so the trade is visible.

Headline numbers land in ``BENCH_filter.json`` (path overridable via
``REPRO_FILTER_ARTIFACT``) for the CI perf-smoke job.  The wall-clock
contract is skipped under ``REPRO_SKIP_PERF_ASSERT`` (the correctness
matrix runs on noisy shared runners); verdict identity stays armed
everywhere.
"""

from __future__ import annotations

import json
from repro.env import env_value
import time

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_OBJECTS = 600
N_QUERIES = 60
SEED = 23
ARTIFACT = env_value("REPRO_FILTER_ARTIFACT", "BENCH_filter.json")


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(47)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(i, UniformDensity(BallRegion(centres[i], 220.0), marginal_seed=i))
        for i in range(N_OBJECTS)
    ]


def _clustered_workload() -> list[ProbRangeQuery]:
    """Queries packed into one corner region, thresholds spanning the rules."""
    rng = np.random.default_rng(59)
    thresholds = (0.1, 0.3, 0.5, 0.6, 0.8, 0.95)
    return [
        ProbRangeQuery(
            Rect.from_center(rng.uniform(1500, 3500, 2), float(rng.uniform(300, 900))),
            thresholds[i % len(thresholds)],
        )
        for i in range(N_QUERIES)
    ]


def _filter_only_seconds(method, workload) -> tuple[float, list]:
    """Wall-clock of the filter phase alone, plus its results."""
    results = []
    start = time.perf_counter()
    for query in workload:
        results.append(method.filter_candidates(query))
    return time.perf_counter() - start, results


def _assert_results_equal(kernel_results, scalar_results):
    for a, b in zip(kernel_results, scalar_results):
        assert a.validated == b.validated
        assert a.candidates == b.candidates
        assert a.pruned == b.pruned
        assert a.node_accesses == b.node_accesses


@pytest.fixture(scope="module")
def objects():
    return _objects()


class TestFilterKernelAcceptance:
    def test_3x_filter_throughput_and_bit_identity(self, objects):
        workload = _clustered_workload()
        estimator = AppearanceEstimator(n_samples=500, seed=SEED)

        scans = {}
        for mode in ("on", "off"):
            scan = SequentialScan(2, estimator=estimator, filter_kernel=mode)
            for obj in objects:
                scan.insert(obj)
            scans[mode] = scan
        # Warm-up (amortise any lazy allocation), then the timed passes.
        scans["on"].filter_candidates(workload[0])
        scans["off"].filter_candidates(workload[0])
        kernel_seconds, kernel_results = _filter_only_seconds(scans["on"], workload)
        scalar_seconds, scalar_results = _filter_only_seconds(scans["off"], workload)

        # Bit-identical verdicts, query by query, in order.
        _assert_results_equal(kernel_results, scalar_results)

        # The recorded comparison: the same workload through U-trees.
        trees = {}
        for mode in ("on", "off"):
            tree = UTree(2, estimator=estimator, filter_kernel=mode)
            for obj in objects:
                tree.insert(obj)
            trees[mode] = tree
        tree_kernel_seconds, tree_kernel_results = _filter_only_seconds(
            trees["on"], workload
        )
        tree_scalar_seconds, tree_scalar_results = _filter_only_seconds(
            trees["off"], workload
        )
        _assert_results_equal(tree_kernel_results, tree_scalar_results)

        speedup = scalar_seconds / max(kernel_seconds, 1e-12)
        verdicts = sum(
            len(r.validated) + len(r.candidates) + r.pruned for r in scalar_results
        )
        with open(ARTIFACT, "w") as fh:
            json.dump(
                {
                    "objects": N_OBJECTS,
                    "queries": N_QUERIES,
                    "verdicts": verdicts,
                    "scan_filter_seconds_scalar": scalar_seconds,
                    "scan_filter_seconds_kernel": kernel_seconds,
                    "scan_filter_speedup": speedup,
                    "scan_verdicts_per_second_scalar": verdicts
                    / max(scalar_seconds, 1e-12),
                    "scan_verdicts_per_second_kernel": verdicts
                    / max(kernel_seconds, 1e-12),
                    "utree_filter_seconds_scalar": tree_scalar_seconds,
                    "utree_filter_seconds_kernel": tree_kernel_seconds,
                    "utree_filter_speedup": tree_scalar_seconds
                    / max(tree_kernel_seconds, 1e-12),
                },
                fh,
                indent=2,
            )

        # Wall-clock is hostage to runner load; the fail-fast correctness
        # matrix sets REPRO_SKIP_PERF_ASSERT so a noisy neighbour cannot
        # fail a correctness build — the perf-smoke job (and local runs)
        # keep the 3x contract armed.
        if not env_value("REPRO_SKIP_PERF_ASSERT"):
            assert speedup >= 3.0, (
                f"filter-kernel speedup {speedup:.2f}x below the 3x contract "
                f"({scalar_seconds:.3f}s vs {kernel_seconds:.3f}s)"
            )

    def test_warm_kernel_filter_throughput(self, benchmark, objects):
        workload = _clustered_workload()
        scan = SequentialScan(
            2, estimator=AppearanceEstimator(n_samples=500, seed=SEED),
            filter_kernel="on",
        )
        for obj in objects:
            scan.insert(obj)

        def run_filters():
            return [scan.filter_candidates(q) for q in workload]

        results = benchmark(run_filters)
        assert len(results) == len(workload)
        benchmark.extra_info["objects"] = N_OBJECTS
        benchmark.extra_info["queries"] = N_QUERIES
