"""Shared fixtures for the benchmark suite.

Benchmarks run at BENCH_SCALE (see DESIGN.md §5): the same code paths as
the paper-scale experiments, sized so the whole suite finishes in minutes.
Trees are built once per session and shared; pytest-benchmark then times
the query/update work itself.
"""

from __future__ import annotations

import pytest

from repro.datasets.workload import make_workload
from repro.experiments.config import BENCH_SCALE
from repro.experiments.data import build_upcr, build_utree, dataset_objects, dataset_points


@pytest.fixture(scope="session")
def scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def lb_points(scale):
    return dataset_points("LB", scale)


@pytest.fixture(scope="session")
def lb_objects(scale):
    return dataset_objects("LB", scale)


@pytest.fixture(scope="session")
def aircraft_points(scale):
    return dataset_points("Aircraft", scale)


@pytest.fixture(scope="session")
def lb_utree(scale):
    return build_utree("LB", scale)


@pytest.fixture(scope="session")
def lb_upcr(scale):
    return build_upcr("LB", scale)


@pytest.fixture(scope="session")
def aircraft_utree(scale):
    return build_utree("Aircraft", scale)


@pytest.fixture(scope="session")
def aircraft_upcr(scale):
    return build_upcr("Aircraft", scale)


def workload_for(points, scale, qs: float, pq: float, seed: int = 77):
    """A bench workload over the given dataset points."""
    return make_workload(points, scale.queries_per_workload, qs, pq, seed=seed)
