"""Ablation: median-catalog-value split versus all-layer split.

Section 5.3 sorts split candidates only at the median catalog value to
avoid one sort per value.  This bench measures what the expensive variant
buys: build time goes up, query I/O changes little — supporting the
paper's heuristic.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.core.utree import UTree
from repro.experiments.data import build_utree, dataset_objects
from repro.experiments.harness import run_workload


@pytest.mark.parametrize("split_mode", ["median-layer", "all-layers"])
def test_ablation_split_build(benchmark, scale, split_mode):
    objects = dataset_objects("LB", scale)[:200]

    def build():
        tree = UTree(2, split_mode=split_mode)
        for obj in objects:
            tree.insert(obj)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["split_mode"] = split_mode
    benchmark.extra_info["height"] = tree.height
    assert len(tree) == len(objects)


@pytest.mark.parametrize("split_mode", ["median-layer", "all-layers"])
def test_ablation_split_query(benchmark, scale, lb_points, split_mode):
    tree = build_utree("LB", scale, split_mode=split_mode)
    workload = workload_for(lb_points, scale, qs=1000.0, pq=0.6)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses
