"""Bench for Table 1: index size, U-PCR versus U-tree.

Times index construction and asserts the paper's headline: the U-tree is
a small multiple smaller than U-PCR on every dataset, because its entries
store two CFBs instead of m PCRs.
"""

from __future__ import annotations

import pytest

from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.experiments.data import build_upcr, build_utree, dataset_objects


@pytest.mark.parametrize("dataset", ["LB", "Aircraft"])
def test_table1_size_ratio(benchmark, scale, dataset):
    """U-PCR is consistently larger; record the byte sizes (Table 1)."""
    upcr = build_upcr(dataset, scale)
    utree = build_utree(dataset, scale)

    def measure():
        return upcr.size_bytes, utree.size_bytes

    upcr_bytes, utree_bytes = benchmark(measure)
    benchmark.extra_info["upcr_bytes"] = upcr_bytes
    benchmark.extra_info["utree_bytes"] = utree_bytes
    benchmark.extra_info["ratio"] = upcr_bytes / utree_bytes
    # Paper ratios are 2.4-2.8x; the layout argument guarantees > 1.5x at
    # any scale.
    assert upcr_bytes / utree_bytes > 1.5


def test_table1_build_cost(benchmark, scale):
    """Time building both structures over a slice of LB."""
    objects = dataset_objects("LB", scale)[:150]

    def build():
        utree = UTree(2)
        upcr = UPCRTree(2)
        for obj in objects:
            utree.insert(obj)
            upcr.insert(obj)
        return utree.size_bytes, upcr.size_bytes

    utree_bytes, upcr_bytes = benchmark(build)
    assert utree_bytes < upcr_bytes
