"""Bench for the process execution backend: cores must buy throughput.

The acceptance contract of :mod:`repro.exec.mpexec` on an I/O-bound
batch (simulated per-page latency, the regime the backend exists for):

* four forked workers sustain **at least twice** the queries/second of
  one worker over the same structure — page-granular refinement
  ownership means each worker sleeps only for the pages it owns, so the
  per-page latencies overlap instead of serialising.  The contract
  holds even on a single-core runner because the latency is simulated
  (``time.sleep`` releases the GIL and the OS scheduler interleaves the
  workers' sleep windows);
* answers stay bit-identical to the serial thread executor at every
  worker count (the exactness matrix in ``tests/test_multicore.py``
  pins the counters too; re-checked here on the benchmark workload).

Headline numbers go to ``BENCH_multicore.json`` (path overridable via
``REPRO_MULTICORE_ARTIFACT``) for the CI perf-smoke job.  The wall-clock
scaling assertion is skippable via ``REPRO_SKIP_PERF_ASSERT`` for
congested CI runners; the bit-identity assertions are always armed.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.env import env_flag, env_int, env_value
from repro.exec import BatchExecutor, ProcessBatchExecutor
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 1500)
SEED = 19
N_OBJECTS = 240
N_QUERIES = 24
PAGE_SIZE = 512  # many small pages -> fine-grained worker ownership
IO_LATENCY_SECONDS = 0.006
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2
ARTIFACT = env_value("REPRO_MULTICORE_ARTIFACT", "BENCH_multicore.json")
SKIP_PERF = env_flag("REPRO_SKIP_PERF_ASSERT")


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(41)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(
            i, UniformDensity(BallRegion(centres[i], 250.0), marginal_seed=i)
        )
        for i in range(N_OBJECTS)
    ]


def _workload() -> list[ProbRangeQuery]:
    rng = np.random.default_rng(43)
    return [
        ProbRangeQuery(
            Rect.from_center(
                rng.uniform(1500, 8500, 2), float(rng.uniform(600, 1800))
            ),
            0.5,
        )
        for _ in range(N_QUERIES)
    ]


def _build() -> UTree:
    """A fresh tree per executor: same seeds, bit-identical structure."""
    tree = UTree(
        2,
        page_size=PAGE_SIZE,
        estimator=AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED),
        filter_kernel="on",
    )
    for obj in _objects():
        tree.insert(obj)
    return tree


def _timed_qps(executor, workload) -> float:
    """Best-of-REPEATS throughput after one warm-up run."""
    executor.run(workload)  # fork the pool, warm per-worker sample clouds
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        executor.run(workload)
        best = min(best, time.perf_counter() - start)
    return len(workload) / max(best, 1e-12)


class TestMulticoreAcceptance:
    def test_process_workers_scale_io_bound_throughput(self):
        workload = _workload()
        expected = [
            a.object_ids
            for a in BatchExecutor(_build(), memoize=False).run(workload).answers
        ]

        qps: dict[int, float] = {}
        layouts: dict[int, int] = {}
        for workers in WORKER_COUNTS:
            with ProcessBatchExecutor(
                _build(),
                workers=workers,
                memoize=False,  # keep every run cold: pure fetch + refine
                share_samples=True,  # clouds drawn once, mapped into workers
                io_latency_seconds=IO_LATENCY_SECONDS,
            ) as executor:
                result = executor.run(workload)
                assert [a.object_ids for a in result.answers] == expected
                assert result.batch.executor == "process"
                qps[workers] = _timed_qps(executor, workload)
                layouts[workers] = executor.workers

        speedup = qps[4] / max(qps[1], 1e-12)
        with open(ARTIFACT, "w") as fh:
            json.dump(
                {
                    "n_samples": N_SAMPLES,
                    "objects": N_OBJECTS,
                    "queries": N_QUERIES,
                    "page_size": PAGE_SIZE,
                    "io_latency_seconds": IO_LATENCY_SECONDS,
                    "repeats": REPEATS,
                    "queries_per_second": {
                        str(w): qps[w] for w in WORKER_COUNTS
                    },
                    "speedup_4_over_1": speedup,
                    "perf_assert_armed": not SKIP_PERF,
                },
                fh,
                indent=2,
            )

        if SKIP_PERF:
            pytest.skip(
                f"REPRO_SKIP_PERF_ASSERT set; measured 4/1 speedup {speedup:.2f}x"
            )
        assert speedup >= 2.0, (
            f"4 process workers gave {speedup:.2f}x over 1 "
            f"(qps: { {w: round(q, 1) for w, q in qps.items()} })"
        )
