"""Bench for Figure 11: U-tree update overhead.

Times insertions (PCR + simplex CPU plus tree I/O) and deletions, and
asserts the paper's breakdown shape: deletion carries no per-object CFB
computation, so its CPU share is negligible compared to insertion's.
"""

from __future__ import annotations

import numpy as np

from repro.core.utree import UTree
from repro.experiments.data import dataset_objects


def test_fig11_insertions(benchmark, scale):
    objects = dataset_objects("LB", scale)

    def build():
        tree = UTree(2)
        total_io = 0
        total_cpu = 0.0
        for obj in objects:
            cost = tree.insert(obj)
            total_io += cost.io_total
            total_cpu += cost.cpu_seconds
        return tree, total_io / len(objects), total_cpu / len(objects)

    tree, avg_io, avg_cpu = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["insert_avg_io"] = avg_io
    benchmark.extra_info["insert_avg_cpu_seconds"] = avg_cpu
    assert len(tree) == len(objects)


def test_fig11_deletions(benchmark, scale):
    objects = dataset_objects("LB", scale)

    def build_then_delete():
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        rng = np.random.default_rng(9)
        total_io = 0
        for idx in rng.permutation(len(objects)):
            cost = tree.delete(objects[idx].oid)
            assert cost is not None
            total_io += cost.io_total
        return total_io / len(objects)

    avg_io = benchmark.pedantic(build_then_delete, rounds=1, iterations=1)
    benchmark.extra_info["delete_avg_io"] = avg_io
    assert avg_io > 0
