"""Bench for the storage engine: incremental snapshots and WAL overhead.

The acceptance contract of the durable storage mode:

* an incremental save after touching 1 of N shards rewrites exactly
  that shard's archive member and beats a from-scratch full save on
  wall clock (the whole point of dirty-epoch tracking);
* WAL logging adds a bounded, measured per-insert overhead (one
  fsync'd append) and the answers never change.

Headline numbers go to ``BENCH_storage.json`` (path overridable via
``REPRO_STORAGE_ARTIFACT``) for the CI perf-smoke job.  Wall-clock
assertions are skippable via ``REPRO_SKIP_PERF_ASSERT`` for congested
CI runners; the members-rewritten and answer-identity assertions are
always armed.
"""

from __future__ import annotations

import json
import shutil
import time

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.env import env_flag, env_int, env_value
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 600)
SEED = 23
N_OBJECTS = 160
SHARDS = 8
WAL_INSERTS = 40
ARTIFACT = env_value("REPRO_STORAGE_ARTIFACT", "BENCH_storage.json")
SKIP_PERF = env_flag("REPRO_SKIP_PERF_ASSERT")


def _objects(n: int = N_OBJECTS, base: int = 0) -> list[UncertainObject]:
    rng = np.random.default_rng(47 + base)
    centres = rng.uniform(500, 9500, (n, 2))
    return [
        UncertainObject(
            base + i,
            UniformDensity(BallRegion(centres[i], 200.0), marginal_seed=base + i),
        )
        for i in range(n)
    ]


def _config(**overrides) -> ExecConfig:
    fields = dict(wal=True, shards=SHARDS, mc_samples=N_SAMPLES, seed=SEED)
    fields.update(overrides)
    return ExecConfig(**fields)


def _spec() -> RangeSpec:
    return RangeSpec(Rect([2000.0, 2000.0], [8000.0, 8000.0]), 0.4)


class TestStorageBench:
    def test_incremental_save_and_wal_overhead(self, tmp_path):
        results: dict = {
            "objects": N_OBJECTS,
            "shards": SHARDS,
            "mc_samples": N_SAMPLES,
            "perf_assert_armed": not SKIP_PERF,
        }

        # --- incremental vs full save -------------------------------
        db = Database.create(_objects(), _config(), methods=("utree",))
        archive = tmp_path / "db"
        start = time.perf_counter()
        first = db.save(archive)
        full_seconds = time.perf_counter() - start
        assert len(first["written"]) == SHARDS

        db.delete(3)  # touch exactly one shard
        start = time.perf_counter()
        second = db.save(archive)
        incremental_seconds = time.perf_counter() - start
        assert len(second["written"]) == 1, second
        assert len(second["skipped"]) == SHARDS - 1
        results["full_save_seconds"] = full_seconds
        results["incremental_save_seconds"] = incremental_seconds
        results["members_rewritten_after_one_touch"] = len(second["written"])

        # A clean save skips everything (pure manifest + GC cost).
        start = time.perf_counter()
        third = db.save(archive)
        results["noop_save_seconds"] = time.perf_counter() - start
        assert third["written"] == []

        # --- WAL overhead per insert --------------------------------
        extra = _objects(WAL_INSERTS, base=10_000)
        start = time.perf_counter()
        for obj in extra:
            db.insert(obj)
        walled = time.perf_counter() - start
        results["wal_bytes_per_entry"] = db.wal.bytes_logged / max(
            db.wal.entries_logged, 1
        )
        answer_after = db.query(_spec()).sorted_ids()
        db.close()

        plain = Database.create(
            _objects(), _config(wal=False), methods=("utree",)
        )
        start = time.perf_counter()
        for obj in extra:
            plain.insert(obj)
        unwalled = time.perf_counter() - start
        results["insert_seconds_with_wal"] = walled / WAL_INSERTS
        results["insert_seconds_without_wal"] = unwalled / WAL_INSERTS
        results["wal_overhead_seconds_per_insert"] = (
            walled - unwalled
        ) / WAL_INSERTS

        # Durability never changes answers: recover and compare.
        recovered = Database.open(archive)
        assert recovered.query(_spec()).sorted_ids() == answer_after
        assert recovered.last_recovery["wal_entries"] == WAL_INSERTS
        recovered.close()
        plain.close()
        shutil.rmtree(archive)

        with open(ARTIFACT, "w") as fh:
            json.dump(results, fh, indent=2)

        if SKIP_PERF:
            pytest.skip(
                "REPRO_SKIP_PERF_ASSERT set; measured incremental save "
                f"{incremental_seconds * 1000:.1f}ms vs full "
                f"{full_seconds * 1000:.1f}ms"
            )
        assert incremental_seconds < full_seconds, (
            f"incremental save ({incremental_seconds * 1000:.1f}ms) should "
            f"beat a full save ({full_seconds * 1000:.1f}ms)"
        )
