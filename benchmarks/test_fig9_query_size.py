"""Bench for Figure 9: query cost versus search-region size (pq = 0.6).

One benchmark per (structure, qs) cell on the LB and Aircraft panels, plus
shape assertions for the paper's headline comparisons: the U-tree accesses
fewer nodes than U-PCR at every qs, and both grow with qs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.experiments.harness import run_workload

_QS_VALUES = [500.0, 1500.0, 2500.0]


@pytest.mark.parametrize("qs", _QS_VALUES)
@pytest.mark.parametrize("structure", ["utree", "upcr"])
def test_fig9_lb(benchmark, scale, lb_points, lb_utree, lb_upcr, structure, qs):
    tree = lb_utree if structure == "utree" else lb_upcr
    workload = workload_for(lb_points, scale, qs=qs, pq=0.6)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses
    benchmark.extra_info["avg_prob_computations"] = stats.avg_prob_computations
    benchmark.extra_info["validated_pct"] = stats.validated_percentage


@pytest.mark.parametrize("structure", ["utree", "upcr"])
def test_fig9_aircraft(benchmark, scale, aircraft_points, aircraft_utree, aircraft_upcr, structure):
    tree = aircraft_utree if structure == "utree" else aircraft_upcr
    workload = workload_for(aircraft_points, scale, qs=1500.0, pq=0.6)
    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses


def test_fig9_shape_utree_beats_upcr_io(scale, lb_points, lb_utree, lb_upcr):
    """The paper's headline: U-tree I/O < U-PCR I/O at every qs, both rising."""
    utree_io = []
    upcr_io = []
    for i, qs in enumerate(_QS_VALUES):
        workload = workload_for(lb_points, scale, qs=qs, pq=0.6, seed=400 + i)
        utree_io.append(run_workload(lb_utree, workload).avg_node_accesses)
        upcr_io.append(run_workload(lb_upcr, workload).avg_node_accesses)
    for u, p in zip(utree_io, upcr_io):
        assert u < p
    assert utree_io[-1] > utree_io[0]
    assert upcr_io[-1] > upcr_io[0]
