"""Load harness for the query service: clients must buy throughput.

A location-service read trace — every request a prob-range query over a
small pool of hot city rectangles — is replayed against one served
:class:`~repro.api.Database` at several concurrent client counts, with
simulated per-page disk latency (the regime admission-control batching
exists for).  The acceptance contract:

* eight synchronous wire clients sustain **at least twice** the
  queries/second of one client over the same server.  The win is
  cross-client batch forming: requests landing in one
  ``batch_window_ms`` window run as a single engine batch, and the
  batch executor fetches each hot page once for all of them instead of
  once per client (plus ``(address, rect)`` P_app memoisation across
  the batch).  The contract holds on a single-core runner because the
  page latency is simulated (``time.sleep`` overlaps across waiting
  clients);
* answers are not re-checked here — ``tests/test_serve.py`` pins
  bit-identical served answers; this file measures only cost.

Headline numbers (qps, p50/p99 request latency, queue stats) go to
``BENCH_serve.json`` (path overridable via ``REPRO_SERVE_ARTIFACT``)
for the CI serve job.  The throughput assertion is skippable via
``REPRO_SKIP_PERF_ASSERT`` for congested runners.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.env import env_flag, env_int, env_value
from repro.geometry.rect import Rect
from repro.serve import QueryServer, ServeClient
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = env_int("REPRO_BENCH_SAMPLES", 1200)
SEED = 23
N_OBJECTS = 120
N_HOT_RECTS = 10
TOTAL_REQUESTS = 48  # split across the clients of each run
CLIENT_COUNTS = (1, 2, 8)
PAGE_SIZE = 512  # many small pages -> page dedup has something to win
IO_LATENCY_SECONDS = 0.002
BATCH_WINDOW_MS = 12.0
ARTIFACT = env_value("REPRO_SERVE_ARTIFACT", "BENCH_serve.json")
SKIP_PERF = env_flag("REPRO_SKIP_PERF_ASSERT")


def _objects() -> list[UncertainObject]:
    rng = np.random.default_rng(47)
    centres = rng.uniform(500, 9500, (N_OBJECTS, 2))
    return [
        UncertainObject(
            i, UniformDensity(BallRegion(centres[i], 250.0), marginal_seed=i)
        )
        for i in range(N_OBJECTS)
    ]


def _hot_rects() -> list[Rect]:
    """The city's busy districts: every client queries from this pool."""
    rng = np.random.default_rng(53)
    return [
        Rect.from_center(rng.uniform(2000, 8000, 2), float(rng.uniform(900, 1800)))
        for _ in range(N_HOT_RECTS)
    ]


def _trace(n_requests: int) -> list[RangeSpec]:
    """One deterministic request stream over the hot-rectangle pool."""
    rng = np.random.default_rng(59)
    rects = _hot_rects()
    thresholds = (0.3, 0.5, 0.8)
    return [
        RangeSpec(rects[int(rng.integers(len(rects)))],
                  thresholds[int(rng.integers(len(thresholds)))])
        for _ in range(n_requests)
    ]


def _build() -> Database:
    config = ExecConfig(
        mc_samples=N_SAMPLES,
        seed=SEED,
        page_size=PAGE_SIZE,
        io_latency_seconds=IO_LATENCY_SECONDS,
        batch_window_ms=BATCH_WINDOW_MS,
        max_inflight=64,
    )
    return Database.create(_objects(), config, methods=("utree",))


def _replay(address, trace: list[RangeSpec], n_clients: int) -> dict:
    """Replay ``trace`` split across ``n_clients`` synchronous clients."""
    slices = [trace[i::n_clients] for i in range(n_clients)]
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    barrier = threading.Barrier(n_clients + 1)

    def client_loop(i: int) -> None:
        with ServeClient(*address) as client:
            barrier.wait()  # connect first, then start together
            for spec in slices[i]:
                t0 = time.perf_counter()
                client.query(spec)
                latencies[i].append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=client_loop, args=(i,), name=f"load-client-{i}")
        for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start

    flat = sorted(lat for per_client in latencies for lat in per_client)
    return {
        "clients": n_clients,
        "requests": len(flat),
        "wall_seconds": wall,
        "qps": len(flat) / max(wall, 1e-12),
        "p50_ms": 1000.0 * flat[len(flat) // 2],
        "p99_ms": 1000.0 * flat[min(len(flat) - 1, int(len(flat) * 0.99))],
    }


class TestServeLoadAcceptance:
    def test_concurrent_clients_scale_served_throughput(self):
        db = _build()
        trace = _trace(TOTAL_REQUESTS)

        # Warm what all runs share — sample clouds and structure pages —
        # so the first client count is not charged the one-off costs.
        db.run(
            [RangeSpec(rect, 0.5) for rect in _hot_rects()]
        )

        runs: dict[int, dict] = {}
        with QueryServer(db) as server:
            for n_clients in CLIENT_COUNTS:
                # Each run starts with a cold P_app memo so every client
                # count pays the same refinement work.
                db.clear_memos()
                runs[n_clients] = _replay(server.address, trace, n_clients)
            queue_stats = server.queue.stats()

        speedup = runs[8]["qps"] / max(runs[1]["qps"], 1e-12)
        with open(ARTIFACT, "w") as fh:
            json.dump(
                {
                    "n_samples": N_SAMPLES,
                    "objects": N_OBJECTS,
                    "hot_rects": N_HOT_RECTS,
                    "total_requests": TOTAL_REQUESTS,
                    "page_size": PAGE_SIZE,
                    "io_latency_seconds": IO_LATENCY_SECONDS,
                    "batch_window_ms": BATCH_WINDOW_MS,
                    "runs": {str(n): runs[n] for n in CLIENT_COUNTS},
                    "speedup_8_over_1": speedup,
                    "queue": queue_stats,
                    "perf_assert_armed": not SKIP_PERF,
                },
                fh,
                indent=2,
            )

        # The batching machinery must actually have engaged at 8 clients.
        assert queue_stats["cross_client_batches"] >= 1
        assert queue_stats["largest_batch_requests"] >= 2

        if SKIP_PERF:
            pytest.skip(
                f"REPRO_SKIP_PERF_ASSERT set; measured 8/1 speedup {speedup:.2f}x"
            )
        assert speedup >= 2.0, (
            f"8 clients gave {speedup:.2f}x the throughput of 1 "
            f"(qps: { {n: round(r['qps'], 1) for n, r in runs.items()} })"
        )
