"""Bench for Figure 8: U-PCR query cost versus catalog size m.

Times a qs = 500 workload against U-PCR trees built with different catalog
sizes.  The paper's U-shape comes from CPU falling and I/O rising with m;
we assert the I/O side of that trade (larger catalogs => larger entries =>
more node accesses).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_for
from repro.core.catalog import UCatalog
from repro.experiments.data import build_upcr
from repro.experiments.harness import run_workload


@pytest.mark.parametrize("m", [3, 9, 12])
def test_fig8_upcr_catalog_size(benchmark, scale, lb_points, m):
    tree = build_upcr("LB", scale, catalog=UCatalog.evenly_spaced(m))
    workload = workload_for(lb_points, scale, qs=500.0, pq=0.6)

    stats = benchmark(run_workload, tree, workload)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["avg_node_accesses"] = stats.avg_node_accesses
    benchmark.extra_info["avg_prob_computations"] = stats.avg_prob_computations
    benchmark.extra_info["index_bytes"] = tree.size_bytes


def test_fig8_io_grows_with_catalog(scale, lb_points):
    """The I/O half of the U-shape: node accesses rise with m."""
    workload = workload_for(lb_points, scale, qs=500.0, pq=0.6)
    small = build_upcr("LB", scale, catalog=UCatalog.evenly_spaced(3))
    large = build_upcr("LB", scale, catalog=UCatalog.evenly_spaced(12))
    io_small = run_workload(small, workload).avg_node_accesses
    io_large = run_workload(large, workload).avg_node_accesses
    assert large.size_bytes > small.size_bytes
    assert io_large >= io_small
