"""Tests for the per-axis marginal CDF/quantile machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty.marginals import (
    FunctionMarginals,
    GridMarginals,
    SampleMarginals,
)


class TestFunctionMarginals:
    def _linear(self):
        return FunctionMarginals(
            cdfs=[lambda x: x, lambda x: x / 2.0],
            quantiles=[lambda p: p, lambda p: 2.0 * p],
        )

    def test_round_trip(self):
        m = self._linear()
        assert m.cdf(0, 0.25) == pytest.approx(0.25)
        assert m.quantile(1, 0.25) == pytest.approx(0.5)

    def test_cdf_clipped(self):
        m = self._linear()
        assert m.cdf(0, 5.0) == 1.0
        assert m.cdf(0, -5.0) == 0.0

    def test_bad_inputs(self):
        m = self._linear()
        with pytest.raises(IndexError):
            m.cdf(2, 0.5)
        with pytest.raises(ValueError):
            m.quantile(0, 1.5)
        with pytest.raises(ValueError):
            FunctionMarginals([], [])


class TestGridMarginals:
    def test_uniform_profile(self):
        grid = np.linspace(0.0, 10.0, 101)
        m = GridMarginals([grid], [np.ones_like(grid)])
        assert m.cdf(0, 5.0) == pytest.approx(0.5)
        assert m.quantile(0, 0.25) == pytest.approx(2.5)

    def test_triangular_profile(self):
        grid = np.linspace(0.0, 1.0, 2001)
        m = GridMarginals([grid], [grid])  # density f(x) = 2x -> cdf x^2
        assert m.cdf(0, 0.5) == pytest.approx(0.25, abs=1e-3)
        assert m.quantile(0, 0.25) == pytest.approx(0.5, abs=1e-3)

    def test_zero_density_stretch(self):
        """Flat CDF runs must not break quantile inversion."""
        grid = np.linspace(0.0, 3.0, 301)
        profile = np.where((grid < 1.0) | (grid > 2.0), 1.0, 0.0)
        m = GridMarginals([grid], [profile])
        # Half the mass is below 1.0.
        assert m.quantile(0, 0.5) <= 1.01
        assert m.cdf(0, 1.5) == pytest.approx(0.5, abs=1e-2)

    def test_validation(self):
        grid = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            GridMarginals([grid], [np.full(11, -1.0)])
        with pytest.raises(ValueError):
            GridMarginals([grid], [np.zeros(11)])
        with pytest.raises(ValueError):
            GridMarginals([grid[::-1]], [np.ones(11)])
        with pytest.raises(ValueError):
            GridMarginals([], [])

    def test_from_cdf_exact(self):
        grid = np.array([0.0, 1.0, 3.0])
        cdf = np.array([0.0, 0.75, 1.0])
        m = GridMarginals.from_cdf([grid], [cdf])
        assert m.cdf(0, 1.0) == pytest.approx(0.75)
        assert m.quantile(0, 0.375) == pytest.approx(0.5)
        assert m.quantile(0, 1.0) == pytest.approx(3.0)

    def test_from_cdf_validation(self):
        grid = np.array([0.0, 1.0])
        with pytest.raises(ValueError):
            GridMarginals.from_cdf([grid], [np.array([0.0, 0.5])])
        with pytest.raises(ValueError):
            GridMarginals.from_cdf([grid], [np.array([0.5, 0.0])])


class TestSampleMarginals:
    def test_weighted_quantiles(self):
        points = np.array([[0.0], [1.0], [2.0], [3.0]])
        weights = np.array([1.0, 1.0, 1.0, 1.0])
        m = SampleMarginals(points, weights)
        assert m.quantile(0, 0.5) in (1.0, 2.0)
        assert m.cdf(0, 1.5) == pytest.approx(0.5)

    def test_unequal_weights(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([9.0, 1.0])
        m = SampleMarginals(points, weights)
        assert m.quantile(0, 0.5) == 0.0
        assert m.quantile(0, 0.95) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleMarginals(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            SampleMarginals(np.zeros((3, 2)), np.zeros(3))  # all-zero weights
        with pytest.raises(ValueError):
            SampleMarginals(np.zeros((3, 2)), np.array([1.0, -1.0, 1.0]))

    def test_converges_to_true_marginal(self):
        """Uniform samples with uniform weights approximate the uniform CDF."""
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 1, size=(20_000, 2))
        m = SampleMarginals(points, np.ones(20_000))
        for p in (0.1, 0.5, 0.9):
            assert m.quantile(0, p) == pytest.approx(p, abs=0.02)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_quantile_monotone(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(200, 2))
        weights = rng.uniform(0.1, 1.0, 200)
        m = SampleMarginals(points, weights)
        ps = np.linspace(0, 1, 21)
        for axis in range(2):
            qs = [m.quantile(axis, p) for p in ps]
            assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_cdf_quantile_galois(self, seed):
        """cdf(quantile(p)) >= p for the empirical distribution."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(100, 1))
        m = SampleMarginals(points, np.ones(100))
        for p in (0.05, 0.3, 0.5, 0.77, 0.95):
            assert m.cdf(0, m.quantile(0, p)) >= p - 1e-9
