"""Storage engine v2: WAL durability, incremental snapshots, crash recovery.

Three tiers of fault coverage:

1. **WAL unit level** — entry format, torn-tail truncation, and a
   truncated-prefix sweep at *every byte offset* of a multi-entry log
   (cheap: each probe is one file parse, no database rebuild).
2. **Entry-boundary end-to-end** — the {mono utree, sharded utree, upcr,
   scan} x {kernel on/off} matrix: checkpoint, run a mixed
   insert/delete/rebalance trace, crash at each WAL entry boundary (and
   just past it), recover via ``Database.open``, re-apply the
   unacknowledged remainder, and assert answers match the uninterrupted
   run bit for bit.
3. **Exhaustive end-to-end** — every byte offset of the trace's WAL, for
   one configuration; expensive, so gated behind
   ``REPRO_FAULT_EXHAUSTIVE=1`` (the CI crash-recovery job sets it).

Satellites ride along: atomic-save regressions (a crash mid-save never
destroys the previous archive), pickle-free archive loading, and the
incremental-save member-skip contract.
"""

from __future__ import annotations

import json
import os
import shutil
import struct

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.env import env_flag
from repro.geometry.rect import Rect
from repro.storage.serialize import SerializationError
from repro.storage.wal import WriteAheadLog
from tests.conftest import make_mixed_objects, make_uniform_ball_object
from tests.faultinject import ByteBudget, CrashPoint, crashing_factory

MC_SAMPLES = 240
SEED = 13

_HEADER = struct.Struct("<II")


def _entry_boundaries(wal_path: str) -> list[int]:
    """Byte offsets of every entry boundary in a WAL file (0 included)."""
    with open(wal_path, "rb") as fh:
        data = fh.read()
    boundaries = [0]
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, _ = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size + length
        assert offset <= len(data), "log under test must end on a boundary"
        boundaries.append(offset)
    return boundaries


# ----------------------------------------------------------------------
# tier 1: the log itself
# ----------------------------------------------------------------------

class TestWriteAheadLog:
    def test_commit_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        records = [{"op": "insert", "oid": 1}, {"op": "delete", "oid": 2}]
        for record in records:
            wal.commit(record)
        assert wal.entries_logged == 2
        assert wal.replay() == records
        assert wal.replay() == records  # replay is idempotent

    def test_commit_returns_durable_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        n = wal.commit({"op": "delete", "oid": 7})
        wal.close()
        assert os.path.getsize(wal.path) == n == wal.bytes_logged

    def test_truncate_is_checkpoint(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.commit({"op": "delete", "oid": 1})
        wal.truncate()
        assert wal.size_bytes == 0
        assert wal.replay() == []
        wal.commit({"op": "delete", "oid": 2})
        assert wal.replay() == [{"op": "delete", "oid": 2}]

    def test_missing_file_replays_to_nothing(self, tmp_path):
        assert WriteAheadLog(tmp_path / "absent.log").replay() == []

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.commit({"op": "delete", "oid": 1})
        good = os.path.getsize(wal.path)
        wal.close()
        with open(wal.path, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00garbage-without-full-payload")
        assert wal.replay() == [{"op": "delete", "oid": 1}]
        # Recovery physically truncated the tail: appends stay contiguous.
        assert os.path.getsize(wal.path) == good
        wal.commit({"op": "delete", "oid": 2})
        assert wal.replay() == [
            {"op": "delete", "oid": 1},
            {"op": "delete", "oid": 2},
        ]

    def test_corrupt_checksum_stops_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.commit({"op": "delete", "oid": 1})
        first = os.path.getsize(wal.path)
        wal.commit({"op": "delete", "oid": 2})
        wal.close()
        with open(wal.path, "r+b") as fh:  # flip one payload byte of entry 2
            fh.seek(first + _HEADER.size)
            byte = fh.read(1)
            fh.seek(first + _HEADER.size)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert wal.replay() == [{"op": "delete", "oid": 1}]
        assert os.path.getsize(wal.path) == first

    def test_every_byte_truncated_prefix_sweep(self, tmp_path):
        """Kill the log at EVERY byte offset; replay never lies.

        For each prefix length b, replay must return exactly the entries
        wholly contained in the first b bytes — the crash invariant at
        its finest granularity.
        """
        wal = WriteAheadLog(tmp_path / "wal.log")
        records = [
            {"op": "insert", "oid": i, "pdf": {"kind": "uniform", "blob": "x" * i}}
            for i in range(7)
        ]
        for record in records:
            wal.commit(record)
        wal.close()
        with open(wal.path, "rb") as fh:
            data = fh.read()
        boundaries = _entry_boundaries(wal.path)
        probe_path = tmp_path / "probe.log"
        for cut in range(len(data) + 1):
            with open(probe_path, "wb") as fh:
                fh.write(data[:cut])
            whole = sum(1 for b in boundaries[1:] if b <= cut)
            replayed = WriteAheadLog(probe_path).replay()
            assert replayed == records[:whole], f"divergence at byte {cut}"
            # Replay truncated the torn tail back to the last boundary.
            assert os.path.getsize(probe_path) == boundaries[whole]


class TestCrashingWrites:
    def test_acked_commits_survive_any_budget(self, tmp_path):
        records = [{"op": "delete", "oid": i} for i in range(5)]
        probe = WriteAheadLog(tmp_path / "probe.log")
        total = sum(probe.commit(r) for r in records)
        for budget_bytes in range(total + 1):
            path = tmp_path / f"wal-{budget_bytes}.log"
            wal = WriteAheadLog(
                path, file_factory=crashing_factory(ByteBudget(budget_bytes))
            )
            acked = []
            for record in records:
                try:
                    wal.commit(record)
                except CrashPoint:
                    break
                acked.append(record)
            assert WriteAheadLog(path).replay() == acked


# ----------------------------------------------------------------------
# shared end-to-end machinery
# ----------------------------------------------------------------------

def _objects():
    return make_mixed_objects(14, seed=5)


def _new_object(oid: int):
    rng = np.random.default_rng(1000 + oid)
    return make_uniform_ball_object(oid, rng.uniform(2000, 8000, 2))


# A mixed trace: inserts, deletes, and a rebalance in the middle.
TRACE = [
    ("insert", 100),
    ("delete", 2),
    ("rebalance", None),
    ("insert", 101),
    ("delete", 5),
    ("insert", 102),
]


def _apply(db: Database, op: str, arg) -> None:
    if op == "insert":
        db.insert(_new_object(arg))
    elif op == "delete":
        db.delete(arg)
    else:
        db.rebalance()


def _specs():
    return [
        RangeSpec(Rect([1000.0, 1000.0], [9000.0, 9000.0]), 0.3),
        RangeSpec(Rect([3000.0, 2000.0], [7000.0, 8000.0]), 0.6),
    ]


def _answers(db: Database) -> list[list[int]]:
    # sorted_ids: the persistence contract is set-identity — a rebuilt
    # tree's traversal order may differ, the qualifying objects may not
    # (the same comparison tests/test_api.py pins for save/open).
    return [db.query(spec).sorted_ids() for spec in _specs()]


def _config(method: str, kernel: str) -> ExecConfig:
    shards = 3 if method == "utree@sharded" else 1
    return ExecConfig(
        wal=True,
        mc_samples=MC_SAMPLES,
        seed=SEED,
        shards=shards,
        filter_kernel=kernel,
    )


def _build(method: str, kernel: str) -> Database:
    base = method.split("@")[0]
    return Database.create(_objects(), _config(method, kernel), methods=(base,))


def _wal_path(archive_dir) -> str:
    with open(os.path.join(archive_dir, "MANIFEST.json"), encoding="utf-8") as fh:
        manifest = json.load(fh)
    return os.path.join(archive_dir, manifest["wal"])


MATRIX = [
    (method, kernel)
    for method in ("utree@mono", "utree@sharded", "upcr", "scan")
    for kernel in ("on", "off")
]


# ----------------------------------------------------------------------
# tier 2: entry-boundary crashes, full method/kernel matrix
# ----------------------------------------------------------------------

@pytest.mark.parametrize("method,kernel", MATRIX)
class TestRecoveryMatrix:
    def test_crash_at_every_entry_boundary(self, tmp_path, method, kernel):
        """Checkpoint, run the trace, crash after k acked ops, recover.

        Recovery + re-applying the unacknowledged remainder must answer
        every query exactly like the run that never crashed.
        """
        db = _build(method, kernel)
        archive = tmp_path / "db"
        db.save(archive)
        for op, arg in TRACE:
            _apply(db, op, arg)
        expected = _answers(db)
        db.close()
        wal_path = _wal_path(archive)
        boundaries = _entry_boundaries(wal_path)
        assert len(boundaries) == len(TRACE) + 1  # one entry per operation
        with open(wal_path, "rb") as fh:
            wal_bytes = fh.read()

        for k, cut in enumerate(boundaries):
            crashed = tmp_path / f"crash-{k}"
            shutil.copytree(archive, crashed)
            with open(_wal_path(crashed), "wb") as fh:
                fh.write(wal_bytes[:cut])
            recovered = Database.open(crashed)
            assert recovered.last_recovery == {"wal_entries": k}
            for op, arg in TRACE[k:]:  # the client re-submits unacked ops
                _apply(recovered, op, arg)
            assert _answers(recovered) == expected
            recovered.close()

    def test_crash_mid_entry_loses_only_the_unacked_op(
        self, tmp_path, method, kernel
    ):
        db = _build(method, kernel)
        archive = tmp_path / "db"
        db.save(archive)
        for op, arg in TRACE:
            _apply(db, op, arg)
        expected = _answers(db)
        db.close()
        wal_path = _wal_path(archive)
        boundaries = _entry_boundaries(wal_path)
        with open(wal_path, "rb") as fh:
            wal_bytes = fh.read()
        # Tear the log 3 bytes into entry k+1: exactly k ops recovered.
        k = 2
        with open(wal_path, "wb") as fh:
            fh.write(wal_bytes[: boundaries[k] + 3])
        recovered = Database.open(archive)
        assert recovered.last_recovery == {"wal_entries": k}
        # Replay truncated the torn tail on disk.
        assert os.path.getsize(wal_path) == boundaries[k]
        for op, arg in TRACE[k:]:
            _apply(recovered, op, arg)
        assert _answers(recovered) == expected
        recovered.close()


class TestCrashingDatabase:
    """End-to-end through CrashingFile: the WAL handle itself dies."""

    def test_log_before_apply(self, tmp_path):
        """A crash during the commit leaves memory unchanged (unacked)."""
        db = _build("utree@mono", "on")
        db.save(tmp_path / "db")
        size_before = len(db)
        db.wal.reopen(crashing_factory(ByteBudget(4)))  # dies mid-header
        with pytest.raises(CrashPoint):
            db.insert(_new_object(100))
        assert len(db) == size_before
        recovered = Database.open(tmp_path / "db")
        assert recovered.last_recovery == {"wal_entries": 0}
        assert len(recovered) == size_before
        recovered.close()

    @pytest.mark.parametrize("budget_bytes", [0, 1, 90, 300, 10_000])
    def test_sampled_budgets_recover_exactly_the_acked_prefix(
        self, tmp_path, budget_bytes
    ):
        db = _build("utree@sharded", "on")
        archive = tmp_path / "db"
        db.save(archive)
        db.wal.reopen(crashing_factory(ByteBudget(budget_bytes)))
        acked = 0
        for op, arg in TRACE:
            try:
                _apply(db, op, arg)
            except CrashPoint:
                break
            acked += 1
        db.close()
        # Build the uninterrupted twin for the expected answers.
        twin = _build("utree@sharded", "on")
        for op, arg in TRACE:
            _apply(twin, op, arg)
        expected = _answers(twin)
        twin.close()

        recovered = Database.open(archive)
        assert recovered.last_recovery == {"wal_entries": acked}
        for op, arg in TRACE[acked:]:
            _apply(recovered, op, arg)
        assert _answers(recovered) == expected
        recovered.close()

    @pytest.mark.skipif(
        not env_flag("REPRO_FAULT_EXHAUSTIVE"),
        reason="exhaustive byte-level sweep only under REPRO_FAULT_EXHAUSTIVE=1",
    )
    def test_exhaustive_every_byte_end_to_end(self, tmp_path):
        """Kill the WAL write stream at EVERY byte offset of the trace."""
        db = _build("utree@sharded", "on")
        archive = tmp_path / "db"
        db.save(archive)
        for op, arg in TRACE:
            _apply(db, op, arg)
        expected = _answers(db)
        db.close()
        wal_path = _wal_path(archive)
        boundaries = _entry_boundaries(wal_path)
        with open(wal_path, "rb") as fh:
            wal_bytes = fh.read()
        for cut in range(len(wal_bytes) + 1):
            acked = sum(1 for b in boundaries[1:] if b <= cut)
            crashed = tmp_path / f"crash-{cut}"
            shutil.copytree(archive, crashed)
            with open(_wal_path(crashed), "wb") as fh:
                fh.write(wal_bytes[:cut])
            recovered = Database.open(crashed)
            assert recovered.last_recovery == {"wal_entries": acked}
            for op, arg in TRACE[acked:]:
                _apply(recovered, op, arg)
            assert _answers(recovered) == expected, f"divergence at byte {cut}"
            recovered.close()
            shutil.rmtree(crashed)


# ----------------------------------------------------------------------
# incremental snapshots
# ----------------------------------------------------------------------

class TestIncrementalSave:
    def test_first_save_writes_every_member(self, tmp_path):
        db = _build("utree@sharded", "on")
        report = db.save(tmp_path / "db")
        assert sorted(report["written"]) == [
            "utree/shard0", "utree/shard1", "utree/shard2",
        ]
        assert report["skipped"] == []
        db.close()

    def test_clean_members_are_skipped(self, tmp_path):
        db = _build("utree@sharded", "on")
        db.save(tmp_path / "db")
        report = db.save(tmp_path / "db")
        assert report["written"] == []
        assert len(report["skipped"]) == 3
        db.close()

    def test_touching_one_shard_rewrites_one_member(self, tmp_path):
        db = _build("utree@sharded", "on")
        archive = tmp_path / "db"
        db.save(archive)
        before = {
            name: os.path.getmtime(os.path.join(archive, name))
            for name in os.listdir(archive)
        }
        db.delete(2)  # lands in exactly one shard
        report = db.save(archive)
        assert len(report["written"]) == 1
        assert len(report["skipped"]) == 2
        manifest = json.load(open(os.path.join(archive, "MANIFEST.json")))
        skipped_files = {
            manifest["members"][key]["file"] for key in report["skipped"]
        }
        for name in skipped_files:  # untouched members were not rewritten
            assert os.path.getmtime(os.path.join(archive, name)) == before[name]
        db.close()

    def test_checkpoint_truncates_the_log(self, tmp_path):
        db = _build("utree@mono", "on")
        archive = tmp_path / "db"
        db.save(archive)
        db.insert(_new_object(100))
        assert db.wal.size_bytes > 0
        db.save(archive)
        assert db.wal.size_bytes == 0  # fresh segment after checkpoint
        reopened = Database.open(archive)
        assert reopened.last_recovery == {"wal_entries": 0}
        assert len(reopened) == len(db)
        reopened.close()
        db.close()

    def test_rebalance_marks_members_dirty(self, tmp_path):
        db = _build("utree@sharded", "on")
        archive = tmp_path / "db"
        db.save(archive)
        db.rebalance()
        report = db.save(archive)
        assert len(report["written"]) == 3
        db.close()

    def test_open_rejects_wal_off_config(self, tmp_path):
        db = _build("utree@mono", "on")
        db.save(tmp_path / "db")
        db.close()
        with pytest.raises(ValueError, match="WAL-backed"):
            Database.open(tmp_path / "db", ExecConfig(wal=False))

    def test_save_refuses_foreign_directory(self, tmp_path):
        foreign = tmp_path / "db"
        foreign.mkdir()
        (foreign / "MANIFEST.json").write_text('{"format": "something-else"}')
        db = _build("utree@mono", "on")
        with pytest.raises(ValueError, match="foreign"):
            db.save(foreign)
        db.close()

    def test_stale_members_are_garbage_collected(self, tmp_path):
        db = _build("utree@sharded", "on")
        archive = tmp_path / "db"
        db.save(archive)
        db.delete(2)
        db.save(archive)
        manifest = json.load(open(os.path.join(archive, "MANIFEST.json")))
        referenced = {m["file"] for m in manifest["members"].values()}
        on_disk = {n for n in os.listdir(archive) if n.endswith(".npz")}
        assert on_disk == referenced
        db.close()

    def test_durability_begins_at_first_checkpoint(self, tmp_path):
        db = _build("utree@mono", "on")
        assert db.wal is None  # pre-checkpoint mutations are in-memory only
        db.insert(_new_object(100))
        db.save(tmp_path / "db")
        assert db.wal is not None
        db.close()


# ----------------------------------------------------------------------
# satellite: atomic legacy saves
# ----------------------------------------------------------------------

class _Boom(RuntimeError):
    pass


def _explode_savez(monkeypatch):
    """Make the next np.savez_compressed write garbage, then die."""
    import repro.storage.serialize as serialize_module

    def boom(fh, **entries):
        fh.write(b"partial-garbage")
        raise _Boom("simulated crash mid-save")

    monkeypatch.setattr(serialize_module.np, "savez_compressed", boom)


class TestAtomicSave:
    def test_interrupted_database_save_preserves_old_archive(
        self, tmp_path, monkeypatch
    ):
        db = Database.create(
            _objects(), ExecConfig(mc_samples=MC_SAMPLES, seed=SEED), methods=("scan",)
        )
        path = tmp_path / "db.npz"
        db.save(path)
        expected = _answers(Database.open(path))
        _explode_savez(monkeypatch)
        with pytest.raises(_Boom):
            db.save(path)
        monkeypatch.undo()
        assert _answers(Database.open(path)) == expected  # old archive intact
        assert [p.name for p in tmp_path.iterdir()] == ["db.npz"]  # no temp litter

    def test_interrupted_utree_save_preserves_old_archive(
        self, tmp_path, monkeypatch
    ):
        db = Database.create(
            _objects(), ExecConfig(mc_samples=MC_SAMPLES, seed=SEED)
        )
        path = tmp_path / "db.npz"
        db.save(path)
        expected = _answers(Database.open(path))
        _explode_savez(monkeypatch)
        with pytest.raises(_Boom):
            db.save(path)
        monkeypatch.undo()
        assert _answers(Database.open(path)) == expected
        assert [p.name for p in tmp_path.iterdir()] == ["db.npz"]


# ----------------------------------------------------------------------
# satellite: pickle-free archives
# ----------------------------------------------------------------------

class TestPickleFreeArchives:
    def test_object_archive_loads_without_pickle(self, tmp_path):
        db = Database.create(
            _objects(),
            ExecConfig(mc_samples=MC_SAMPLES, seed=SEED),
            methods=("utree", "scan"),
        )
        path = tmp_path / "db.npz"
        db.save(path)
        with np.load(str(path)) as archive:  # allow_pickle defaults to False
            assert archive["descriptors"].dtype == np.uint8
        reopened = Database.open(path)
        assert reopened.method_names == ["utree", "scan"]
        assert _answers(reopened) == _answers(db)

    def test_wal_members_load_without_pickle(self, tmp_path):
        db = _build("utree@sharded", "off")
        archive = tmp_path / "db"
        db.save(archive)
        manifest = json.load(open(os.path.join(archive, "MANIFEST.json")))
        for member in manifest["members"].values():
            with np.load(os.path.join(archive, member["file"])) as npz:
                assert npz["descriptors"].dtype == np.uint8
        db.close()

    def test_v1_object_archive_is_rejected_clearly(self, tmp_path):
        meta = json.dumps({"format": "repro-database-objects-v1", "config": {}})
        path = tmp_path / "old.npz"
        np.savez_compressed(
            path,
            database_meta=meta,
            dim=np.int64(2),
            oids=np.array([1], dtype=np.int64),
            descriptors=np.array(["{}"], dtype=object),
        )
        with pytest.raises(SerializationError, match="v1"):
            Database.open(path)

    def test_wal_off_save_is_still_one_flat_npz(self, tmp_path):
        """paper_exact / default configs keep the legacy archive shape."""
        db = Database.create(
            _objects(),
            ExecConfig(mc_samples=MC_SAMPLES, seed=SEED),
            methods=("utree", "scan"),
        )
        path = tmp_path / "db.npz"
        assert db.save(path) is None  # no incremental report in legacy mode
        assert path.is_file()
        with np.load(str(path)) as archive:
            assert set(archive.files) == {
                "database_meta", "dim", "oids", "descriptors",
            }
