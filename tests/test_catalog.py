"""Tests for the U-catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog


class TestConstruction:
    def test_basic(self):
        cat = UCatalog([0.0, 0.25, 0.5])
        assert cat.size == 3
        assert cat.p_min == 0.0
        assert cat.p_max == 0.5
        assert cat.total == pytest.approx(0.75)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            UCatalog([0.0, 0.6])
        with pytest.raises(ValueError):
            UCatalog([-0.1, 0.25])

    def test_rejects_unsorted_or_duplicates(self):
        with pytest.raises(ValueError):
            UCatalog([0.25, 0.1])
        with pytest.raises(ValueError):
            UCatalog([0.1, 0.1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UCatalog([])

    def test_immutable_values(self):
        cat = UCatalog([0.0, 0.5])
        with pytest.raises(ValueError):
            cat.values[0] = 0.3

    def test_evenly_spaced(self):
        cat = UCatalog.evenly_spaced(6)
        assert cat.size == 6
        assert np.allclose(np.diff(cat.values), 0.1)
        with pytest.raises(ValueError):
            UCatalog.evenly_spaced(1)

    def test_paper_defaults(self):
        ut = UCatalog.paper_utree_default()
        assert ut.size == 15
        assert ut[1] == pytest.approx(1 / 28)
        assert ut.p_max == pytest.approx(0.5)
        assert UCatalog.paper_upcr_default(2).size == 9
        assert UCatalog.paper_upcr_default(3).size == 10

    def test_container_protocol(self):
        cat = UCatalog([0.0, 0.2, 0.5])
        assert len(cat) == 3
        assert list(cat) == [0.0, 0.2, 0.5]
        assert cat[1] == 0.2

    def test_equality_and_hash(self):
        a = UCatalog([0.0, 0.5])
        b = UCatalog([0.0, 0.5])
        c = UCatalog([0.0, 0.4])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_median_index(self):
        assert UCatalog.evenly_spaced(9).median_index == 4
        assert UCatalog.evenly_spaced(10).median_index == 5


class TestSelection:
    def setup_method(self):
        self.cat = UCatalog([0.0, 0.1, 0.25, 0.4, 0.5])

    def test_largest_at_most(self):
        assert self.cat.largest_at_most(0.3) == 0.25
        assert self.cat.largest_at_most(0.25) == 0.25
        assert self.cat.largest_at_most(0.05) == 0.0
        assert self.cat.largest_at_most(0.9) == 0.5

    def test_largest_at_most_none(self):
        assert UCatalog([0.1, 0.2]).largest_at_most(0.05) is None

    def test_smallest_at_least(self):
        assert self.cat.smallest_at_least(0.3) == 0.4
        assert self.cat.smallest_at_least(0.4) == 0.4
        assert self.cat.smallest_at_least(0.0) == 0.0

    def test_smallest_at_least_none(self):
        assert self.cat.smallest_at_least(0.6) is None

    def test_index_variants_agree(self):
        for p in (0.0, 0.07, 0.25, 0.33, 0.5):
            idx = self.cat.index_of_largest_at_most(p)
            assert self.cat.largest_at_most(p) == (None if idx is None else self.cat[idx])
            idx = self.cat.index_of_smallest_at_least(p)
            assert self.cat.smallest_at_least(p) == (None if idx is None else self.cat[idx])

    def test_paper_example_selection(self):
        """Figure 4's walk-through: catalog {0.1, 0.25, 0.4}, pq1 = 0.8 picks
        0.25 (smallest >= 1 - 0.8); pq2 = 0.7 picks 0.25 (largest <= 0.3)."""
        cat = UCatalog([0.1, 0.25, 0.4])
        assert cat.smallest_at_least(1 - 0.8) == 0.25
        assert cat.largest_at_most(1 - 0.7) == 0.25
