"""Cross-structure integration tests: the headline no-false-answers
contract across arbitrary pdfs, both dimensionalities and all three
access methods, plus end-to-end dynamic scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import MixtureDensity, UniformDensity, ConstrainedGaussianDensity
from repro.uncertainty.regions import BallRegion
from tests.conftest import brute_force_answer, make_mixed_objects


def _estimator():
    return AppearanceEstimator(n_samples=20_000, seed=42)


class TestThreeWayAgreement:
    """U-tree, U-PCR and sequential scan must return identical answers."""

    @pytest.fixture(scope="class")
    def structures(self):
        objects = make_mixed_objects(70, seed=81)
        utree = UTree(2, estimator=_estimator())
        upcr = UPCRTree(2, estimator=_estimator())
        scan = SequentialScan(2, estimator=_estimator())
        for obj in objects:
            utree.insert(obj)
            upcr.insert(obj)
            scan.insert(obj)
        return objects, utree, upcr, scan

    def test_agreement_random_queries(self, structures):
        objects, utree, upcr, scan = structures
        rng = np.random.default_rng(5)
        for __ in range(12):
            centre = rng.uniform(500, 9500, 2)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(200, 3000))),
                round(float(rng.uniform(0.05, 0.95)), 3),
            )
            a = utree.query(query).sorted_ids()
            b = upcr.query(query).sorted_ids()
            c = scan.query(query).sorted_ids()
            assert a == b == c

    def test_agreement_with_ground_truth(self, structures):
        objects, utree, __, __s = structures
        query = ProbRangeQuery(Rect([2500, 2500], [7500, 7500]), 0.6)
        assert utree.query(query).sorted_ids() == brute_force_answer(
            objects, query.rect, 0.6
        )


class TestMixturePdfEndToEnd:
    def test_mixture_objects_indexed(self):
        """The 'arbitrary pdf' promise: mixtures work through the full stack."""
        rng = np.random.default_rng(6)
        objects = []
        for i in range(25):
            region = BallRegion(rng.uniform(1000, 9000, 2), 300.0)
            mix = MixtureDensity(
                [
                    UniformDensity(region, marginal_seed=i),
                    ConstrainedGaussianDensity(region, sigma=100.0, marginal_seed=i),
                ],
                weights=[0.4, 0.6],
                marginal_seed=i,
            )
            objects.append(UncertainObject(i, mix))
        tree = UTree(2, estimator=_estimator())
        for obj in objects:
            tree.insert(obj)
        tree.check_invariants()
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.5)
        assert tree.query(query).sorted_ids() == [o.oid for o in objects]
        partial = ProbRangeQuery(Rect([1000, 1000], [5000, 5000]), 0.4)
        assert tree.query(partial).sorted_ids() == brute_force_answer(
            objects, partial.rect, 0.4
        )


class TestThreeDimensional:
    def test_3d_tree_against_brute_force(self):
        rng = np.random.default_rng(7)
        objects = [
            UncertainObject(
                i, UniformDensity(BallRegion(rng.uniform(1000, 9000, 3), 125.0), marginal_seed=i)
            )
            for i in range(40)
        ]
        tree = UTree(3, estimator=_estimator())
        for obj in objects:
            tree.insert(obj)
        tree.check_invariants()
        for seed in range(4):
            qrng = np.random.default_rng(70 + seed)
            centre = qrng.uniform(2000, 8000, 3)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(qrng.uniform(500, 2500))),
                float(qrng.uniform(0.2, 0.8)),
            )
            assert tree.query(query).sorted_ids() == brute_force_answer(
                objects, query.rect, query.threshold
            )


class TestDynamicScenario:
    def test_moving_objects_update_cycle(self):
        """Location-based-service pattern: objects re-report and move."""
        rng = np.random.default_rng(8)
        estimator = _estimator()
        tree = UTree(2, estimator=estimator)
        positions = {i: rng.uniform(2000, 8000, 2) for i in range(30)}
        objects = {}
        for i, pos in positions.items():
            obj = UncertainObject(i, UniformDensity(BallRegion(pos, 250.0), marginal_seed=i))
            objects[i] = obj
            tree.insert(obj)

        for round_no in range(3):
            movers = rng.choice(30, size=10, replace=False)
            for i in movers:
                assert tree.delete(int(i)) is not None
                positions[int(i)] = positions[int(i)] + rng.uniform(-500, 500, 2)
                obj = UncertainObject(
                    int(i),
                    UniformDensity(BallRegion(positions[int(i)], 250.0), marginal_seed=int(i)),
                )
                objects[int(i)] = obj
                tree.insert(obj)
            tree.check_invariants()

        query = ProbRangeQuery(Rect([3000, 3000], [7000, 7000]), 0.5)
        expected = brute_force_answer(list(objects.values()), query.rect, 0.5)
        assert tree.query(query).sorted_ids() == expected

    def test_io_counter_shared_across_components(self):
        """Index nodes and data pages accumulate in one counter."""
        objects = make_mixed_objects(25, seed=82)
        tree = UTree(2, estimator=_estimator())
        for obj in objects:
            tree.insert(obj)
        tree.io.reset()
        query = ProbRangeQuery(Rect([4000, 4000], [6000, 6000]), 0.3)
        stats = tree.query(query).stats
        assert tree.io.reads == stats.node_accesses + stats.data_page_reads
