"""Stateful property test: the engine versus a brute-force model.

Hypothesis drives random interleavings of inserts, deletes and range
searches against a single-layer engine with tiny nodes, checking after
every step that (a) structural invariants hold and (b) a guided search
returns exactly what a linear scan of the model returns.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.geometry.rect import Rect
from repro.index.engine import RStarEngine
from repro.storage.layout import NodeLayout


def _tiny_layout() -> NodeLayout:
    return NodeLayout(leaf_entry_bytes=1024, inner_entry_bytes=1024, page_size=4096)


coord = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
extent = st.floats(min_value=0.01, max_value=200.0, allow_nan=False, allow_infinity=False)


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = RStarEngine(2, 1, _tiny_layout())
        self.model: dict[int, Rect] = {}
        self.next_id = 0

    @rule(x=coord, y=coord, w=extent, h=extent)
    def insert(self, x, y, w, h):
        rect = Rect([x, y], [x + w, y + h])
        self.engine.insert(rect.as_array()[None], self.next_id)
        self.model[self.next_id] = rect
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        victim = data.draw(st.sampled_from(sorted(self.model)))
        rect = self.model.pop(victim)
        removed = self.engine.delete(lambda d, v=victim: d == v, rect.as_array()[None])
        assert removed, f"engine lost entry {victim}"

    @rule(x=coord, y=coord, w=extent, h=extent)
    def search(self, x, y, w, h):
        query = Rect([x, y], [x + w, y + h])
        found: list[int] = []
        self.engine.traverse(
            lambda e: query.intersects(Rect(e.profile[0, 0], e.profile[0, 1])),
            lambda e: found.append(e.data)
            if query.intersects(Rect(e.profile[0, 0], e.profile[0, 1]))
            else None,
        )
        expected = sorted(i for i, r in self.model.items() if query.intersects(r))
        assert sorted(found) == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.engine) == len(self.model)

    @invariant()
    def structure_valid(self):
        self.engine.check_invariants()


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
