"""Smoke tests for the experiment harness at tiny scale.

Each experiment module must run end to end and produce series with the
paper's qualitative shapes.  Full-scale fidelity is exercised by the
benchmark suite and the module CLIs; here we keep runtimes small.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig7, fig8, fig9, fig10, fig11, table1
from repro.experiments.config import BENCH_SCALE, DEFAULT_SCALE, FULL_SCALE, Scale, active_scale
from repro.experiments.data import (
    build_upcr,
    build_utree,
    clear_caches,
    dataset_objects,
    dataset_points,
)
from repro.experiments.harness import format_table, run_workload, total_cost_seconds
from repro.datasets.workload import make_workload

TINY = Scale(
    name="tiny",
    lb_objects=220,
    ca_objects=220,
    aircraft_objects=220,
    queries_per_workload=4,
    mc_samples=2000,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestConfig:
    def test_scales_defined(self):
        assert FULL_SCALE.lb_objects == 53_000
        assert FULL_SCALE.mc_samples == 1_000_000
        assert DEFAULT_SCALE.lb_objects < FULL_SCALE.lb_objects

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert active_scale() == DEFAULT_SCALE
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert active_scale() == FULL_SCALE

    def test_smaller(self):
        s = DEFAULT_SCALE.smaller(10)
        assert s.lb_objects == DEFAULT_SCALE.lb_objects // 10
        assert s.queries_per_workload >= 4


class TestData:
    def test_dataset_points_cached(self):
        a = dataset_points("LB", TINY)
        b = dataset_points("LB", TINY)
        assert a is b
        assert a.shape == (TINY.lb_objects, 2)

    def test_dataset_kinds(self):
        lb = dataset_objects("LB", TINY)
        ca = dataset_objects("CA", TINY)
        air = dataset_objects("Aircraft", TINY)
        assert lb[0].dim == 2 and ca[0].dim == 2 and air[0].dim == 3
        assert type(lb[0].pdf).__name__ == "UniformDensity"
        assert type(ca[0].pdf).__name__ == "ConstrainedGaussianDensity"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            dataset_points("Mars", TINY)

    def test_tree_caching(self):
        t1 = build_utree("LB", TINY)
        t2 = build_utree("LB", TINY)
        assert t1 is t2
        assert len(t1) == TINY.lb_objects


class TestHarness:
    def test_run_workload_and_cost(self):
        tree = build_utree("LB", TINY)
        workload = make_workload(dataset_points("LB", TINY), 4, 800.0, 0.5, seed=1)
        stats = run_workload(tree, workload)
        assert stats.count == 4
        cost = total_cost_seconds(stats, TINY)
        assert cost > 0

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]


class TestFig7:
    def test_shapes(self):
        result = fig7.run(TINY, n_queries=6)
        assert set(result["dims"]) == {2, 3}
        for dim in (2, 3):
            errors = result["dims"][dim]["workload_error"]
            times = result["dims"][dim]["seconds_per_eval"]
            assert len(errors) == len(result["n1"])
            assert errors[-1] < errors[0]  # error decays with n1
            assert times[-1] > times[0]  # cost grows with n1


class TestFig8:
    def test_runs_and_reports(self):
        result = fig8.run(TINY, dataset="LB", m_values=[3, 6])
        assert result["m"] == [3, 6]
        assert len(result["cost_seconds"]) == 2
        sizes = [d["index_bytes"] for d in result["details"]]
        assert sizes[1] >= sizes[0]  # more catalog values -> bigger U-PCR

    def test_utree_variant(self):
        result = fig8.run(TINY, dataset="LB", tree="utree", m_values=[3, 6])
        sizes = [d["index_bytes"] for d in result["details"]]
        # U-tree size is independent of the catalog (same layout).
        assert abs(sizes[0] - sizes[1]) <= 3 * 4096

    def test_bad_tree_kind(self):
        with pytest.raises(ValueError):
            fig8.run(TINY, tree="btree")


class TestTable1:
    def test_ratio_shape(self):
        result = table1.run(TINY, datasets=("LB",))
        row = result["LB"]
        assert row["upcr_bytes"] > row["utree_bytes"]
        assert row["ratio"] > 1.5


class TestFig9:
    def test_shapes(self):
        result = fig9.run(TINY, datasets=("LB",), qs_values=(500.0, 1500.0), pq=0.6)
        series = result["LB"]
        # U-tree accesses fewer nodes at every size.
        for u, p in zip(series["utree"]["node_accesses"], series["upcr"]["node_accesses"]):
            assert u <= p
        # I/O grows with qs.
        assert series["utree"]["node_accesses"][1] >= series["utree"]["node_accesses"][0]


class TestFig10:
    def test_shapes(self):
        result = fig10.run(TINY, datasets=("LB",), pq_values=(0.3, 0.9), qs=1200.0)
        series = result["LB"]
        for u, p in zip(series["utree"]["node_accesses"], series["upcr"]["node_accesses"]):
            assert u <= p
        assert all(v >= 0 for v in series["utree"]["prob_computations"])


class TestFig11:
    def test_update_costs(self):
        result = fig11.run(TINY, datasets=("LB",))
        row = result["LB"]
        assert row["objects"] == TINY.lb_objects
        assert row["insert_avg_io"] > 0
        assert row["insert_avg_cpu_seconds"] > 0
        assert row["delete_avg_io"] > 0


class TestMains:
    """The CLI entry points must print without crashing (tiny scale)."""

    def test_table1_main(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.experiments.table1.active_scale", lambda: TINY)
        table1.main()
        out = capsys.readouterr().out
        assert "Table 1" in out and "U-PCR" in out


class TestMotivation:
    def test_threshold_trades_recall_for_precision(self):
        from repro.experiments import motivation

        result = motivation.run(TINY, thresholds=(0.3, 0.8))
        rows = result["rows"]
        assert rows[0]["method"] == "R*-tree on reports"
        prob_rows = [r for r in rows if r["threshold"] is not None]
        low, high = prob_rows[0], prob_rows[-1]
        # Raising the threshold must not hurt precision and must not help
        # recall (the probabilistic operating curve).
        assert high["precision"] >= low["precision"] - 1e-9
        assert high["recall"] <= low["recall"] + 1e-9
        # All scores are valid fractions.
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0

    def test_motivation_main(self, capsys, monkeypatch):
        from repro.experiments import motivation

        monkeypatch.setattr(motivation, "active_scale", lambda: TINY)
        motivation.main()
        out = capsys.readouterr().out
        assert "precision" in out and "recall" in out
