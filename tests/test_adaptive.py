"""The PR 7 adaptive runtime: ARC pool, bounded probing, auto-tuner.

Three layers under test:

* the ARC buffer pool's four-list protocol — ghost promotion, target
  adaptation in both directions, the scan-length suppression that keeps
  a sequential flood from hijacking the target, and the capacity-0
  paper-exact degeneration;
* the latency-bounded shard probing — identical answers with the bound
  on and off across every structure x partitioner combination (range and
  NN), plus the update-traffic counters and ``Database.rebalance()``;
* the workload-aware :class:`~repro.exec.tuner.AutoTuner` and its
  ``Database`` wiring — per-batch knob overrides, convergence, and the
  planner-bias / tuner state round trip through ``save()``/``open()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.query import ProbRangeQuery
from repro.exec.executor import execute_query
from repro.exec.shard import ShardedAccessMethod
from repro.exec.tuner import AutoTuner, TunerDecision
from repro.geometry.rect import Rect
from repro.storage.bufferpool import BufferPool
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import make_mixed_objects, make_uniform_ball_object

FID = 0  # pools namespace frames by (file_id, page_id); one file suffices


# ---------------------------------------------------------------------------
# ARC buffer pool
# ---------------------------------------------------------------------------
class TestArcPool:
    def _pool(self, capacity: int) -> BufferPool:
        pool = BufferPool(capacity, policy="arc")
        assert pool.register_file() == FID
        return pool

    def test_ghost_hit_promotes_to_frequency_and_grows_target(self):
        pool = self._pool(4)
        for page in (1, 2, 3, 4):
            assert not pool.access(FID, page)
        assert pool.access(FID, 1)  # T1 hit -> T2
        pool.access(FID, 5)  # replace evicts T1's LRU (2) into B1
        assert (FID, 2) not in pool
        assert pool.ghost_pages()[0] == [(FID, 2)]
        assert pool.target_recency == 0.0

        assert not pool.access(FID, 2)  # B1 ghost hit: still a miss...
        assert pool.ghost_hits == 1
        assert pool.target_recency >= 1.0  # ...but the target grew
        assert (FID, 2) in pool  # and the frame re-entered resident
        assert pool.access(FID, 2)  # now a real hit (it sits in T2)

    def test_frequency_ghost_hit_shrinks_target(self):
        pool = self._pool(4)
        pool._target = 3.0  # as if recency ghosts had grown it
        pool._b2[(FID, 9)] = False  # a frequency-side ghost
        for page in (1, 2, 3, 4):
            pool.access(FID, page)
        assert not pool.access(FID, 9)  # B2 ghost hit
        assert pool.ghost_hits == 1
        assert pool.target_recency < 3.0

    def test_sequential_ghost_of_uncacheable_scan_suppresses_adaptation(self):
        pool = self._pool(4)
        pool.scan_length_ewma = 100.0  # calibrated: scans dwarf capacity
        pool._b1[(FID, 9)] = True  # ghost left behind by such a scan
        assert not pool.access(FID, 9)
        assert pool.ghost_hits == 1
        assert pool.target_recency == 0.0  # no target motion

        # The same ghost hit from a *random* (non-sequential) eviction
        # adapts normally — suppression keys on the ghost's origin.
        pool2 = self._pool(4)
        pool2.scan_length_ewma = 100.0
        pool2._b1[(FID, 9)] = False
        pool2.access(FID, 9)
        assert pool2.target_recency >= 1.0

    def test_scan_length_ewma_calibrates_from_runs(self):
        pool = self._pool(8)
        for page in range(10):
            pool.access(FID, page, sequential=True)
        pool.access(FID, 99)  # run ends: fold 10 into the EWMA
        assert pool.scan_length_ewma == pytest.approx(10.0)
        for page in range(20, 24):
            pool.access(FID, page, sequential=True)
        pool.access(FID, 98)
        assert pool.scan_length_ewma == pytest.approx(0.7 * 10.0 + 0.3 * 4.0)

    def test_capacity_zero_is_paper_exact(self):
        pool = self._pool(0)
        for _ in range(3):
            assert not pool.access(FID, 7)
        assert pool.hits == 0 and pool.misses == 3
        assert len(pool) == 0
        assert pool.ghost_pages() == ([], [])

    def test_admit_invalidate_and_clear_cover_ghosts(self):
        pool = self._pool(2)
        pool.admit(FID, 1)
        assert (FID, 1) in pool
        pool._b1[(FID, 5)] = False
        pool.invalidate(FID, 5)
        assert pool.ghost_pages() == ([], [])
        pool._target = 1.5
        pool.scan_length_ewma = 6.0
        pool.clear()
        assert len(pool) == 0
        assert pool.target_recency == 0.0
        # Calibration is workload knowledge, not cache content.
        assert pool.scan_length_ewma == pytest.approx(6.0)

    def test_reset_counters_zeroes_ghost_hits(self):
        pool = self._pool(2)
        pool._b1[(FID, 3)] = False
        pool.access(FID, 3)
        assert pool.ghost_hits == 1
        pool.reset_counters()
        assert pool.ghost_hits == 0

    def test_partition_propagates_policy(self):
        pools = BufferPool.partition(12, 3, policy="arc")
        assert all(p.policy == "arc" for p in pools)
        pools_2q = BufferPool.partition(12, 3, policy="2q", probation_capacity=2)
        assert all(p.policy == "2q" for p in pools_2q)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown pool policy"):
            BufferPool(4, policy="mru")


# ---------------------------------------------------------------------------
# latency-bounded probing
# ---------------------------------------------------------------------------
N_SAMPLES = 900
SEED = 7


def _range_queries():
    rng = np.random.default_rng(13)
    queries = []
    for pq in (0.2, 0.5, 0.8, 0.95):
        centre = rng.uniform(1500, 8500, 2)
        half = float(rng.uniform(400, 2200))
        queries.append(ProbRangeQuery(Rect.from_center(centre, half), pq))
    queries.append(ProbRangeQuery(Rect([0.0, 0.0], [10_000.0, 10_000.0]), 0.3))
    return queries


def _build_sharded(method, partitioner, probe_bound):
    return ShardedAccessMethod.build(
        make_mixed_objects(36, seed=5),
        shards=4,
        partitioner=partitioner,
        method=method,
        estimator=AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED),
        probe_bound=probe_bound,
    )


class TestProbeBound:
    @pytest.mark.parametrize("partitioner", ["str", "hash"])
    @pytest.mark.parametrize("method", ["utree", "upcr", "scan"])
    def test_range_answers_identical_with_and_without_bound(
        self, method, partitioner
    ):
        bounded = _build_sharded(method, partitioner, True)
        unbounded = _build_sharded(method, partitioner, False)
        for query in _range_queries():
            a = execute_query(bounded, query)
            b = execute_query(unbounded, query)
            assert sorted(a.object_ids) == sorted(b.object_ids)
        assert bounded.router.bound_skips >= 0
        assert unbounded.router.bound_skips == 0

    @pytest.mark.parametrize("partitioner", ["str", "hash"])
    def test_bound_actually_skips_probes(self, partitioner):
        """A grazing high-threshold query must drop provably futile probes.

        The query overlaps a shard's MBR only at the fringe, where the
        members' shrunken level-j profile boxes (the ones Observation 4
        consults for p_q = 0.95) no longer reach — the probe is proven
        pointless without running it.
        """
        bounded = _build_sharded("utree", partitioner, True)
        query = ProbRangeQuery(
            Rect.from_center(np.array([5118.0, 9505.0]), 518.0), 0.95
        )
        bounded.router.route(query)
        total_skipped = bounded.router.bound_skips
        assert total_skipped > 0, (
            "expected the residual-probability bound to skip probes"
        )
        # Cross-check: the skipped probes change nothing in the answer.
        unbounded = _build_sharded("utree", partitioner, False)
        a = execute_query(bounded, query)
        b = execute_query(unbounded, query)
        assert sorted(a.object_ids) == sorted(b.object_ids)

    def test_probe_bound_toggle_property(self):
        sharded = _build_sharded("utree", "str", True)
        assert sharded.probe_bound
        sharded.probe_bound = False
        assert not sharded.router.probe_bound

    def test_nn_answers_identical_and_shards_skipped(self):
        monolithic_est = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        from repro.core.utree import UTree
        from repro.core.catalog import UCatalog

        objects = make_mixed_objects(36, seed=5)
        mono = UTree(2, UCatalog.paper_utree_default(), estimator=monolithic_est)
        for obj in objects:
            mono.insert(obj)
        bounded = _build_sharded("utree", "str", True)
        unbounded = _build_sharded("utree", "str", False)

        rng = np.random.default_rng(29)
        skipped = 0
        for _ in range(6):
            point = rng.uniform(500, 9500, 2)
            r_mono = probabilistic_nearest_neighbors(mono, point, rounds=400)
            r_on = probabilistic_nearest_neighbors(bounded, point, rounds=400)
            r_off = probabilistic_nearest_neighbors(unbounded, point, rounds=400)
            key = lambda r: [(c.oid, c.probability) for c in r.candidates]
            assert key(r_on) == key(r_off) == key(r_mono)
            skipped += r_on.shards_skipped
            assert r_off.shards_skipped == 0
        assert skipped > 0, "the best-worst bound never skipped a shard"


class TestTrafficAndRebalance:
    def test_update_traffic_counters(self):
        sharded = _build_sharded("utree", "str", True)
        assert sharded.update_traffic == 0
        sharded.insert(make_uniform_ball_object(500, np.array([800.0, 800.0])))
        assert sharded.insert_traffic.count(1) == 1
        assert sharded.update_traffic == 1
        sharded.delete(500)
        assert sharded.update_traffic == 2
        sharded.reset_traffic()
        assert sharded.update_traffic == 0

    def test_rebalance_reduces_skew_and_keeps_answers(self):
        config = ExecConfig(
            shards=4, mc_samples=N_SAMPLES, seed=SEED, batched=False
        )
        db = Database.create(make_mixed_objects(30, seed=5), config)
        method = db.access_method("utree")
        # Skewed traffic: a clustered burst lands on one spatial shard.
        rng = np.random.default_rng(17)
        for i in range(30):
            centre = rng.uniform(600, 1200, 2)
            db.insert(make_uniform_ball_object(1000 + i, centre))
        assert method.update_traffic == 30
        skew = method.size_skew()
        assert skew > 1.0

        specs = [
            RangeSpec(Rect.from_center(np.array([2000.0, 2000.0]), 1800.0), 0.4),
            RangeSpec(Rect([0.0, 0.0], [10_000.0, 10_000.0]), 0.25),
        ]
        before = [sorted(r.object_ids) for r in db.run(specs)]
        report = db.rebalance()
        assert report["utree"]["objects"] == 60
        assert report["utree"]["update_traffic"] == 30
        assert report["utree"]["skew_after"] <= report["utree"]["skew_before"]
        rebuilt = db.access_method("utree")
        assert rebuilt is not method
        assert rebuilt.update_traffic == 0
        after = [sorted(r.object_ids) for r in db.run(specs)]
        assert after == before

    def test_rebalance_skips_monolithic_and_low_skew(self):
        db = Database.create(
            make_mixed_objects(12, seed=5), ExecConfig(mc_samples=400)
        )
        assert db.rebalance() == {}
        config = ExecConfig(shards=2, mc_samples=400)
        db2 = Database.create(make_mixed_objects(12, seed=5), config)
        assert db2.rebalance(min_skew=1000.0) == {}


# ---------------------------------------------------------------------------
# the auto-tuner
# ---------------------------------------------------------------------------
class TestAutoTuner:
    def test_untried_values_swept_first(self):
        tuner = AutoTuner({"a": [1, 2], "b": ["x", "y"]})
        explored = []
        for _ in range(4):
            decision = tuner.propose()
            explored.append((decision.explored, decision.assignment))
            tuner.observe(decision, 100.0)
        # Every (knob, value) pair gets sampled during the initial sweep.
        assert all(d[0] is not None for d in explored)
        assert all(t > 0 for s in tuner._stats.values() for _, t in s)

    def test_incumbent_moves_to_best_value(self):
        tuner = AutoTuner({"k": ["slow", "fast"]}, stable_after=2)
        for _ in range(8):
            decision = tuner.propose()
            qps = 200.0 if decision.assignment["k"] == "fast" else 50.0
            tuner.observe(decision, qps)
        assert tuner.incumbent["k"] == "fast"

    def test_convergence_stops_exploration(self):
        tuner = AutoTuner({"k": [1, 2]}, stable_after=2, min_trials=1)
        while not tuner.converged:
            decision = tuner.propose()
            tuner.observe(decision, 100.0 if decision.assignment["k"] == 1 else 10.0)
            assert tuner.observations < 50, "tuner failed to converge"
        for _ in range(5):
            decision = tuner.propose()
            assert decision.explored is None
            assert decision.assignment == tuner.incumbent

    def test_exploration_credits_only_the_flipped_knob(self):
        tuner = AutoTuner({"k": [1, 2], "m": ["a", "b"]})
        decision = tuner.propose()
        assert decision.explored == "k"  # sweep starts at the first knob
        tuner.observe(decision, 100.0)
        # "m" was context, not the perturbation: no credit.
        assert all(trials == 0 for _, trials in tuner._stats["m"])
        assert tuner._value_stats("k", decision.assignment["k"])[1] == 1

    def test_second_sample_discards_cold_start(self):
        tuner = AutoTuner({"k": [1, 2]}, smoothing=0.4)
        first = tuner.propose()
        tuner.observe(first, 10.0)  # cold debut
        second = TunerDecision(assignment=dict(first.assignment), explored="k")
        tuner.observe(second, 100.0)
        stats = tuner._value_stats("k", first.assignment["k"])
        assert stats[0] == pytest.approx(100.0)  # overwrote, did not fold
        assert stats[1] == 2
        tuner.observe(second, 50.0)
        assert stats[0] == pytest.approx(0.6 * 100.0 + 0.4 * 50.0)

    def test_switch_needs_margin_over_incumbent(self):
        tuner = AutoTuner({"k": [1, 2]}, switch_margin=0.1, stable_after=99)
        inc = TunerDecision(assignment={"k": 1}, explored="k")
        alt = TunerDecision(assignment={"k": 2}, explored="k")
        for decision, qps in ((inc, 100.0), (inc, 100.0), (alt, 105.0), (alt, 105.0)):
            tuner.observe(decision, qps)
        assert tuner.incumbent["k"] == 1  # 5% better is noise, not a win
        tuner.observe(alt, 200.0)
        tuner.observe(alt, 200.0)
        assert tuner.incumbent["k"] == 2  # a real gap clears the margin

    def test_convergence_is_sticky(self):
        tuner = AutoTuner({"k": [1, 2]}, stable_after=2, min_trials=1)
        while not tuner.converged:
            decision = tuner.propose()
            tuner.observe(decision, 100.0 if decision.assignment["k"] == 1 else 50.0)
        assert tuner.incumbent["k"] == 1
        # A post-convergence exploit stream slowing down (machine drift)
        # must not flip the incumbent against frozen alternatives.
        for _ in range(10):
            tuner.observe(tuner.propose(), 20.0)
        assert tuner.incumbent["k"] == 1
        assert tuner.converged

    def test_single_value_knobs_dropped(self):
        tuner = AutoTuner({"only": ["thread"], "real": [1, 2]})
        assert "only" not in tuner.knobs
        assert "real" in tuner.knobs

    def test_bad_qps_ignored(self):
        tuner = AutoTuner({"k": [1, 2]})
        decision = tuner.propose()
        tuner.observe(decision, 0.0)
        tuner.observe(decision, float("nan"))
        assert tuner.observations == 0

    def test_state_round_trip(self):
        tuner = AutoTuner({"k": [1, 2], "m": ["a", "b"]})
        for _ in range(6):
            decision = tuner.propose()
            tuner.observe(decision, 120.0 if decision.assignment["k"] == 2 else 60.0)
        state = tuner.state_dict()
        fresh = AutoTuner({"k": [1, 2], "m": ["a", "b"]})
        fresh.load_state(state)
        assert fresh.incumbent == tuner.incumbent
        assert fresh.observations == tuner.observations
        assert fresh._stats == tuner._stats

    def test_load_state_intersects_changed_knobs(self):
        tuner = AutoTuner({"k": [1, 2]})
        for _ in range(4):
            decision = tuner.propose()
            tuner.observe(decision, 100.0)
        fresh = AutoTuner({"k": [2, 3], "new": ["p", "q"]})
        fresh.load_state(tuner.state_dict())
        assert fresh._value_stats("k", 2)[1] > 0  # survived
        assert fresh._value_stats("k", 3)[1] == 0  # never saved
        assert fresh._value_stats("new", "p")[1] == 0

    def test_report_and_explain_lines(self):
        tuner = AutoTuner({"k": [1, 2]})
        decision = tuner.propose()
        tuner.observe(decision, 50.0)
        report = tuner.report()
        assert set(report) >= {"incumbent", "converged", "knobs", "observations"}
        lines = tuner.explain_lines()
        assert any("auto-tuner" in line for line in lines)


# ---------------------------------------------------------------------------
# Database wiring: overrides, variants, persistence, explain
# ---------------------------------------------------------------------------
def _specs():
    rng = np.random.default_rng(23)
    specs = []
    for pq in (0.3, 0.6):
        centre = rng.uniform(2000, 8000, 2)
        specs.append(RangeSpec(Rect.from_center(centre, 1500.0), pq))
    return specs


class TestDatabaseAdaptive:
    def test_method_variant_suffixes(self):
        config = ExecConfig(shards=3, mc_samples=600)
        db = Database.create(
            make_mixed_objects(24, seed=5),
            config,
            methods=("utree@mono", "utree@sharded"),
        )
        assert not isinstance(
            db.access_method("utree@mono"), ShardedAccessMethod
        )
        assert isinstance(
            db.access_method("utree@sharded"), ShardedAccessMethod
        )
        answers = {
            name: [sorted(r.object_ids) for r in db.run(_specs(), method=name)]
            for name in db.method_names
        }
        assert answers["utree@mono"] == answers["utree@sharded"]

    def test_sharded_variant_requires_shards(self):
        with pytest.raises(ValueError, match="pins the sharded layout"):
            Database.create(
                make_mixed_objects(8, seed=5),
                ExecConfig(mc_samples=400),
                methods=("utree@sharded",),
            )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown method variant"):
            Database.create(
                make_mixed_objects(8, seed=5),
                ExecConfig(mc_samples=400),
                methods=("utree@fast",),
            )

    def test_per_batch_overrides_keep_answers(self):
        config = ExecConfig(shards=2, mc_samples=600, filter_kernel="on")
        db = Database.create(make_mixed_objects(24, seed=5), config)
        specs = _specs()
        baseline = [sorted(r.object_ids) for r in db.run(specs)]
        for overrides in (
            {"parallelism": 3},
            {"executor": "process", "parallelism": 2},
            {"filter_kernel": False},
            {"filter_kernel": True},
        ):
            got = [sorted(r.object_ids) for r in db.run(specs, **overrides)]
            assert got == baseline, f"answers drifted under {overrides}"
        db.close()

    def test_kernel_override_is_sticky_and_visible(self):
        config = ExecConfig(mc_samples=400, filter_kernel="on")
        db = Database.create(make_mixed_objects(12, seed=5), config)
        spec = _specs()[0]
        assert db.explain(spec).filter_kernel
        db.run([spec], filter_kernel=False)
        assert not db.explain(spec).filter_kernel
        db.run([spec], filter_kernel=True)
        assert db.explain(spec).filter_kernel

    def test_override_validation(self):
        db = Database.create(
            make_mixed_objects(8, seed=5), ExecConfig(mc_samples=400)
        )
        with pytest.raises(ValueError, match="unknown executor"):
            db.run(_specs(), executor="bogus")
        with pytest.raises(ValueError, match="at least 1"):
            db.run(_specs(), parallelism=0)
        unbatched = Database.create(
            make_mixed_objects(8, seed=5),
            ExecConfig(mc_samples=400, batched=False),
        )
        with pytest.raises(ValueError, match="batched=True"):
            unbatched.run(_specs(), parallelism=2)

    def test_auto_tune_converges_with_stable_answers(self):
        config = ExecConfig(
            shards=2,
            mc_samples=500,
            auto_tune=True,
            parallelism=2,
            filter_kernel="on",
        )
        db = Database.create(
            make_mixed_objects(24, seed=5),
            config,
            methods=("utree@mono", "utree@sharded"),
        )
        # Replace the qps time source with a deterministic tick clock:
        # every batch measures the same wall time, so every observation
        # is noise-free, hysteresis never flips an incumbent, and the
        # tuner converges in exactly the sweep-plus-stability batch
        # count — on any machine, under any load.
        ticks = iter(range(1, 10**9))

        def tick_clock() -> float:
            return next(ticks) * 0.001

        db.tuner.clock = tick_clock
        specs = _specs()
        baseline = None
        # Each value needs one observed sample, but a batch that builds
        # a fresh executor is warm-up-skipped and the value is swept
        # again — and every incumbent shift can mint one more cold
        # executor combination.  The tick clock makes the whole schedule
        # deterministic (this config converges on decision 28 exactly),
        # so a fixed budget replaces the old "80 batches and hope" slack.
        sweep = sum(len(values) for values in db.tuner.knobs.values())
        budget = 4 * sweep + db.tuner.stable_after
        converged_at = None
        for batch_index in range(budget):
            answers = [sorted(r.object_ids) for r in db.run(specs)]
            baseline = answers if baseline is None else baseline
            assert answers == baseline
            if db.tuner.converged:
                converged_at = batch_index
                break
        assert db.tuner.converged, (
            f"tuner not converged after {budget} noise-free batches: "
            f"{db.tuner.report()}"
        )
        # Re-running the identical schedule converges at the identical
        # batch — the regression this fake clock exists to pin.
        assert converged_at is not None and converged_at < budget
        report = db.explain(specs[0]).tuner
        assert report is not None and report["converged"]
        assert set(report["incumbent"]) == set(db.tuner.knobs)
        db.close()

    def test_explain_serial_fallback_and_pool_fields(self):
        config = ExecConfig(
            parallelism=4, mc_samples=1000, pool_capacity=16, pool_policy="arc"
        )
        db = Database.create(make_mixed_objects(12, seed=5), config)
        spec = _specs()[0]
        small = db.explain(spec, batch_size=10)
        assert small.serial_fallback  # 10 x 1000 < 250k
        assert small.batch_queries == 10
        big = db.explain(spec, batch_size=300)
        assert not big.serial_fallback  # 300 x 1000 >= 250k
        assert small.pool_policy == "arc"
        assert small.pool_capacity == 16
        assert "serial fallback" in small.summary()
        assert small.tuner is None  # auto_tune off
        with pytest.raises(ValueError, match="batch_size"):
            db.explain(spec, batch_size=0)

    def test_explain_reports_bound_skips(self):
        config = ExecConfig(shards=4, partitioner="hash", mc_samples=500)
        db = Database.create(make_mixed_objects(36, seed=5), config)
        spec = RangeSpec(
            Rect.from_center(np.array([5118.0, 9505.0]), 518.0), 0.95
        )
        explanation = db.explain(spec)
        assert explanation.shards_bound_skipped > 0
        assert "bound-skipped" in explanation.summary()

    def test_learned_state_round_trips_through_save_open(self, tmp_path):
        config = ExecConfig(
            shards=2, mc_samples=500, auto_tune=True, filter_kernel="on"
        )
        db = Database.create(
            make_mixed_objects(20, seed=5),
            config,
            methods=("utree@mono", "utree@sharded"),
        )
        specs = _specs()
        for _ in range(6):
            db.run(specs)
        # Train the per-method bias explicitly (tuner-pinned batches
        # bypass the planner, so feed it a planned batch too).
        db.run(specs, parallelism=1)
        assert db.tuner.observations > 0
        db.planner.observe_choice("utree@mono", 10.0, 25.0)
        path = tmp_path / "adaptive.npz"
        db.save(path)
        db.close()

        reopened = Database.open(path)
        assert reopened.planner.data_records_per_page == pytest.approx(
            db.planner.data_records_per_page
        )
        assert reopened.planner.bias("utree@mono") == pytest.approx(
            db.planner.bias("utree@mono")
        )
        assert reopened.planner.observations == db.planner.observations
        assert reopened.tuner is not None
        assert reopened.tuner.incumbent == db.tuner.incumbent
        assert reopened.tuner.observations == db.tuner.observations
        reopened.close()

    def test_single_utree_archive_round_trips_planner_state(self, tmp_path):
        db = Database.create(
            make_mixed_objects(12, seed=5), ExecConfig(mc_samples=400)
        )
        db.planner.observe_choice("utree", 8.0, 12.0)
        path = tmp_path / "single.npz"
        db.save(path)
        reopened = Database.open(path)
        assert reopened.planner.bias("utree") == pytest.approx(
            db.planner.bias("utree")
        )

    def test_planner_reset_feedback(self):
        db = Database.create(
            make_mixed_objects(8, seed=5), ExecConfig(mc_samples=400)
        )
        db.planner.observe_choice("utree", 10.0, 30.0)
        assert db.planner.bias("utree") != 1.0
        db.planner.reset_feedback()
        assert db.planner.bias("utree") == 1.0
        assert db.planner.observations == 0


# ---------------------------------------------------------------------------
# config / environment plumbing
# ---------------------------------------------------------------------------
class TestEnvKnobs:
    def test_pool_policy_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_POLICY", "ARC")
        assert ExecConfig.from_env().pool_policy == "arc"
        monkeypatch.setenv("REPRO_POOL_POLICY", "bogus")
        with pytest.raises(ValueError, match="unknown pool_policy"):
            ExecConfig.from_env()

    def test_pool_probation_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_PROBATION", "3")
        assert ExecConfig.from_env().pool_probation == 3
        monkeypatch.setenv("REPRO_POOL_PROBATION", "-1")
        with pytest.raises(ValueError, match="non-negative"):
            ExecConfig.from_env()

    def test_probe_bound_env(self, monkeypatch):
        assert ExecConfig.from_env().probe_bound  # default on
        monkeypatch.setenv("REPRO_PROBE_BOUND", "0")
        assert not ExecConfig.from_env().probe_bound

    def test_auto_tune_env(self, monkeypatch):
        assert not ExecConfig.from_env().auto_tune
        monkeypatch.setenv("REPRO_AUTO_TUNE", "1")
        assert ExecConfig.from_env().auto_tune

    def test_auto_tune_requires_batched(self):
        with pytest.raises(ValueError, match="batched"):
            ExecConfig(auto_tune=True, batched=False)

    def test_paper_exact_pins_uncached_untuned(self):
        config = ExecConfig.paper_exact()
        assert config.pool_capacity == 0
        assert not config.auto_tune
